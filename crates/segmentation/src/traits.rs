//! A uniform handle over the three segmentation algorithms.

use crate::{segment_series, BottomUpSegmenter, PiecewiseLinear, SwabSegmenter};
use sensorgen::TimeSeries;

/// Which segmentation algorithm to run.
///
/// The paper uses the online sliding window; the others are included for the
/// ablation experiments (all three satisfy the `ε/2` bound of Lemma 1, so
/// SegDiff's guarantees hold over any of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Segmenter {
    /// Online sliding window (the paper's choice).
    #[default]
    SlidingWindow,
    /// Offline bottom-up merging.
    BottomUp,
    /// SWAB hybrid with the given buffer length.
    Swab {
        /// Number of observations in SWAB's working buffer.
        buffer_len: usize,
    },
}

impl Segmenter {
    /// Segments `series` with user tolerance `ε`.
    pub fn segment(&self, series: &TimeSeries, epsilon: f64) -> PiecewiseLinear {
        match *self {
            Segmenter::SlidingWindow => segment_series(series, epsilon),
            Segmenter::BottomUp => BottomUpSegmenter.segment(series, epsilon),
            Segmenter::Swab { buffer_len } => {
                SwabSegmenter::new(buffer_len).segment(series, epsilon)
            }
        }
    }

    /// A short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Segmenter::SlidingWindow => "sliding-window",
            Segmenter::BottomUp => "bottom-up",
            Segmenter::Swab { .. } => "swab",
        }
    }

    /// All variants with default parameters, for sweeps.
    pub fn all() -> [Segmenter; 3] {
        [
            Segmenter::SlidingWindow,
            Segmenter::BottomUp,
            Segmenter::Swab { buffer_len: 128 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_satisfies_lemma_1() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let series: TimeSeries = (0..1000)
            .map(|i| {
                let t = i as f64 * 300.0;
                (t, (t / 7000.0).sin() * 4.0 + rng.random::<f64>() * 0.5)
            })
            .collect();
        for alg in Segmenter::all() {
            let pla = alg.segment(&series, 0.4);
            assert!(
                pla.max_abs_error(&series) <= 0.2 + 1e-9,
                "{} violated the bound",
                alg.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = Segmenter::all().iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"sliding-window"));
    }

    #[test]
    fn default_is_the_papers_choice() {
        assert_eq!(Segmenter::default(), Segmenter::SlidingWindow);
    }
}
