//! Query-execution scaling: seq_scan vs index plans across sensor counts.
//!
//! This experiment times the *executor* (not the HTTP layer): a
//! [`TransectIndex`] fan-out query over 1 and 8 sensors, both plans, with
//! per-repeat wall-clock latencies summarized as p50/p90/p99. The numbers
//! are recorded to `BENCH_query.json` (`--record-baseline`) so later
//! executor changes are measured against a checked-in baseline, and a CI
//! guard (`ci/query-guard.json`, `--guard`) fails the smoke job when the
//! index-plan p99 regresses past an absolute bound — the same shape as
//! the serving-guard used by `segdiff loadgen`.

use crate::harness::{scratch_dir, Scale};
use crate::report::Report;
use obs::json::Json;
use segdiff::{QueryPlan, SegDiffConfig, TransectIndex};
use sensorgen::{generate_sensor, smooth::RobustSmoother, CadTransectConfig, HOUR};
use std::path::Path;
use std::time::Instant;

/// One measured `(sensors, plan)` combination.
#[derive(Debug, Clone)]
pub struct QueryScalingPoint {
    /// Sensors fanned out over.
    pub sensors: u32,
    /// Plan name (`seq_scan` / `index`).
    pub plan: &'static str,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Pages read through the buffer pool (hits + misses — the repeats
    /// run warm, so physical reads alone would record zero) during one
    /// representative run.
    pub pages_read: u64,
    /// Result rows across all sensors.
    pub results: u64,
    /// Rows / index entries examined across all sensors.
    pub rows_considered: u64,
    /// Zone-map pages skipped during the timed runs (seq_scan only).
    pub pages_pruned: u64,
    /// Zone-map extents (64-page groups) skipped during the timed runs.
    pub extents_pruned: u64,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_ms.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

/// Builds a transect of `sensors` smoothed canyon sensors and times both
/// plans over the paper's default region, `repeats` timed runs each
/// (after one warm-up), returning one point per `(sensors, plan)`.
pub fn run_query_scaling(scale: &Scale, sensor_counts: &[u32]) -> Vec<QueryScalingPoint> {
    let region = featurespace::QueryRegion::drop(1.0 * HOUR, -3.0);
    let mut points = Vec::new();
    for &n in sensor_counts {
        let root = scratch_dir(&format!("qscaling-{n}"));
        std::fs::remove_dir_all(&root).ok();
        let cfg = SegDiffConfig::default()
            .with_epsilon(0.2)
            .with_window(8.0 * HOUR)
            .with_pool_pages(scale.pool_pages)
            .with_durable(false);
        let gen_cfg = CadTransectConfig::default()
            .with_days(scale.subset_days)
            .with_sensors(n.max(2));
        let mut transect = TransectIndex::create(&root, cfg, n).expect("create transect");
        for k in 0..n {
            let series =
                RobustSmoother::default().smooth(&generate_sensor(&gen_cfg, k, scale.seed));
            transect.ingest_series(k, &series).expect("ingest sensor");
        }
        transect.finish_all().expect("finish transect");
        transect
            .build_indexes_all()
            .expect("build transect indexes");

        for (plan, name) in [
            (QueryPlan::SeqScan, "seq_scan"),
            (QueryPlan::Index, "index"),
        ] {
            // Warm-up so the timed repeats measure a warm buffer pool.
            let _ = transect.query_all(&region, plan).expect("warmup");
            let before = obs::global().snapshot();
            let mut lat_ms = Vec::new();
            let mut first = None;
            for _ in 0..scale.repeats.max(1) {
                let t = Instant::now();
                let (_, stats) = transect.query_all(&region, plan).expect("query_all");
                lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
                first.get_or_insert(stats);
            }
            let delta = obs::global().snapshot().delta(&before);
            lat_ms.sort_by(|a, b| a.total_cmp(b));
            let stats = first.expect("at least one repeat");
            points.push(QueryScalingPoint {
                sensors: n,
                plan: name,
                p50_ms: percentile(&lat_ms, 0.50),
                p90_ms: percentile(&lat_ms, 0.90),
                p99_ms: percentile(&lat_ms, 0.99),
                pages_read: stats.io.hits + stats.io.misses,
                results: stats.results,
                rows_considered: stats.rows_considered,
                pages_pruned: delta
                    .counters
                    .get("zonemap.pages_pruned")
                    .copied()
                    .unwrap_or(0),
                extents_pruned: delta
                    .counters
                    .get("zonemap.extents_pruned")
                    .copied()
                    .unwrap_or(0),
            });
        }
        std::fs::remove_dir_all(&root).ok();
    }
    points
}

/// Serializes points to the `BENCH_query.json` document.
pub fn baseline_json(scale: &Scale, points: &[QueryScalingPoint]) -> String {
    let arr = points
        .iter()
        .map(|p| {
            Json::obj([
                ("sensors", Json::from(p.sensors)),
                ("plan", Json::from(p.plan)),
                ("p50_ms", Json::from(p.p50_ms)),
                ("p90_ms", Json::from(p.p90_ms)),
                ("p99_ms", Json::from(p.p99_ms)),
                ("pages_read", Json::from(p.pages_read)),
                ("results", Json::from(p.results)),
                ("rows_considered", Json::from(p.rows_considered)),
            ])
        })
        .collect();
    let doc = Json::obj([
        (
            "comment",
            Json::from(
                "Query-executor latency baseline recorded by `reproduce scaling \
                 --record-baseline`; compared on later runs to report speedups.",
            ),
        ),
        ("subset_days", Json::from(scale.subset_days)),
        ("repeats", Json::from(scale.repeats)),
        ("seed", Json::from(scale.seed)),
        ("points", Json::Array(arr)),
    ]);
    let mut s = doc.to_string_compact();
    s.push('\n');
    s
}

/// A `(sensors, plan)` row parsed back from `BENCH_query.json`.
#[derive(Debug, Clone)]
pub struct BaselinePoint {
    /// Sensor count of the recorded row.
    pub sensors: u32,
    /// Plan name of the recorded row.
    pub plan: String,
    /// Recorded median latency, milliseconds.
    pub p50_ms: f64,
}

/// Loads the recorded baseline, if the file exists and parses.
pub fn load_baseline(path: &Path) -> Option<Vec<BaselinePoint>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    let mut out = Vec::new();
    for p in doc.get("points")?.as_array()? {
        out.push(BaselinePoint {
            sensors: p.get("sensors")?.as_u64()? as u32,
            plan: p.get("plan")?.as_str()?.to_string(),
            p50_ms: p.get("p50_ms")?.as_f64()?,
        });
    }
    Some(out)
}

/// Renders the scaling table, plus baseline speedups when available.
pub fn scaling_report(
    points: &[QueryScalingPoint],
    baseline: Option<&[BaselinePoint]>,
    report: &mut Report,
) {
    report.heading("Query scaling (beyond the paper): batched, pruned, parallel execution");
    report.para(
        "End-to-end executor latency of a fan-out query over every sensor of a \
         transect (default region: 3 degC drop within 1 h), p50/p90/p99 over \
         warm repeats. `pruned` counts heap pages skipped by zone maps on the \
         seq_scan plan.",
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.sensors.to_string(),
                p.plan.to_string(),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p90_ms),
                format!("{:.3}", p.p99_ms),
                p.pages_read.to_string(),
                p.rows_considered.to_string(),
                p.results.to_string(),
                p.pages_pruned.to_string(),
            ]
        })
        .collect();
    report.table(
        &[
            "sensors",
            "plan",
            "p50 ms",
            "p90 ms",
            "p99 ms",
            "pages read",
            "rows considered",
            "results",
            "pruned",
        ],
        &rows,
    );
    if let Some(base) = baseline {
        let mut lines = Vec::new();
        for p in points {
            if let Some(b) = base
                .iter()
                .find(|b| b.sensors == p.sensors && b.plan == p.plan)
            {
                if p.p50_ms > 0.0 {
                    lines.push(format!(
                        "{} x{} sensors: p50 {:.3} ms vs baseline {:.3} ms ({:.2}x)",
                        p.plan,
                        p.sensors,
                        p.p50_ms,
                        b.p50_ms,
                        b.p50_ms / p.p50_ms
                    ));
                }
            }
        }
        if !lines.is_empty() {
            report.para(&format!(
                "Against the recorded `BENCH_query.json` baseline: {}.",
                lines.join("; ")
            ));
        }
    } else {
        report.para(
            "No `BENCH_query.json` baseline found; run with `--record-baseline` \
             to record one.",
        );
    }
}

/// Checks the index-plan p99 against the guard file's `max_p99_ms`, and
/// that zone maps pruned at least one page across the seq-scan points
/// (the workload's region is selective, so zero pruning means the maps
/// were not built or not consulted). Returns an error string describing
/// the first violation, if any.
pub fn check_guard(
    points: &[QueryScalingPoint],
    guard_path: &Path,
) -> std::result::Result<(), String> {
    let text = std::fs::read_to_string(guard_path)
        .map_err(|e| format!("read {}: {e}", guard_path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {}: {e}", guard_path.display()))?;
    let max_p99_ms = doc
        .get("max_p99_ms")
        .and_then(Json::as_f64)
        .ok_or_else(|| "guard file needs a numeric max_p99_ms field".to_string())?;
    for p in points.iter().filter(|p| p.plan == "index") {
        if p.p99_ms > max_p99_ms {
            return Err(format!(
                "index plan p99 {:.2} ms at {} sensors exceeds guard limit {:.2} ms",
                p.p99_ms, p.sensors, max_p99_ms
            ));
        }
    }
    let seq_points: Vec<_> = points.iter().filter(|p| p.plan == "seq_scan").collect();
    if !seq_points.is_empty() && seq_points.iter().all(|p| p.pages_pruned == 0) {
        return Err(
            "zone maps pruned zero pages on every seq scan of a selective region".to_string(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.50), 3.0);
        assert_eq!(percentile(&v, 0.90), 5.0);
        assert_eq!(percentile(&v, 0.99), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn baseline_roundtrip_and_report() {
        let points = vec![
            QueryScalingPoint {
                sensors: 8,
                plan: "index",
                p50_ms: 1.0,
                p90_ms: 2.0,
                p99_ms: 3.0,
                pages_read: 10,
                results: 5,
                rows_considered: 100,
                pages_pruned: 0,
                extents_pruned: 0,
            },
            QueryScalingPoint {
                sensors: 8,
                plan: "seq_scan",
                p50_ms: 4.0,
                p90_ms: 5.0,
                p99_ms: 6.0,
                pages_read: 40,
                results: 5,
                rows_considered: 400,
                pages_pruned: 7,
                extents_pruned: 2,
            },
        ];
        let dir = scratch_dir("scaling-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_query.json");
        std::fs::write(&path, baseline_json(&Scale::tiny(), &points)).unwrap();
        let base = load_baseline(&path).expect("baseline parses");
        assert_eq!(base.len(), 2);
        assert_eq!(base[0].plan, "index");
        assert_eq!(base[0].p50_ms, 1.0);

        let mut report = Report::new();
        scaling_report(&points, Some(&base), &mut report);
        let md = report.markdown();
        assert!(md.contains("| sensors |"), "{md}");
        assert!(md.contains("1.00x"), "{md}");

        let guard = dir.join("guard.json");
        std::fs::write(&guard, "{\"max_p99_ms\": 2.5}").unwrap();
        assert!(check_guard(&points, &guard).is_err());
        std::fs::write(&guard, "{\"max_p99_ms\": 250.0}").unwrap();
        assert!(check_guard(&points, &guard).is_ok());

        // A seq scan that pruned nothing on this selective workload
        // means zone maps are broken; the guard must catch that too.
        let mut unpruned = points.clone();
        unpruned[1].pages_pruned = 0;
        let err = check_guard(&unpruned, &guard).unwrap_err();
        assert!(err.contains("pruned zero pages"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_scaling_run_completes() {
        let mut scale = Scale::tiny();
        scale.subset_days = 3;
        let points = run_query_scaling(&scale, &[2]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().any(|p| p.plan == "seq_scan"));
        let (seq, idx) = (
            points.iter().find(|p| p.plan == "seq_scan").unwrap(),
            points.iter().find(|p| p.plan == "index").unwrap(),
        );
        assert_eq!(seq.results, idx.results, "plans must agree: {points:?}");
    }
}
