//! Operating the whole sensor network: a [`TransectIndex`] over a
//! correlated canyon transect, fan-out queries, and result refinement.
//!
//! The paper's §6.3 headline — "SegDiff can return results for all sensors
//! within 10 seconds" — is about exactly this layout: one index per sensor,
//! one standing question asked across all of them.
//!
//! ```sh
//! cargo run --release --example transect_monitoring [days] [sensors]
//! ```

use segdiff_repro::prelude::*;
use segdiff_repro::segdiff::refine::{partition_hits, refine_results};
use segdiff_repro::segdiff::TransectIndex;
use segdiff_repro::sensorgen::generate_transect_correlated;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let sensors: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(9);

    let root = std::env::temp_dir().join(format!("segdiff-transect-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    println!("generating a correlated transect: {sensors} sensors x {days} days ...");
    let cfg = CadTransectConfig::default()
        .with_days(days)
        .with_sensors(sensors);
    let raw = generate_transect_correlated(&cfg, 20_080_325);
    let smoother = RobustSmoother::default();
    let series: Vec<TimeSeries> = raw.iter().map(|s| smoother.smooth(s)).collect();

    let mut transect =
        TransectIndex::create(&root, SegDiffConfig::default(), sensors).expect("create");
    let t0 = std::time::Instant::now();
    for (k, s) in series.iter().enumerate() {
        transect.ingest_series(k as u32, s).expect("ingest");
    }
    transect.finish_all().expect("finish");
    println!(
        "ingested {} observations in {:.1} s ({} KiB of features)",
        series.iter().map(|s| s.len()).sum::<usize>(),
        t0.elapsed().as_secs_f64(),
        transect.total_feature_bytes() / 1024
    );

    // The standing question, fanned out across all sensors in parallel.
    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    let (per_sensor, stats) = transect
        .query_all(&region, QueryPlan::SeqScan)
        .expect("query");
    println!(
        "\nCAD query over {} sensors: {} total periods in {:.1} ms (slowest sensor)",
        sensors,
        stats.results,
        stats.wall_seconds * 1e3
    );
    for (k, results) in per_sensor.iter().enumerate() {
        println!("  sensor {k:2}: {:4} periods", results.len());
    }

    // Refinement: turn the canyon-bottom sensor's periods into concrete
    // events and check how many meet the threshold exactly.
    let bottom = (sensors / 2) as usize;
    let refined = refine_results(&series[bottom], &per_sensor[bottom], &region, 24);
    let (hits, near) = partition_hits(&refined);
    println!(
        "\nsensor {bottom} refined: {} exact events, {} near misses (within 2*eps)",
        hits.len(),
        near.len()
    );
    let mut deepest = hits.clone();
    deepest.sort_by(|a, b| a.dv.partial_cmp(&b.dv).unwrap());
    for e in deepest.iter().take(5) {
        println!(
            "  drop of {:5.2} degC in {:4.1} min, day {:5.2}",
            e.dv,
            (e.t2 - e.t1) / MINUTE,
            e.t1 / DAY
        );
    }

    // Simultaneity: CAD events are drainage flows — when the canyon bottom
    // sees one, nearby sensors often do too. Count co-occurrences.
    let mut simultaneous = 0;
    for e in &hits {
        let neighbours = per_sensor
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != bottom)
            .filter(|(_, rs)| rs.iter().any(|p| p.t_d <= e.t2 && e.t1 <= p.t_a))
            .count();
        if neighbours > 0 {
            simultaneous += 1;
        }
    }
    println!(
        "{simultaneous}/{} bottom-sensor events co-occur with a neighbour detection",
        hits.len()
    );

    std::fs::remove_dir_all(&root).ok();
}
