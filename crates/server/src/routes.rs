//! The HTTP route registry: every route the service answers, checked
//! in as data.
//!
//! Routes are stringly typed at the dispatch site
//! ([`crate::service::SegDiffService::handle`] matches on
//! `(method, path)` literals), which makes drift between the dispatch
//! table, the per-handler query-parameter validation, and the README
//! route table invisible to the compiler. This module is the single
//! source of truth the `segdiff-lint` L8 rule enforces in all
//! directions:
//!
//! * every static `(method, path)` dispatch arm must appear here, and
//!   every static entry here must have a dispatch arm;
//! * each entry's `params` must equal the `check_query_params` allowed
//!   list of the handler its dispatch arm calls;
//! * the README "HTTP routes" table is generated from this registry
//!   ([`markdown_table`]) and lint fails when the two diverge.
//!
//! The registry is also live code, not just documentation: the
//! dispatch fallback distinguishes `405 Method Not Allowed` from
//! `404 Not Found` by asking [`is_known_path`] whether *some* method
//! serves the path — previously a hand-maintained literal list that
//! this registry replaces.

/// One registered route.
#[derive(Debug, Clone, Copy)]
pub struct RouteDef {
    /// HTTP method (`GET`, `POST`, `DELETE`).
    pub method: &'static str,
    /// Path; dynamic segments are spelled `<name>` (e.g.
    /// `/subscribe/<id>`) and matched by prefix at dispatch.
    pub path: &'static str,
    /// Query parameters the handler accepts (its
    /// `check_query_params` allowed list). Empty means the handler
    /// rejects any query string.
    pub params: &'static [&'static str],
    /// One-line description, surfaced in the generated docs table.
    pub help: &'static str,
}

impl RouteDef {
    /// A `GET` route.
    pub const fn get(
        path: &'static str,
        params: &'static [&'static str],
        help: &'static str,
    ) -> Self {
        RouteDef {
            method: "GET",
            path,
            params,
            help,
        }
    }

    /// A `POST` route.
    pub const fn post(
        path: &'static str,
        params: &'static [&'static str],
        help: &'static str,
    ) -> Self {
        RouteDef {
            method: "POST",
            path,
            params,
            help,
        }
    }

    /// A `DELETE` route.
    pub const fn delete(
        path: &'static str,
        params: &'static [&'static str],
        help: &'static str,
    ) -> Self {
        RouteDef {
            method: "DELETE",
            path,
            params,
            help,
        }
    }

    /// Whether the path contains a dynamic `<…>` segment (matched by
    /// prefix rather than a dispatch-arm literal).
    pub fn is_dynamic(&self) -> bool {
        self.path.contains('<')
    }

    /// Whether a concrete request path is served by this route.
    pub fn matches_path(&self, path: &str) -> bool {
        match self.path.split_once('<') {
            None => self.path == path,
            Some((prefix, rest)) => {
                // `/subscribe/<id>` → prefix `/subscribe/`, tail after
                // the closing `>` (`""` or `/stream`).
                let Some((_, suffix)) = rest.split_once('>') else {
                    return false;
                };
                let Some(mid) = path.strip_prefix(prefix) else {
                    return false;
                };
                let Some(seg) = mid.strip_suffix(suffix) else {
                    return false;
                };
                !seg.is_empty() && !seg.contains('/')
            }
        }
    }
}

/// Every route the service answers, in dispatch order.
pub const ROUTES: &[RouteDef] = &[
    RouteDef::post(
        "/query",
        &[],
        "run one drop/jump query; body carries kind, V, T, plan, trace",
    ),
    RouteDef::get(
        "/metrics",
        &["format"],
        "full telemetry registry dump (`?format=json` for NDJSON)",
    ),
    RouteDef::get("/healthz", &[], "liveness plus the current index epoch"),
    RouteDef::get(
        "/wal",
        &["sensor", "after_lsn", "max_bytes"],
        "WAL segment shipping for replicas (frames after a LSN cursor)",
    ),
    RouteDef::get(
        "/wal/manifest",
        &["sensor"],
        "WAL file manifest for replica bootstrap",
    ),
    RouteDef::get(
        "/wal/file",
        &["sensor", "name", "offset", "len"],
        "raw WAL file byte ranges for replica bootstrap",
    ),
    RouteDef::get(
        "/series",
        &["name", "window"],
        "sampled time series of any internal metric",
    ),
    RouteDef::get(
        "/alerts",
        &["after"],
        "standing drop/jump rules and the fired-alert log",
    ),
    RouteDef::get(
        "/debug/traces",
        &["n", "ring", "full"],
        "always-on request-trace rings (recent and slow)",
    ),
    RouteDef::post("/subscribe", &[], "register a standing query"),
    RouteDef::get(
        "/subscribe",
        &[],
        "list subscriptions with per-sensor event statistics",
    ),
    RouteDef::get(
        "/notifications",
        &["sub", "after", "max"],
        "durable polling cursor over a subscription's matches",
    ),
    RouteDef::post(
        "/shutdown",
        &[],
        "graceful drain: finish in-flight work, flush, final snapshot",
    ),
    RouteDef::get("/subscribe/<id>", &[], "inspect one subscription"),
    RouteDef::delete("/subscribe/<id>", &[], "remove one subscription"),
    RouteDef::get(
        "/subscribe/<id>/stream",
        &["after", "max"],
        "chunked NDJSON live feed of a subscription's notifications",
    ),
];

/// Whether any route serves `path` (under some method). The dispatch
/// fallback uses this to answer `405` instead of `404` for known paths.
pub fn is_known_path(path: &str) -> bool {
    ROUTES.iter().any(|r| r.matches_path(path))
}

/// The markdown route table generated from [`ROUTES`] — the
/// `segdiff-lint --emit-routes-table` output, pinned byte-identical to
/// the lint crate's own renderer and the README by integration tests.
pub fn markdown_table() -> String {
    let mut out =
        String::from("| method | path | query params | description |\n|---|---|---|---|\n");
    for r in ROUTES {
        let params = if r.params.is_empty() {
            "—".to_string()
        } else {
            r.params
                .iter()
                .map(|p| format!("`{p}`"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "| {} | `{}` | {} | {} |\n",
            r.method, r.path, params, r.help
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_paths_match_exactly() {
        let q = ROUTES.iter().find(|r| r.path == "/query").unwrap();
        assert!(q.matches_path("/query"));
        assert!(!q.matches_path("/query/x"));
    }

    #[test]
    fn dynamic_paths_match_one_segment() {
        let item = ROUTES
            .iter()
            .find(|r| r.path == "/subscribe/<id>" && r.method == "GET")
            .unwrap();
        assert!(item.is_dynamic());
        assert!(item.matches_path("/subscribe/7"));
        assert!(!item.matches_path("/subscribe/"));
        assert!(!item.matches_path("/subscribe/7/stream"));
        let stream = ROUTES
            .iter()
            .find(|r| r.path == "/subscribe/<id>/stream")
            .unwrap();
        assert!(stream.matches_path("/subscribe/7/stream"));
        assert!(!stream.matches_path("/subscribe/stream"));
    }

    #[test]
    fn known_paths_cover_both_kinds() {
        assert!(is_known_path("/metrics"));
        assert!(is_known_path("/subscribe/123"));
        assert!(is_known_path("/subscribe/123/stream"));
        assert!(!is_known_path("/nope"));
        assert!(!is_known_path("/subscribe/123/extra"));
    }

    #[test]
    fn no_duplicate_method_path_pairs() {
        for (i, a) in ROUTES.iter().enumerate() {
            for b in &ROUTES[i + 1..] {
                assert!(
                    !(a.method == b.method && a.path == b.path),
                    "duplicate route {} {}",
                    a.method,
                    a.path
                );
            }
        }
    }

    #[test]
    fn table_lists_every_route() {
        let t = markdown_table();
        for r in ROUTES {
            assert!(t.contains(r.path), "{} missing from table", r.path);
        }
    }
}
