//! Robust local-linear smoothing ("smoothing method with robust weights").
//!
//! The paper preprocesses the transect data "by a smoothing method with
//! robust weights so that anomalies are removed" (§6). We implement the
//! classic LOWESS-style scheme (Cleveland 1979), restricted to a fixed-width
//! sample window:
//!
//! 1. For each sample, fit a weighted local linear regression over the
//!    surrounding window, with tricube distance weights.
//! 2. Compute residuals, derive bisquare robustness weights from the median
//!    absolute residual, and refit. Iterate a small number of times.
//!
//! Spike anomalies receive near-zero robustness weight after the first
//! iteration and are effectively replaced by the local trend, while genuine
//! transient drops — which move many consecutive samples — survive.

use crate::TimeSeries;

/// Configuration for [`RobustSmoother`].
#[derive(Debug, Clone)]
pub struct RobustSmoother {
    /// Half-width of the smoothing window, in samples.
    pub half_width: usize,
    /// Number of robustness iterations (0 = plain local linear fit).
    pub iterations: u32,
}

impl Default for RobustSmoother {
    fn default() -> Self {
        Self {
            half_width: 5,
            iterations: 2,
        }
    }
}

impl RobustSmoother {
    /// Creates a smoother with the given half-width and two robustness
    /// iterations.
    pub fn new(half_width: usize) -> Self {
        Self {
            half_width,
            ..Self::default()
        }
    }

    /// Returns the smoothed copy of `series`.
    pub fn smooth(&self, series: &TimeSeries) -> TimeSeries {
        let n = series.len();
        if n < 3 || self.half_width == 0 {
            return series.clone();
        }
        let ts = series.times();
        let vs = series.values();
        let mut robustness = vec![1.0f64; n];
        let mut fitted = vs.to_vec();

        for iter in 0..=self.iterations {
            for i in 0..n {
                let lo = i.saturating_sub(self.half_width);
                let hi = (i + self.half_width + 1).min(n);
                fitted[i] = local_linear(ts, vs, &robustness, lo, hi, ts[i]);
            }
            if iter == self.iterations {
                break;
            }
            // Bisquare robustness weights from the residual scale. The scale
            // is floored relative to the data's range so that an (almost)
            // perfectly fitted series does not zero out every weight over
            // machine-epsilon residuals.
            let range = series.value_range();
            let mut absres: Vec<f64> = (0..n).map(|i| (vs[i] - fitted[i]).abs()).collect();
            let s = median(&mut absres).max(1e-6 * range.max(1.0));
            for i in 0..n {
                let u = (vs[i] - fitted[i]).abs() / (6.0 * s);
                robustness[i] = if u >= 1.0 {
                    0.0
                } else {
                    let b = 1.0 - u * u;
                    b * b
                };
            }
        }
        TimeSeries::from_parts(ts.to_vec(), fitted)
    }
}

/// Weighted local linear fit of `(ts, vs)` over `[lo, hi)`, evaluated at `x`.
/// Weights are tricube in distance times the robustness weight.
fn local_linear(ts: &[f64], vs: &[f64], rob: &[f64], lo: usize, hi: usize, x: f64) -> f64 {
    let dmax = (ts[hi - 1] - x).abs().max((ts[lo] - x).abs()).max(1e-12);
    let (mut sw, mut swx, mut swy, mut swxx, mut swxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for k in lo..hi {
        let d = ((ts[k] - x) / dmax).abs();
        let tri = {
            let c = 1.0 - d * d * d;
            if c <= 0.0 {
                0.0
            } else {
                c * c * c
            }
        };
        let w = tri * rob[k];
        if w == 0.0 {
            continue;
        }
        let xc = ts[k] - x; // center for numerical stability
        sw += w;
        swx += w * xc;
        swy += w * vs[k];
        swxx += w * xc * xc;
        swxy += w * xc * vs[k];
    }
    if sw == 0.0 {
        // Every neighbour was robustness-weighted to zero (e.g. a window full
        // of anomalies): fall back to the plain tricube-weighted mean.
        let (mut sw2, mut swy2) = (0.0, 0.0);
        for k in lo..hi {
            let d = ((ts[k] - x) / dmax).abs();
            let c = 1.0 - d * d * d;
            let tri = if c <= 0.0 { 0.0 } else { c * c * c };
            sw2 += tri;
            swy2 += tri * vs[k];
        }
        let mid = (lo + hi) / 2;
        return if sw2 > 0.0 { swy2 / sw2 } else { vs[mid] };
    }
    let denom = sw * swxx - swx * swx;
    if denom.abs() < 1e-12 {
        return swy / sw; // degenerate: weighted mean
    }
    let slope = (sw * swxy - swx * swy) / denom;

    (swy - slope * swx) / sw // evaluated at xc = 0, i.e. at x
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mid = xs.len() / 2;
    xs.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
    xs[mid]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_series(n: usize) -> TimeSeries {
        (0..n)
            .map(|i| (i as f64 * 10.0, 2.0 + 0.5 * i as f64))
            .collect()
    }

    #[test]
    fn preserves_linear_signal() {
        let s = line_series(100);
        let sm = RobustSmoother::default().smooth(&s);
        for i in 0..s.len() {
            assert!(
                (sm.values()[i] - s.values()[i]).abs() < 1e-9,
                "local linear fit must reproduce a line exactly at {i}"
            );
        }
    }

    #[test]
    fn removes_isolated_spike() {
        let mut s = line_series(100);
        s.values_mut()[50] += 25.0;
        let sm = RobustSmoother::default().smooth(&s);
        let expected = 2.0 + 0.5 * 50.0;
        assert!(
            (sm.values()[50] - expected).abs() < 0.5,
            "spike survived: {} vs {expected}",
            sm.values()[50]
        );
    }

    #[test]
    fn preserves_genuine_drop() {
        // A 5-degree drop over 8 consecutive samples is signal, not anomaly.
        let mut vs: Vec<f64> = vec![10.0; 40];
        for (i, v) in vs.iter_mut().enumerate().skip(20) {
            *v = if i < 28 {
                10.0 - 5.0 * (i - 20) as f64 / 8.0
            } else {
                5.0
            };
        }
        let ts: Vec<f64> = (0..40).map(|i| i as f64 * 300.0).collect();
        let s = TimeSeries::from_parts(ts, vs);
        let sm = RobustSmoother::default().smooth(&s);
        let total_drop = sm.values()[35] - sm.values()[15];
        assert!(total_drop < -4.0, "drop flattened to {total_drop}");
    }

    #[test]
    fn short_series_passthrough() {
        let s = line_series(2);
        assert_eq!(RobustSmoother::default().smooth(&s), s);
    }

    #[test]
    fn zero_half_width_passthrough() {
        let s = line_series(10);
        let sm = RobustSmoother {
            half_width: 0,
            iterations: 2,
        };
        assert_eq!(sm.smooth(&s), s);
    }

    #[test]
    fn median_of_small_slices() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn smoothing_reduces_noise_variance() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut s = TimeSeries::new();
        for i in 0..500 {
            let t = i as f64 * 300.0;
            s.push(
                t,
                (t / 5000.0).sin() * 5.0 + crate::rng::normal(&mut rng, 0.0, 0.4),
            );
        }
        let sm = RobustSmoother::default().smooth(&s);
        let noise_raw: f64 = (0..500)
            .map(|i| {
                let t = i as f64 * 300.0;
                (s.values()[i] - (t / 5000.0).sin() * 5.0).powi(2)
            })
            .sum();
        let noise_sm: f64 = (0..500)
            .map(|i| {
                let t = i as f64 * 300.0;
                (sm.values()[i] - (t / 5000.0).sin() * 5.0).powi(2)
            })
            .sum();
        assert!(
            noise_sm < noise_raw / 2.0,
            "raw {noise_raw} smoothed {noise_sm}"
        );
    }
}
