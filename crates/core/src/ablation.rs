//! Ablation variant: store **all four** parallelogram corners.
//!
//! The paper's corner reduction (§4.3.1) stores only the 1–3 corners of
//! the region-facing boundary. [`FullCornerIndex`] is the control arm: it
//! stores every corner and answers queries with the exact geometric
//! intersection test, so experiments can quantify what the reduction buys
//! (the paper's claim: it "effectively reduces the storage of
//! parallelograms' corners by half") while verifying that both forms
//! return identical result sets.

use crate::query::{QueryPlan, QueryStats};
use crate::result::{sort_dedup, SegmentPair};
use featurespace::{
    extract_full_corners, extract_full_self_corners, full_corners_intersect, FeaturePoint,
    QueryRegion, SearchKind,
};
use pagestore::{Database, Result, Table, TableSpec};
use segmentation::{Segment, SlidingWindowSegmenter};
use sensorgen::TimeSeries;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const COLS: [&str; 12] = [
    "dt1", "dv1", "dt2", "dv2", "dt3", "dv3", "dt4", "dv4", "td", "tc", "tb", "ta",
];

/// Size statistics of a [`FullCornerIndex`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FullCornerStats {
    /// Observations ingested.
    pub n_observations: u64,
    /// Segments produced.
    pub n_segments: u64,
    /// Stored parallelogram rows.
    pub n_rows: u64,
    /// Raw payload bytes (rows × 12 columns × 8).
    pub feature_payload_bytes: u64,
    /// Heap bytes on disk.
    pub heap_bytes: u64,
}

/// The un-reduced four-corner feature store (sequential-scan queries only —
/// this is a measurement control, not a production path).
pub struct FullCornerIndex {
    db: Arc<Database>,
    drop_table: Arc<Table>,
    jump_table: Arc<Table>,
    segmenter: SlidingWindowSegmenter,
    epsilon: f64,
    window: f64,
    prev: VecDeque<Segment>,
    n_observations: u64,
    n_segments: u64,
}

impl FullCornerIndex {
    /// Creates the ablation index under `dir`.
    pub fn create(dir: &Path, epsilon: f64, window: f64, pool_pages: usize) -> Result<Self> {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive"
        );
        let db = Database::create(dir, pool_pages)?;
        let drop_table = db.create_table(TableSpec::new("drop4", &COLS))?;
        let jump_table = db.create_table(TableSpec::new("jump4", &COLS))?;
        Ok(Self {
            db,
            drop_table,
            jump_table,
            segmenter: SlidingWindowSegmenter::new(epsilon),
            epsilon,
            window,
            prev: VecDeque::new(),
            n_observations: 0,
            n_segments: 0,
        })
    }

    /// Ingests one observation.
    pub fn push(&mut self, t: f64, v: f64) -> Result<()> {
        self.n_observations += 1;
        if let Some(seg) = self.segmenter.push(t, v) {
            self.store_segment(seg)?;
        }
        Ok(())
    }

    /// Ingests a whole series.
    pub fn ingest_series(&mut self, series: &TimeSeries) -> Result<()> {
        for (t, v) in series.iter() {
            self.push(t, v)?;
        }
        Ok(())
    }

    /// Flushes the trailing segment and persists.
    pub fn finish(&mut self) -> Result<()> {
        if let Some(seg) = self.segmenter.finish() {
            self.store_segment(seg)?;
        }
        self.db.flush()
    }

    fn store_segment(&mut self, ab: Segment) -> Result<()> {
        self.n_segments += 1;
        let win_start = ab.t_start - self.window;
        while let Some(front) = self.prev.front() {
            if front.t_end <= win_start {
                self.prev.pop_front();
            } else {
                break;
            }
        }
        let mut row = [0.0f64; 12];
        for cd in &self.prev {
            let Some(cd_eff) = cd.truncate_left(win_start) else {
                continue;
            };
            for kind in [SearchKind::Drop, SearchKind::Jump] {
                if let Some(corners) = extract_full_corners(&cd_eff, &ab, self.epsilon, kind) {
                    Self::fill_row(&mut row, &corners, &cd_eff, &ab);
                    self.table(kind).insert(&row)?;
                }
            }
        }
        for kind in [SearchKind::Drop, SearchKind::Jump] {
            if let Some(corners) = extract_full_self_corners(&ab, self.epsilon, kind) {
                Self::fill_row(&mut row, &corners, &ab, &ab);
                self.table(kind).insert(&row)?;
            }
        }
        self.prev.push_back(ab);
        Ok(())
    }

    fn table(&self, kind: SearchKind) -> &Arc<Table> {
        match kind {
            SearchKind::Drop => &self.drop_table,
            SearchKind::Jump => &self.jump_table,
        }
    }

    fn fill_row(row: &mut [f64; 12], corners: &[FeaturePoint; 4], cd: &Segment, ab: &Segment) {
        for (i, p) in corners.iter().enumerate() {
            row[2 * i] = p.dt;
            row[2 * i + 1] = p.dv;
        }
        row[8] = cd.t_start;
        row[9] = cd.t_end;
        row[10] = ab.t_start;
        row[11] = ab.t_end;
    }

    /// Runs a search by sequential scan with the exact four-corner test.
    pub fn query(&self, region: &QueryRegion) -> Result<(Vec<SegmentPair>, QueryStats)> {
        assert!(
            region.t <= self.window,
            "query T={} exceeds window w={}",
            region.t,
            self.window
        );
        let io_before = self.db.stats();
        let start = Instant::now();
        let mut rows_considered = 0u64;
        let mut out = Vec::new();
        self.table(region.kind).seq_scan(|_, row| {
            rows_considered += 1;
            let corners = [
                FeaturePoint::new(row[0], row[1]),
                FeaturePoint::new(row[2], row[3]),
                FeaturePoint::new(row[4], row[5]),
                FeaturePoint::new(row[6], row[7]),
            ];
            if full_corners_intersect(&corners, region) {
                out.push(SegmentPair {
                    t_d: row[8],
                    t_c: row[9],
                    t_b: row[10],
                    t_a: row[11],
                });
            }
            true
        })?;
        sort_dedup(&mut out);
        let stats = QueryStats {
            wall_seconds: start.elapsed().as_secs_f64(),
            rows_considered,
            results: out.len() as u64,
            io: self.db.stats().since(&io_before),
            phases: Vec::new(),
        };
        Ok((out, stats))
    }

    /// Size statistics.
    pub fn stats(&self) -> FullCornerStats {
        FullCornerStats {
            n_observations: self.n_observations,
            n_segments: self.n_segments,
            n_rows: self.drop_table.num_rows() + self.jump_table.num_rows(),
            feature_payload_bytes: self.drop_table.payload_bytes()
                + self.jump_table.payload_bytes(),
            heap_bytes: self.drop_table.heap_bytes() + self.jump_table.heap_bytes(),
        }
    }

    /// Makes subsequent queries run cold.
    pub fn clear_cache(&self) -> Result<()> {
        self.db.clear_cache()
    }

    /// The plans this index supports (scan only).
    pub fn supported_plan() -> QueryPlan {
        QueryPlan::SeqScan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueryPlan, SegDiffConfig, SegDiffIndex};
    use sensorgen::HOUR;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("segdiff-full-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn walk(n: usize, seed: u64) -> TimeSeries {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 0.0;
        (0..n)
            .map(|i| {
                v += (rng.random::<f64>() - 0.5) * 2.0;
                (i as f64 * 300.0, v)
            })
            .collect()
    }

    #[test]
    fn matches_reduced_index_results() {
        let series = walk(400, 3);
        let eps = 0.25;
        let w = 4.0 * HOUR;
        let d1 = tmpdir("full");
        let d2 = tmpdir("reduced");
        let mut full = FullCornerIndex::create(&d1, eps, w, 1024).unwrap();
        full.ingest_series(&series).unwrap();
        full.finish().unwrap();
        let mut reduced = SegDiffIndex::create(
            &d2,
            SegDiffConfig::default().with_epsilon(eps).with_window(w),
        )
        .unwrap();
        reduced.ingest_series(&series).unwrap();
        reduced.finish().unwrap();

        for region in [
            QueryRegion::drop(1.0 * HOUR, -1.0),
            QueryRegion::drop(3.0 * HOUR, -3.0),
            QueryRegion::jump(2.0 * HOUR, 2.0),
        ] {
            let (a, _) = full.query(&region).unwrap();
            let (b, _) = reduced.query(&region, QueryPlan::SeqScan).unwrap();
            assert_eq!(a, b, "representations disagree for {region:?}");
            assert!(!a.is_empty() || region.v.abs() > 2.5, "query too easy");
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }

    #[test]
    fn reduction_saves_space() {
        let series = walk(600, 9);
        let d1 = tmpdir("space-full");
        let d2 = tmpdir("space-reduced");
        let mut full = FullCornerIndex::create(&d1, 0.2, 4.0 * HOUR, 1024).unwrap();
        full.ingest_series(&series).unwrap();
        full.finish().unwrap();
        let mut reduced = SegDiffIndex::create(
            &d2,
            SegDiffConfig::default()
                .with_epsilon(0.2)
                .with_window(4.0 * HOUR),
        )
        .unwrap();
        reduced.ingest_series(&series).unwrap();
        reduced.finish().unwrap();

        let f = full.stats();
        let r = reduced.stats();
        // Same pairs stored, so row counts match; the payload shrinks
        // because 1-3 corners replace 4 (plus per-row bookkeeping).
        assert_eq!(f.n_rows, r.n_rows);
        assert!(
            (r.feature_payload_bytes as f64) < 0.85 * f.feature_payload_bytes as f64,
            "reduced {} vs full {}",
            r.feature_payload_bytes,
            f.feature_payload_bytes
        );
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }
}
