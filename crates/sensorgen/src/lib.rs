#![warn(missing_docs)]

//! Synthetic sensor-network workloads and the paper's data generating model.
//!
//! The paper evaluates SegDiff on air-temperature data recorded by the Cold
//! Air Drainage (CAD) transect at James Reserve: twenty-five wireless sensors
//! across a canyon, sampling every five minutes for a year. That data set is
//! not publicly available, so this crate provides a statistically faithful
//! substitute:
//!
//! * [`TimeSeries`] — the basic one-dimensional series type used everywhere
//!   else in the workspace, together with the paper's **Data Generating Model
//!   G** (linear interpolation between consecutive samples, Definition 1).
//! * [`CadTransectConfig`] / [`generate_transect`] — a generator producing a
//!   canyon transect of temperature series with seasonal and diurnal cycles,
//!   stochastic weather fronts, injected early-morning cold-air-drainage
//!   events, sensor noise, and occasional spike anomalies.
//! * [`smooth::RobustSmoother`] — the "smoothing method with robust weights"
//!   the paper applies before indexing, so that anomalies are removed.
//!
//! # Example
//!
//! ```
//! use sensorgen::{CadTransectConfig, generate_sensor};
//!
//! let cfg = CadTransectConfig::default().with_days(7);
//! let series = generate_sensor(&cfg, 0, 42);
//! assert!(series.len() > 7 * 24 * 10); // ~5-minute sampling
//! // Model G: interpolate between samples.
//! let (t0, _) = series.get(0);
//! let (t1, _) = series.get(1);
//! assert!(series.interpolate(0.5 * (t0 + t1)).is_some());
//! ```

mod cad;
mod csv;
mod events;
mod noise;
mod rng;
mod series;
pub mod smooth;
mod weather;

pub use cad::{
    generate_sensor, generate_transect, generate_transect_correlated, CadTransectConfig,
};
pub use csv::{read_csv, write_csv, CsvError};
pub use events::{CadEvent, EventSchedule};
pub use noise::NoiseConfig;
pub use rng::{normal, sample_exp};
pub use series::TimeSeries;
pub use weather::WeatherModel;

/// Seconds per minute.
pub const MINUTE: f64 = 60.0;
/// Seconds per hour.
pub const HOUR: f64 = 3600.0;
/// Seconds per day.
pub const DAY: f64 = 86_400.0;
/// The transect's sampling period: one observation every five minutes.
pub const SAMPLE_PERIOD: f64 = 5.0 * MINUTE;
