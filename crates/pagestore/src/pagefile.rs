//! File-backed page storage.

use crate::error::Result;
use crate::{StoreError, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Identifier of a page within one [`PageFile`].
pub type PageId = u32;

/// Identifier of a file registered with the buffer pool.
pub type FileId = u32;

/// A file holding an array of fixed-size pages.
///
/// `PageFile` does raw, unbuffered page I/O; all caching lives in the
/// [`crate::BufferPool`]. Not internally synchronized — callers (the pool)
/// serialize access.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    path: PathBuf,
    pages: u32,
}

impl PageFile {
    /// Creates a new empty page file, truncating any existing file.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            pages: 0,
        })
    }

    /// Opens an existing page file.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StoreError::Corrupt(format!(
                "{} has length {len}, not a multiple of the page size",
                path.display()
            )));
        }
        Ok(Self {
            file,
            path: path.to_path_buf(),
            pages: (len / PAGE_SIZE as u64) as u32,
        })
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.pages
    }

    /// Total size on disk in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.pages as u64 * PAGE_SIZE as u64
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a zeroed page and returns its id.
    pub fn allocate(&mut self) -> Result<PageId> {
        let id = self.pages;
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        self.pages += 1;
        Ok(id)
    }

    /// Reads page `id` into `buf`.
    pub fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        if id >= self.pages {
            return Err(StoreError::Corrupt(format!(
                "read of page {id} beyond end ({} pages) in {}",
                self.pages,
                self.path.display()
            )));
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    /// Writes `buf` to page `id`.
    pub fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        if id >= self.pages {
            return Err(StoreError::Corrupt(format!(
                "write of page {id} beyond end ({} pages) in {}",
                self.pages,
                self.path.display()
            )));
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    /// Flushes file contents to the OS (no durability guarantee).
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    /// Flushes and fsyncs: contents and length are durable on return.
    pub fn sync_all(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pagestore-pf-{}-{name}", std::process::id()))
    }

    #[test]
    fn allocate_read_write_roundtrip() {
        let p = tmp("rw");
        let mut f = PageFile::create(&p).unwrap();
        let a = f.allocate().unwrap();
        let b = f.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 42;
        page[PAGE_SIZE - 1] = 7;
        f.write_page(b, &page).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        f.read_page(b, &mut back).unwrap();
        assert_eq!(page, back);
        f.read_page(a, &mut back).unwrap();
        assert!(back.iter().all(|&x| x == 0));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn out_of_bounds_rejected() {
        let p = tmp("oob");
        let mut f = PageFile::create(&p).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(f.read_page(0, &mut buf).is_err());
        assert!(f.write_page(3, &buf).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn reopen_preserves_pages() {
        let p = tmp("reopen");
        {
            let mut f = PageFile::create(&p).unwrap();
            f.allocate().unwrap();
            f.allocate().unwrap();
            let mut page = [9u8; PAGE_SIZE];
            page[17] = 1;
            f.write_page(1, &page).unwrap();
            f.sync().unwrap();
        }
        let mut f = PageFile::open(&p).unwrap();
        assert_eq!(f.num_pages(), 2);
        assert_eq!(f.size_bytes(), 2 * PAGE_SIZE as u64);
        let mut buf = [0u8; PAGE_SIZE];
        f.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[17], 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn open_rejects_ragged_file() {
        let p = tmp("ragged");
        std::fs::write(&p, vec![0u8; PAGE_SIZE + 13]).unwrap();
        assert!(matches!(PageFile::open(&p), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&p).ok();
    }
}
