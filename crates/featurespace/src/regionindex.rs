//! An index over *registered query regions*: the dual of the historical
//! query path.
//!
//! Historical search indexes stored features and probes them with one
//! region; standing queries invert this — thousands of regions are
//! registered up front and every newly committed feature boundary must
//! find the regions it intersects. A linear scan is O(regions) per
//! feature; this index makes it O(matching + occupied cells).
//!
//! Regions are bucketed on a logarithmic grid over `(T, |V|)`: cell
//! `(i, j)` holds regions with `T ∈ [2ⁱ, 2ⁱ⁺¹)` and `|V| ∈ [2ʲ, 2ʲ⁺¹)`,
//! per [`SearchKind`]. Each cell's *representative* is the most
//! permissive region any member could be — `T` at the cell's upper bound,
//! `|V|` at its lower bound — so [`zone_may_intersect`] on the
//! representative is a sound coarse test: if it fails, no member region
//! can intersect the boundary (the ε shift is already folded into the
//! boundary corners, so cell bounds need no shift of their own). Cells
//! that survive refine member by member with the exact
//! [`Boundary::intersects`] predicate, which stays the single source of
//! truth — [`RegionIndex::matches_brute`] runs it over every member and
//! the property tests assert both paths return identical sets.

use crate::batch::zone_may_intersect;
use crate::{Boundary, QueryRegion, SearchKind};
use std::collections::HashMap;

/// Work counters for one [`RegionIndex::matches`] call, accumulated
/// across calls so ingest paths can expose O(matching) evidence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionMatchStats {
    /// Grid cells whose representative was zone-tested.
    pub cells_visited: u64,
    /// Member regions tested with the exact intersection predicate.
    pub regions_tested: u64,
}

#[derive(Debug)]
struct Cell {
    /// Most permissive region representable in this cell: `T` at the
    /// upper cell bound, `|V|` at the lower. Sound for pruning because
    /// [`zone_may_intersect`] is monotone in both thresholds.
    rep: QueryRegion,
    members: Vec<(u64, QueryRegion)>,
}

/// A logarithmic `(T, |V|)` grid over registered query regions,
/// supporting exact "which regions does this boundary intersect" lookups
/// in O(matching + occupied cells) instead of O(all regions).
#[derive(Debug, Default)]
pub struct RegionIndex {
    cells: HashMap<(SearchKind, i32, i32), Cell>,
    len: usize,
}

/// Clamped `floor(log2(x))` for a positive finite threshold.
fn bucket(x: f64) -> i32 {
    debug_assert!(x > 0.0);
    (x.log2().floor()).clamp(-1074.0, 1022.0) as i32
}

/// The most permissive region in cell `(bt, bv)`: largest `T`, smallest
/// `|V|`. Built as a struct literal — the upper `T` bound may exceed what
/// the checked constructors accept, and only `zone_may_intersect` ever
/// sees it.
fn representative(kind: SearchKind, bt: i32, bv: i32) -> QueryRegion {
    let t = f64::exp2(f64::from(bt) + 1.0);
    let t = if t.is_finite() { t } else { f64::MAX };
    let mag = f64::exp2(f64::from(bv));
    let v = match kind {
        SearchKind::Drop => -mag,
        SearchKind::Jump => mag,
    };
    QueryRegion { kind, t, v }
}

fn cell_key(region: &QueryRegion) -> (SearchKind, i32, i32) {
    (region.kind, bucket(region.t), bucket(region.v.abs()))
}

/// Flattens a boundary into the `(Δt₁, Δv₁, …)` column layout
/// [`zone_may_intersect`] expects; for a single boundary the per-column
/// min and max coincide with the corner itself.
fn corner_columns(boundary: &Boundary) -> ([f64; 6], usize) {
    let mut cols = [0.0; 6];
    let corners = boundary.corners();
    for (j, p) in corners.iter().enumerate() {
        cols[2 * j] = p.dt;
        cols[2 * j + 1] = p.dv;
    }
    (cols, corners.len())
}

impl RegionIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Registers `region` under the caller-chosen `id`. Ids are opaque to
    /// the index; registering the same id twice stores it twice.
    pub fn insert(&mut self, id: u64, region: QueryRegion) {
        let key = cell_key(&region);
        let cell = self.cells.entry(key).or_insert_with(|| Cell {
            rep: representative(key.0, key.1, key.2),
            members: Vec::new(),
        });
        cell.members.push((id, region));
        self.len += 1;
    }

    /// Removes the registration `(id, region)`; returns whether it was
    /// present. The region must match what was inserted — it names the
    /// cell to search.
    pub fn remove(&mut self, id: u64, region: &QueryRegion) -> bool {
        let key = cell_key(region);
        let Some(cell) = self.cells.get_mut(&key) else {
            return false;
        };
        let Some(pos) = cell.members.iter().position(|(mid, _)| *mid == id) else {
            return false;
        };
        cell.members.swap_remove(pos);
        self.len -= 1;
        if cell.members.is_empty() {
            self.cells.remove(&key);
        }
        true
    }

    /// Appends to `out` the ids of every registered region the boundary
    /// intersects, via the grid: zone-test each occupied cell's
    /// representative, then refine surviving cells member by member with
    /// the exact predicate. Work counters accumulate into `stats`.
    ///
    /// Lossless by construction — returns exactly the ids
    /// [`Self::matches_brute`] returns, in unspecified order.
    pub fn matches(&self, boundary: &Boundary, out: &mut Vec<u64>, stats: &mut RegionMatchStats) {
        let (cols, corners) = corner_columns(boundary);
        for cell in self.cells.values() {
            stats.cells_visited += 1;
            if !zone_may_intersect(corners, &cols, &cols, &cell.rep) {
                continue;
            }
            for (id, region) in &cell.members {
                stats.regions_tested += 1;
                if boundary.intersects(region) {
                    out.push(*id);
                }
            }
        }
    }

    /// Reference implementation: the exact predicate over *every*
    /// registered region, no pruning. The property tests assert
    /// [`Self::matches`] agrees with this bit for bit.
    pub fn matches_brute(&self, boundary: &Boundary) -> Vec<u64> {
        let mut out = Vec::new();
        for cell in self.cells.values() {
            for (id, region) in &cell.members {
                if boundary.intersects(region) {
                    out.push(*id);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeaturePoint;

    /// Tiny deterministic LCG, same recurrence the batch tests use.
    struct Lcg(f64);

    impl Lcg {
        fn next(&mut self) -> f64 {
            self.0 = (self.0 * 9301.0 + 49297.0) % 233280.0;
            self.0 / 233280.0
        }

        /// Uniform in `[lo, hi)`.
        fn range(&mut self, lo: f64, hi: f64) -> f64 {
            lo + self.next() * (hi - lo)
        }
    }

    fn random_region(rng: &mut Lcg) -> QueryRegion {
        // Thresholds spanning several log-buckets in both axes.
        let t = f64::exp2(rng.range(-2.0, 6.0));
        let mag = f64::exp2(rng.range(-3.0, 3.0));
        if rng.next() < 0.5 {
            QueryRegion::drop(t, -mag)
        } else {
            QueryRegion::jump(t, mag)
        }
    }

    fn random_boundary(rng: &mut Lcg) -> Boundary {
        let mut dts = [
            rng.range(0.0, 40.0),
            rng.range(0.0, 40.0),
            rng.range(0.0, 40.0),
        ];
        dts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let dv = |rng: &mut Lcg| rng.range(-8.0, 8.0);
        match (rng.next() * 3.0) as u32 {
            0 => Boundary::one(FeaturePoint::new(dts[0], dv(rng))),
            1 => Boundary::two(
                FeaturePoint::new(dts[0], dv(rng)),
                FeaturePoint::new(dts[1], dv(rng)),
            ),
            _ => Boundary::three(
                FeaturePoint::new(dts[0], dv(rng)),
                FeaturePoint::new(dts[1], dv(rng)),
                FeaturePoint::new(dts[2], dv(rng)),
            ),
        }
    }

    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut idx = RegionIndex::new();
        assert!(idx.is_empty());
        let r1 = QueryRegion::drop(10.0, -2.0);
        let r2 = QueryRegion::jump(10.0, 2.0);
        idx.insert(1, r1);
        idx.insert(2, r2);
        assert_eq!(idx.len(), 2);
        assert!(idx.remove(1, &r1));
        assert!(!idx.remove(1, &r1));
        assert!(!idx.remove(2, &r1)); // wrong cell: jump vs drop
        assert!(idx.remove(2, &r2));
        assert!(idx.is_empty());
    }

    #[test]
    fn matches_finds_registered_regions() {
        let mut idx = RegionIndex::new();
        idx.insert(7, QueryRegion::drop(20.0, -5.0));
        idx.insert(8, QueryRegion::drop(1.0, -5.0));
        idx.insert(9, QueryRegion::jump(20.0, 5.0));
        // Right corner lies inside region 7 only.
        let b = Boundary::two(FeaturePoint::new(2.0, -1.0), FeaturePoint::new(12.0, -6.0));
        let mut out = Vec::new();
        let mut stats = RegionMatchStats::default();
        idx.matches(&b, &mut out, &mut stats);
        assert_eq!(out, vec![7]);
        assert_eq!(sorted(idx.matches_brute(&b)), vec![7]);
        assert!(stats.cells_visited >= 1);
    }

    #[test]
    fn indexed_matching_equals_brute_force() {
        // The losslessness property: for random region sets and random
        // boundaries, the grid path returns exactly the brute-force set.
        let mut rng = Lcg(0.41);
        let rounds = if cfg!(miri) { 3 } else { 60 };
        let boundaries_per_round = if cfg!(miri) { 5 } else { 80 };
        for round in 0..rounds {
            let mut idx = RegionIndex::new();
            let n_regions = 1 + (round * 7) % 50;
            for id in 0..n_regions {
                idx.insert(id as u64, random_region(&mut rng));
            }
            for _ in 0..boundaries_per_round {
                let b = random_boundary(&mut rng);
                let mut out = Vec::new();
                let mut stats = RegionMatchStats::default();
                idx.matches(&b, &mut out, &mut stats);
                assert_eq!(
                    sorted(out),
                    sorted(idx.matches_brute(&b)),
                    "index diverged from brute force for {b:?}"
                );
            }
        }
    }

    #[test]
    fn grid_prunes_non_matching_cells() {
        // 1000 deep-drop regions a shallow boundary cannot reach: the
        // grid must test far fewer regions than the brute scan would.
        let mut idx = RegionIndex::new();
        for id in 0..1000 {
            idx.insert(id, QueryRegion::drop(100.0, -64.0 - (id % 7) as f64));
        }
        idx.insert(9999, QueryRegion::drop(100.0, -0.5));
        let b = Boundary::two(FeaturePoint::new(1.0, -0.2), FeaturePoint::new(9.0, -1.0));
        let mut out = Vec::new();
        let mut stats = RegionMatchStats::default();
        idx.matches(&b, &mut out, &mut stats);
        assert_eq!(out, vec![9999]);
        assert!(
            stats.regions_tested < 100,
            "expected pruning, tested {} regions",
            stats.regions_tested
        );
    }
}
