//! Append-only heap files of `f64` rows, in raw or compressed columnar pages.

use crate::buffer::BufferPool;
use crate::colpage::{self, ColPageBuilder};
use crate::error::Result;
use crate::page::{self, PageBuf};
use crate::pagefile::FileId;
use crate::zonemap::{ZoneMap, ZONE_LEVELS};
use crate::{StoreError, PAGE_SIZE};
use std::sync::Arc;

/// Identifies a row: the data page number in the high bits, the slot within
/// the page in the low 16 bits.
pub type RowId = u64;

pub(crate) const MAGIC: u32 = 0x5344_4850; // "SDHP"
pub(crate) const PAGE_HDR: usize = 8; // u16 row count + format tag + padding
const META_PAGE: u32 = 0;

/// On-disk page layout of a heap's data pages.
///
/// * `Raw` — fixed-width rows of little-endian f64s (the original format;
///   the discriminant matches the zero meta bytes of pre-format heaps).
/// * `Columnar` — compressed [`crate::colpage`] pages: per-column
///   delta/frame-of-reference/XOR encodings with a raw fallback, chosen
///   per column per page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u16)]
pub enum PageFormat {
    /// Fixed-width row-major f64 pages.
    #[default]
    Raw = 0,
    /// Bit-packed columnar pages.
    Columnar = 1,
}

impl PageFormat {
    /// The on-disk meta tag.
    pub fn tag(self) -> u16 {
        self as u16
    }

    /// Parses the meta tag.
    pub fn from_tag(tag: u16) -> Result<Self> {
        match tag {
            0 => Ok(PageFormat::Raw),
            1 => Ok(PageFormat::Columnar),
            other => Err(StoreError::Corrupt(format!(
                "unknown heap page format tag {other}"
            ))),
        }
    }

    /// Human-readable name (used in stats and reports).
    pub fn name(self) -> &'static str {
        match self {
            PageFormat::Raw => "raw",
            PageFormat::Columnar => "columnar",
        }
    }
}

#[inline]
fn rid(page: u32, slot: u16) -> RowId {
    ((page as u64) << 16) | slot as u64
}

#[inline]
fn rid_parts(r: RowId) -> (u32, u16) {
    ((r >> 16) as u32, (r & 0xFFFF) as u16)
}

/// An append-only table file of rows with a fixed number of `f64` columns.
///
/// Page 0 holds metadata (magic, column count, row count, page format);
/// data pages follow. All I/O goes through the shared [`BufferPool`].
pub struct HeapFile {
    pool: Arc<BufferPool>,
    fid: FileId,
    ncols: usize,
    format: PageFormat,
    /// Raw-format rows per page; meaningless for columnar heaps (their
    /// capacity varies with compressibility).
    rows_per_page: usize,
    nrows: u64,
    /// Last data page and its row count, for O(1) appends.
    tail: Option<(u32, u16)>,
    /// Columnar tail staging: mirrors the rows of the tail page so an
    /// append can re-encode it without re-decoding. Rebuilt lazily from
    /// the tail page after open.
    builder: Option<ColPageBuilder>,
    /// Hierarchical min/max column summaries, when available. Maintained
    /// incrementally on insert; `None` after opening a heap whose sidecar
    /// was missing or stale (rebuild with [`HeapFile::rebuild_zones`]).
    zones: Option<ZoneMap>,
}

/// Page-skip accounting returned by the zone-pruned scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneScanStats {
    /// Data pages whose rows were decoded and visited.
    pub pages_scanned: u64,
    /// Data pages skipped because a zone summary failed the filter.
    pub pages_pruned: u64,
    /// Whole extents (and the segment entry, counted as its extents)
    /// rejected without touching their per-page entries.
    pub extents_pruned: u64,
}

/// Compression accounting for one heap (see
/// [`HeapFile::compression_stats`]). `raw_bytes` is what the rows would
/// occupy as fixed-width f64 payload; `stored_bytes` is the encoded
/// payload actually stored (directory overhead included for columnar
/// pages).
#[derive(Debug, Clone, Default)]
pub struct CompressionStats {
    /// Data pages inspected.
    pub pages: u64,
    /// Fixed-width payload bytes the stored rows represent.
    pub raw_bytes: u64,
    /// Encoded payload bytes actually stored.
    pub stored_bytes: u64,
    /// Per-column encoded payload bytes.
    pub col_stored: Vec<u64>,
    /// Per-column fixed-width payload bytes.
    pub col_raw: Vec<u64>,
    /// Column payloads that fell back to the raw encoding.
    pub raw_fallback_cols: u64,
}

impl CompressionStats {
    /// Overall compression ratio (≥ 1.0 means the encoding paid off).
    pub fn ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.stored_bytes as f64
        }
    }
}

impl HeapFile {
    /// Creates an empty heap in the (already registered, freshly created)
    /// file `fid`.
    pub fn create(
        pool: Arc<BufferPool>,
        fid: FileId,
        ncols: usize,
        format: PageFormat,
    ) -> Result<Self> {
        assert!(
            ncols > 0 && ncols * 8 <= PAGE_SIZE - PAGE_HDR,
            "bad column count"
        );
        if format == PageFormat::Columnar {
            assert!(
                ncols <= colpage::max_cols(),
                "too many columns for columnar pages"
            );
        }
        let meta = pool.allocate_page(fid)?;
        debug_assert_eq!(meta, META_PAGE);
        let h = Self {
            pool,
            fid,
            ncols,
            format,
            rows_per_page: (PAGE_SIZE - PAGE_HDR) / (ncols * 8),
            nrows: 0,
            tail: None,
            builder: None,
            zones: Some(Self::new_zones(ncols, format)),
        };
        h.write_meta()?;
        Ok(h)
    }

    fn new_zones(ncols: usize, format: PageFormat) -> ZoneMap {
        obs::global()
            .gauge("zonemap.levels")
            .set(ZONE_LEVELS as i64);
        ZoneMap::new(ncols, format.tag())
    }

    /// Opens an existing heap in file `fid`.
    pub fn open(pool: Arc<BufferPool>, fid: FileId) -> Result<Self> {
        let (magic, ncols, nrows, ftag) = pool.with_page(fid, META_PAGE, |b| {
            (
                page::get_u32(b, 0),
                page::get_u16(b, 4) as usize,
                page::get_u64(b, 8),
                page::get_u16(b, 16),
            )
        })?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt("heap file has bad magic".into()));
        }
        let format = PageFormat::from_tag(ftag)?;
        let rows_per_page = (PAGE_SIZE - PAGE_HDR) / (ncols * 8);
        let tail = match format {
            PageFormat::Raw => {
                if nrows == 0 {
                    None
                } else {
                    let full_pages = (nrows as usize) / rows_per_page;
                    let rem = (nrows as usize) % rows_per_page;
                    if rem == 0 {
                        Some((full_pages as u32, rows_per_page as u16))
                    } else {
                        Some((full_pages as u32 + 1, rem as u16))
                    }
                }
            }
            PageFormat::Columnar => {
                // Variable rows per page: walk the headers up to the
                // logical row count. Pages past it are crash leftovers.
                let mut tail = None;
                let mut remaining = nrows;
                let npages = pool.file_pages(fid);
                for pid in 1..npages {
                    if remaining == 0 {
                        break;
                    }
                    let n = pool.with_page(fid, pid, |b| page::get_u16(b, 0))? as u64;
                    let take = n.min(remaining);
                    remaining -= take;
                    tail = Some((pid, take as u16));
                }
                if remaining > 0 {
                    return Err(StoreError::Corrupt(format!(
                        "columnar heap holds fewer rows than its meta count ({remaining} missing)"
                    )));
                }
                tail
            }
        };
        let zones = ZoneMap::load(&pool.file_path(fid), ncols, nrows, ftag);
        if zones.is_some() {
            obs::global()
                .gauge("zonemap.levels")
                .set(ZONE_LEVELS as i64);
        }
        Ok(Self {
            pool,
            fid,
            ncols,
            format,
            rows_per_page,
            nrows,
            tail,
            builder: None,
            zones,
        })
    }

    fn write_meta(&self) -> Result<()> {
        self.pool.with_page_mut(self.fid, META_PAGE, |b| {
            page::put_u32(b, 0, MAGIC);
            page::put_u16(b, 4, self.ncols as u16);
            page::put_u64(b, 8, self.nrows);
            page::put_u16(b, 16, self.format.tag());
        })
    }

    /// Persists the row count to the meta page, and the zone-map sidecar
    /// when one is maintained.
    pub fn sync_meta(&self) -> Result<()> {
        self.write_meta()?;
        if let Some(z) = &self.zones {
            z.save(&self.pool.file_path(self.fid))?;
        }
        Ok(())
    }

    /// Number of columns per row.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u64 {
        self.nrows
    }

    /// The data-page format of this heap.
    pub fn format(&self) -> PageFormat {
        self.format
    }

    /// The pool file id backing this heap (for in-place rewrites).
    pub(crate) fn fid(&self) -> FileId {
        self.fid
    }

    /// Bytes used on disk (meta page included).
    pub fn size_bytes(&self) -> u64 {
        self.pool.file_size_bytes(self.fid)
    }

    /// Bytes of raw row payload (rows x columns x 8).
    pub fn payload_bytes(&self) -> u64 {
        self.nrows * self.ncols as u64 * 8
    }

    /// Appends a row; returns its [`RowId`].
    ///
    /// Rows are kept physically contiguous: a new page is always the one
    /// right after the logical tail, even when a crash left the file
    /// extended further (pages allocated whose rows never became durable).
    /// WAL recovery's logical truncation and the scan order both rely on
    /// data pages holding rows contiguously in page order.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != ncols`.
    pub fn insert(&mut self, row: &[f64]) -> Result<RowId> {
        assert_eq!(row.len(), self.ncols, "row arity mismatch");
        let (pid, slot) = match self.format {
            PageFormat::Raw => self.insert_raw(row)?,
            PageFormat::Columnar => self.insert_columnar(row)?,
        };
        self.tail = Some((pid, slot + 1));
        self.nrows += 1;
        if let Some(z) = &mut self.zones {
            z.observe(pid, row);
        }
        Ok(rid(pid, slot))
    }

    fn next_tail_page(&self) -> Result<u32> {
        let next = self.tail.map_or(1, |(pid, _)| pid + 1);
        if next < self.pool.file_pages(self.fid) {
            Ok(next) // reuse a leftover page from an interrupted extension
        } else {
            self.pool.allocate_page(self.fid)
        }
    }

    fn insert_raw(&mut self, row: &[f64]) -> Result<(u32, u16)> {
        let (pid, slot) = match self.tail {
            Some((pid, n)) if (n as usize) < self.rows_per_page => (pid, n),
            _ => (self.next_tail_page()?, 0),
        };
        let off = PAGE_HDR + slot as usize * self.ncols * 8;
        self.pool.with_page_mut(self.fid, pid, |b| {
            if slot == 0 {
                // First row of the page: clear any stale bytes a reused
                // leftover page may carry.
                *b = [0u8; PAGE_SIZE];
            }
            for (i, &v) in row.iter().enumerate() {
                page::put_f64(b, off + i * 8, v);
            }
            page::put_u16(b, 0, slot + 1);
        })?;
        Ok((pid, slot))
    }

    fn insert_columnar(&mut self, row: &[f64]) -> Result<(u32, u16)> {
        self.ensure_builder()?;
        // Taken out of self to sidestep the borrow across
        // `next_tail_page`; put back on every exit path.
        let mut builder = self
            .builder
            .take()
            .unwrap_or_else(|| ColPageBuilder::new(self.ncols));
        let fits = builder.try_push(row);
        let (pid, slot) = match (fits, self.tail) {
            (true, Some((pid, n))) if n > 0 => (pid, n),
            _ => {
                if !fits {
                    builder.clear();
                    assert!(
                        builder.try_push(row),
                        "a single row must fit a columnar page"
                    );
                }
                obs::global().counter("colpage.pages_written").inc();
                match self.next_tail_page() {
                    Ok(pid) => (pid, 0),
                    Err(e) => {
                        self.builder = Some(builder);
                        return Err(e);
                    }
                }
            }
        };
        let sealed = self
            .pool
            .with_page_mut(self.fid, pid, |b| builder.seal_into(b));
        self.builder = Some(builder);
        sealed?;
        Ok((pid, slot))
    }

    /// Re-stages the tail page's rows into the columnar builder (after
    /// open, or after an operation that invalidated the staging copy).
    fn ensure_builder(&mut self) -> Result<()> {
        if self.builder.is_some() {
            return Ok(());
        }
        let mut b = ColPageBuilder::new(self.ncols);
        if let Some((pid, n)) = self.tail {
            if n > 0 {
                let mut buf = PageBuf::zeroed();
                self.pool.read_page_into(self.fid, pid, &mut buf)?;
                let mut cols: Vec<Vec<f64>> = vec![Vec::new(); self.ncols];
                let got = colpage::decode_into(buf.bytes(), self.ncols, &mut cols)?;
                obs::global().counter("colpage.pages_decoded").inc();
                if got < n as usize {
                    return Err(StoreError::Corrupt(format!(
                        "columnar tail page {pid} holds {got} rows, expected {n}"
                    )));
                }
                let mut row = vec![0.0f64; self.ncols];
                for r in 0..n as usize {
                    colpage::gather_row(&cols, r, &mut row);
                    assert!(b.try_push(&row), "re-staged tail rows must fit");
                }
            }
        }
        self.builder = Some(b);
        Ok(())
    }

    /// Decodes the data page in `buf` into `cols` (each column cleared
    /// first), dispatching on the page format. Returns the row count.
    fn decode_page_columns(&self, buf: &PageBuf, cols: &mut [Vec<f64>]) -> Result<usize> {
        let b = buf.bytes();
        for c in cols.iter_mut() {
            c.clear();
        }
        if colpage::is_colpage(b) {
            obs::global().counter("colpage.pages_decoded").inc();
            return colpage::decode_into(b, self.ncols, cols);
        }
        // Raw page: transpose into the column buffers.
        let n = page::get_u16(b, 0) as usize;
        let mut off = PAGE_HDR;
        for _ in 0..n {
            for col in cols.iter_mut() {
                col.push(page::get_f64(b, off));
                off += 8;
            }
        }
        Ok(n)
    }

    /// Scans all rows in storage order. The visitor receives the row id and
    /// the decoded columns; returning `false` stops the scan early.
    ///
    /// Pages are copied out of the pool before decoding, so the visitor may
    /// freely access other tables.
    pub fn scan(&self, mut visit: impl FnMut(RowId, &[f64]) -> bool) -> Result<()> {
        let npages = self.pool.file_pages(self.fid);
        let mut buf = PageBuf::zeroed();
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); self.ncols];
        let mut row = vec![0.0f64; self.ncols];
        for pid in 1..npages {
            self.pool.read_page_into(self.fid, pid, &mut buf)?;
            let n = self.decode_page_columns(&buf, &mut cols)?;
            for slot in 0..n {
                colpage::gather_row(&cols, slot, &mut row);
                if !visit(rid(pid, slot as u16), &row) {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Whether a zone map is currently maintained.
    pub fn has_zones(&self) -> bool {
        self.zones.is_some()
    }

    /// The whole-heap `(mins, maxs)` zone summary, when a zone map is
    /// maintained and the heap is non-empty. Lets query plans reject an
    /// entire table with one comparison before probing any index.
    pub fn zone_segment_bounds(&self) -> Option<(&[f64], &[f64])> {
        self.zones.as_ref().and_then(|z| z.segment_bounds())
    }

    /// Rebuilds the zone map from a full scan (idempotent; a heap that
    /// already maintains one is left untouched). Needed after opening a
    /// heap whose sidecar was missing or stale — e.g. created before zone
    /// maps existed, truncated by WAL recovery, or rewritten in the other
    /// page format.
    pub fn rebuild_zones(&mut self) -> Result<()> {
        if self.zones.is_some() {
            return Ok(());
        }
        obs::global().counter("zonemap.builds").inc();
        let mut z = Self::new_zones(self.ncols, self.format);
        let npages = self.pool.file_pages(self.fid);
        let mut buf = PageBuf::zeroed();
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); self.ncols];
        let mut row = vec![0.0f64; self.ncols];
        let mut remaining = self.nrows;
        'pages: for pid in 1..npages {
            if remaining == 0 {
                break;
            }
            self.pool.read_page_into(self.fid, pid, &mut buf)?;
            let n = self.decode_page_columns(&buf, &mut cols)?;
            for slot in 0..n {
                if remaining == 0 {
                    break 'pages;
                }
                colpage::gather_row(&cols, slot, &mut row);
                z.observe(pid, &row);
                remaining -= 1;
            }
        }
        self.zones = Some(z);
        Ok(())
    }

    /// Installs a zone map built elsewhere (the heap-rewrite path, which
    /// observes every row while streaming it into the new file).
    pub(crate) fn install_zones(&mut self, zones: ZoneMap) {
        debug_assert_eq!(zones.num_rows(), self.nrows);
        obs::global()
            .gauge("zonemap.levels")
            .set(ZONE_LEVELS as i64);
        self.zones = Some(zones);
    }

    /// Drops the zone map and deletes its sidecar, forcing subsequent
    /// scans down the unpruned path (used by tests and ablations).
    pub fn drop_zones(&mut self) {
        self.zones = None;
        std::fs::remove_file(ZoneMap::sidecar_path(&self.pool.file_path(self.fid))).ok();
    }

    /// Top-down hierarchical pruning: applies `filter` to the segment
    /// entry, then to each surviving extent entry, then to the page
    /// entries of surviving extents. Returns the pages to visit (in
    /// order) and the skip accounting. Pages without zone coverage are
    /// always visited.
    fn live_pages(
        &self,
        filter: &mut impl FnMut(&[f64], &[f64]) -> bool,
        npages: u32,
        stats: &mut ZoneScanStats,
    ) -> Vec<u32> {
        let mut live = Vec::new();
        let Some(z) = &self.zones else {
            live.extend(1..npages);
            return live;
        };
        // Pages 1..covered_end carry zone entries; later pages (crash
        // leftovers, or rows landed after the map was dropped) do not.
        let covered_end = (z.pages() + 1).min(npages);
        let covered = covered_end.saturating_sub(1) as u64;
        if covered > 0 {
            let seg_live = match z.segment_bounds() {
                Some((mins, maxs)) => filter(mins, maxs),
                None => true,
            };
            if !seg_live {
                stats.extents_pruned += z.extents() as u64;
                stats.pages_pruned += covered;
            } else {
                for ext in 0..z.extents() {
                    let pages = ZoneMap::extent_pages(ext);
                    let (lo, hi) = (pages.start, pages.end.min(covered_end));
                    if lo >= hi {
                        break;
                    }
                    if let Some((mins, maxs)) = z.extent_bounds(ext) {
                        if !filter(mins, maxs) {
                            stats.extents_pruned += 1;
                            stats.pages_pruned += (hi - lo) as u64;
                            continue;
                        }
                    }
                    for pid in lo..hi {
                        match z.page_bounds(pid) {
                            Some((mins, maxs)) if !filter(mins, maxs) => stats.pages_pruned += 1,
                            _ => live.push(pid),
                        }
                    }
                }
            }
        }
        live.extend(covered_end..npages);
        live
    }

    /// Segment-level pre-probe pruning for non-scan plans: applies
    /// `filter` (the same conservative may-match predicate the scan
    /// paths use) to the whole-heap zone entry alone and reports whether
    /// the heap as a whole can be skipped. A rejection counts every
    /// covered extent and page into the `zonemap.*` pruning counters,
    /// exactly as a scan-time segment rejection would.
    ///
    /// Returns `false` — no pruning — when no zone map is maintained,
    /// the heap is empty, or the map does not cover every stored row
    /// (skipping would then be lossy).
    pub fn prune_whole_segment(&self, mut filter: impl FnMut(&[f64], &[f64]) -> bool) -> bool {
        let Some(z) = &self.zones else {
            return false;
        };
        if z.num_rows() != self.nrows {
            return false;
        }
        let Some((mins, maxs)) = z.segment_bounds() else {
            return false;
        };
        if filter(mins, maxs) {
            return false;
        }
        let stats = ZoneScanStats {
            pages_scanned: 0,
            pages_pruned: z.pages() as u64,
            extents_pruned: z.extents() as u64,
        };
        Self::flush_zone_counters(&stats);
        true
    }

    fn flush_zone_counters(stats: &ZoneScanStats) {
        if stats.pages_pruned > 0 {
            obs::global()
                .counter("zonemap.pages_pruned")
                .add(stats.pages_pruned);
        }
        if stats.extents_pruned > 0 {
            obs::global()
                .counter("zonemap.extents_pruned")
                .add(stats.extents_pruned);
        }
    }

    /// Scans rows a page at a time, skipping zones that fail `filter`
    /// (applied top-down: segment, then extent, then page summaries;
    /// pages without zone coverage are always visited). The visitor
    /// receives the page's rows as one row-major block of `n * ncols`
    /// decoded columns; returning `false` stops the scan.
    ///
    /// Skipped pages are counted into `zonemap.pages_pruned` /
    /// `zonemap.extents_pruned` and the returned [`ZoneScanStats`]. The
    /// filter must be *conservative* — return `true` whenever any row in
    /// the bounds could match — for pruning to be lossless.
    pub fn scan_blocks(
        &self,
        mut filter: impl FnMut(&[f64], &[f64]) -> bool,
        mut visit: impl FnMut(&[f64], usize) -> bool,
    ) -> Result<ZoneScanStats> {
        let npages = self.pool.file_pages(self.fid);
        let mut stats = ZoneScanStats::default();
        let live = self.live_pages(&mut filter, npages, &mut stats);
        let mut buf = PageBuf::zeroed();
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); self.ncols];
        let mut block = Vec::new();
        for pid in live {
            stats.pages_scanned += 1;
            self.pool.read_page_into(self.fid, pid, &mut buf)?;
            let n = self.decode_page_columns(&buf, &mut cols)?;
            block.clear();
            block.reserve(n * self.ncols);
            for slot in 0..n {
                for col in &cols {
                    block.push(col[slot]);
                }
            }
            if !visit(&block, n) {
                break;
            }
        }
        Self::flush_zone_counters(&stats);
        Ok(stats)
    }

    /// Like [`HeapFile::scan_blocks`], but hands the visitor the page's
    /// rows column by column, decoded straight into `cols` (resized to
    /// the column count; each column holds the page's values in slot
    /// order). Compressed columnar pages decode directly into these
    /// buffers with no row-at-a-time materialization; raw pages are
    /// transposed during the decode. Returning `false` stops the scan.
    pub fn scan_columns(
        &self,
        mut filter: impl FnMut(&[f64], &[f64]) -> bool,
        cols: &mut Vec<Vec<f64>>,
        mut visit: impl FnMut(&[Vec<f64>], usize) -> bool,
    ) -> Result<ZoneScanStats> {
        let npages = self.pool.file_pages(self.fid);
        let mut stats = ZoneScanStats::default();
        let live = self.live_pages(&mut filter, npages, &mut stats);
        cols.resize(self.ncols, Vec::new());
        let mut buf = PageBuf::zeroed();
        for pid in live {
            stats.pages_scanned += 1;
            self.pool.read_page_into(self.fid, pid, &mut buf)?;
            let n = self.decode_page_columns(&buf, cols)?;
            if !visit(cols, n) {
                break;
            }
        }
        Self::flush_zone_counters(&stats);
        Ok(stats)
    }

    /// Reads the row `r` into `out` (resized to the column count).
    pub fn fetch(&self, r: RowId, out: &mut Vec<f64>) -> Result<()> {
        let (pid, slot) = rid_parts(r);
        out.resize(self.ncols, 0.0);
        match self.format {
            PageFormat::Raw => {
                let off = PAGE_HDR + slot as usize * self.ncols * 8;
                self.pool.with_page(self.fid, pid, |b| {
                    let n = page::get_u16(b, 0);
                    if slot >= n {
                        return Err(StoreError::Corrupt(format!(
                            "row {r:#x}: slot {slot} >= page rows {n}"
                        )));
                    }
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = page::get_f64(b, off + i * 8);
                    }
                    Ok(())
                })?
            }
            PageFormat::Columnar => {
                let mut buf = PageBuf::zeroed();
                self.pool.read_page_into(self.fid, pid, &mut buf)?;
                let mut cols: Vec<Vec<f64>> = vec![Vec::new(); self.ncols];
                let n = self.decode_page_columns(&buf, &mut cols)?;
                if slot as usize >= n {
                    return Err(StoreError::Corrupt(format!(
                        "row {r:#x}: slot {slot} >= page rows {n}"
                    )));
                }
                for (c, o) in out.iter_mut().enumerate() {
                    *o = cols[c][slot as usize];
                }
                Ok(())
            }
        }
    }

    /// Fetches many rows with one page read (and, for columnar pages, one
    /// decode) per distinct page. `rids` must be sorted (ascending row id
    /// — which is page-major order). The visitor receives each row id
    /// with its decoded columns.
    ///
    /// # Panics
    ///
    /// Debug-asserts the ids are sorted.
    pub fn fetch_many(
        &self,
        rids: &[RowId],
        mut visit: impl FnMut(RowId, &[f64]) -> bool,
    ) -> Result<()> {
        debug_assert!(rids.windows(2).all(|w| w[0] <= w[1]), "rids must be sorted");
        let mut buf = PageBuf::zeroed();
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); self.ncols];
        let mut row = vec![0.0f64; self.ncols];
        let mut loaded: Option<(u32, usize)> = None;
        for &r in rids {
            let (pid, slot) = rid_parts(r);
            let n = match loaded {
                Some((p, n)) if p == pid => n,
                _ => {
                    self.pool.read_page_into(self.fid, pid, &mut buf)?;
                    let n = self.decode_page_columns(&buf, &mut cols)?;
                    loaded = Some((pid, n));
                    n
                }
            };
            if slot as usize >= n {
                return Err(StoreError::Corrupt(format!(
                    "row {r:#x}: slot {slot} >= page rows {n}"
                )));
            }
            for (c, o) in row.iter_mut().enumerate() {
                *o = cols[c][slot as usize];
            }
            if !visit(r, &row) {
                break;
            }
        }
        Ok(())
    }

    /// Walks every data page and accounts encoded vs fixed-width payload
    /// sizes (raw pages count as fixed-width on both sides).
    pub fn compression_stats(&self) -> Result<CompressionStats> {
        let mut s = CompressionStats {
            col_stored: vec![0; self.ncols],
            col_raw: vec![0; self.ncols],
            ..CompressionStats::default()
        };
        let npages = self.pool.file_pages(self.fid);
        let mut buf = PageBuf::zeroed();
        for pid in 1..npages {
            self.pool.read_page_into(self.fid, pid, &mut buf)?;
            let b = buf.bytes();
            let n = colpage::page_nrows(b) as u64;
            s.pages += 1;
            if colpage::is_colpage(b) {
                for (c, (enc, bytes)) in colpage::column_layout(b, self.ncols)?
                    .into_iter()
                    .enumerate()
                {
                    s.col_stored[c] += bytes as u64;
                    s.col_raw[c] += n * 8;
                    if enc == colpage::ColEncoding::Raw {
                        s.raw_fallback_cols += 1;
                    }
                }
                s.stored_bytes += 16 * self.ncols as u64; // directory overhead
            } else {
                for c in 0..self.ncols {
                    s.col_stored[c] += n * 8;
                    s.col_raw[c] += n * 8;
                }
            }
        }
        s.raw_bytes = s.col_raw.iter().sum();
        s.stored_bytes += s.col_stored.iter().sum::<u64>();
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagefile::PageFile;
    use std::path::PathBuf;

    fn setup_fmt(
        name: &str,
        ncols: usize,
        format: PageFormat,
    ) -> (Arc<BufferPool>, HeapFile, PathBuf) {
        let p = std::env::temp_dir().join(format!("pagestore-heap-{}-{name}", std::process::id()));
        std::fs::remove_file(&p).ok();
        let pool = Arc::new(BufferPool::new(64));
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        let heap = HeapFile::create(pool.clone(), fid, ncols, format).unwrap();
        (pool, heap, p)
    }

    fn setup(name: &str, ncols: usize) -> (Arc<BufferPool>, HeapFile, PathBuf) {
        setup_fmt(name, ncols, PageFormat::Raw)
    }

    #[test]
    fn insert_fetch_roundtrip() {
        let (_pool, mut h, p) = setup("roundtrip", 3);
        let r1 = h.insert(&[1.0, 2.0, 3.0]).unwrap();
        let r2 = h.insert(&[-4.0, 5.5, 0.0]).unwrap();
        let mut out = Vec::new();
        h.fetch(r1, &mut out).unwrap();
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
        h.fetch(r2, &mut out).unwrap();
        assert_eq!(out, vec![-4.0, 5.5, 0.0]);
        assert_eq!(h.num_rows(), 2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn scan_visits_all_rows_in_order() {
        let (_pool, mut h, p) = setup("scan", 2);
        let n = 5000; // spans many pages
        for i in 0..n {
            h.insert(&[i as f64, -(i as f64)]).unwrap();
        }
        let mut count = 0usize;
        h.scan(|_rid, row| {
            assert_eq!(row[0], count as f64);
            assert_eq!(row[1], -(count as f64));
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, n);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn scan_early_exit() {
        let (_pool, mut h, p) = setup("early", 1);
        for i in 0..100 {
            h.insert(&[i as f64]).unwrap();
        }
        let mut seen = 0;
        h.scan(|_, _| {
            seen += 1;
            seen < 10
        })
        .unwrap();
        assert_eq!(seen, 10);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn reopen_preserves_rows() {
        let p = std::env::temp_dir().join(format!("pagestore-heap-{}-reopen", std::process::id()));
        {
            let pool = Arc::new(BufferPool::new(64));
            let fid = pool.register_file(PageFile::create(&p).unwrap());
            let mut h = HeapFile::create(pool.clone(), fid, 2, PageFormat::Raw).unwrap();
            for i in 0..1000 {
                h.insert(&[i as f64, 2.0 * i as f64]).unwrap();
            }
            h.sync_meta().unwrap();
            pool.flush_all().unwrap();
        }
        let pool = Arc::new(BufferPool::new(64));
        let fid = pool.register_file(PageFile::open(&p).unwrap());
        let mut h = HeapFile::open(pool, fid).unwrap();
        assert_eq!(h.num_rows(), 1000);
        assert_eq!(h.format(), PageFormat::Raw);
        // Appends continue where the tail left off.
        h.insert(&[1000.0, 2000.0]).unwrap();
        let mut count = 0;
        h.scan(|_, row| {
            assert_eq!(row[1], 2.0 * row[0]);
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 1001);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn columnar_insert_scan_fetch_roundtrip() {
        let (_pool, mut h, p) = setup_fmt("col-roundtrip", 3, PageFormat::Columnar);
        assert_eq!(h.format(), PageFormat::Columnar);
        let n = 4000usize; // several columnar pages
        let mut rids = Vec::new();
        for i in 0..n {
            // A mix of integer-like and full-precision columns.
            rids.push(
                h.insert(&[300.0 * i as f64, -(i as f64) * 0.001, (i % 7) as f64])
                    .unwrap(),
            );
        }
        assert_eq!(h.num_rows(), n as u64);
        let mut count = 0usize;
        h.scan(|r, row| {
            assert_eq!(r, rids[count]);
            assert_eq!(row[0], 300.0 * count as f64);
            assert_eq!(row[1].to_bits(), (-(count as f64) * 0.001).to_bits());
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, n);
        let mut out = Vec::new();
        h.fetch(rids[1234], &mut out).unwrap();
        assert_eq!(out[0], 300.0 * 1234.0);
        // Columnar pages hold far more of these compressible rows than the
        // raw format's fixed capacity would.
        let stats = h.compression_stats().unwrap();
        assert!(stats.ratio() > 2.0, "ratio {}", stats.ratio());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn columnar_reopen_appends_into_tail_page() {
        let p = std::env::temp_dir().join(format!("pagestore-heap-{}-colre", std::process::id()));
        std::fs::remove_file(&p).ok();
        let n = 1000usize;
        {
            let pool = Arc::new(BufferPool::new(64));
            let fid = pool.register_file(PageFile::create(&p).unwrap());
            let mut h = HeapFile::create(pool.clone(), fid, 2, PageFormat::Columnar).unwrap();
            for i in 0..n {
                h.insert(&[i as f64, 0.5]).unwrap();
            }
            h.sync_meta().unwrap();
            pool.flush_all().unwrap();
        }
        let pool = Arc::new(BufferPool::new(64));
        let fid = pool.register_file(PageFile::open(&p).unwrap());
        let mut h = HeapFile::open(pool.clone(), fid).unwrap();
        assert_eq!(h.num_rows(), n as u64);
        let pages_before = pool.file_pages(fid);
        let r = h.insert(&[n as f64, 0.5]).unwrap();
        // The append lands in the existing tail page, not a fresh one.
        assert_eq!(pool.file_pages(fid), pages_before);
        assert_eq!(r >> 16, (pages_before - 1) as u64);
        let mut seen = 0usize;
        h.scan(|_, row| {
            assert_eq!(row[0], seen as f64);
            seen += 1;
            true
        })
        .unwrap();
        assert_eq!(seen, n + 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn columnar_scan_columns_matches_scan_blocks() {
        let (_pool, mut h, p) = setup_fmt("col-scancols", 2, PageFormat::Columnar);
        for i in 0..2500 {
            h.insert(&[i as f64, (i * i % 97) as f64]).unwrap();
        }
        let mut via_blocks: Vec<f64> = Vec::new();
        h.scan_blocks(
            |_, _| true,
            |block, n| {
                via_blocks.extend_from_slice(&block[..n * 2]);
                true
            },
        )
        .unwrap();
        let mut via_cols: Vec<f64> = Vec::new();
        let mut bufs: Vec<Vec<f64>> = Vec::new();
        h.scan_columns(
            |_, _| true,
            &mut bufs,
            |cols, n| {
                for (a, b) in cols[0][..n].iter().zip(&cols[1][..n]) {
                    via_cols.push(*a);
                    via_cols.push(*b);
                }
                true
            },
        )
        .unwrap();
        assert_eq!(via_blocks, via_cols);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn hierarchical_pruning_skips_extents() {
        let (_pool, mut h, p) = setup_fmt("extents", 1, PageFormat::Raw);
        // 511 rows per page at 1 column; fill > 2 extents (129 pages).
        let rows = 511 * 130;
        for i in 0..rows {
            h.insert(&[i as f64]).unwrap();
        }
        // A filter matching only the very first page's range: everything
        // else must be pruned, and all but extent 0 at the extent level.
        let stats = h
            .scan_blocks(|mins, _maxs| mins[0] < 511.0, |_b, _n| true)
            .unwrap();
        assert_eq!(stats.pages_scanned, 1);
        assert!(stats.extents_pruned >= 2, "stats: {stats:?}");
        assert_eq!(
            stats.pages_scanned + stats.pages_pruned,
            130,
            "stats: {stats:?}"
        );
        // A filter matching nothing prunes at the segment level.
        let stats = h.scan_blocks(|_m, _x| false, |_b, _n| true).unwrap();
        assert_eq!(stats.pages_scanned, 0);
        assert_eq!(stats.extents_pruned, 3, "three extents under the segment");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn whole_segment_prune_respects_bounds_and_counts() {
        let (_pool, mut h, p) = setup_fmt("segprune", 1, PageFormat::Raw);
        for i in 0..511 * 70 {
            h.insert(&[i as f64]).unwrap();
        }
        let before = obs::global().counter("zonemap.extents_pruned").get();
        // The stored range is [0, 511*70): a filter demanding values
        // below -1 rejects the whole segment; one overlapping the range
        // must not prune.
        assert!(h.prune_whole_segment(|_m, maxs| maxs[0] < -1.0));
        assert!(!h.prune_whole_segment(|mins, _x| mins[0] < 1.0));
        // The counter is process-global (other tests may bump it too),
        // so only a lower bound is exact here: 70 pages = 2 extents.
        let after = obs::global().counter("zonemap.extents_pruned").get();
        assert!(after - before >= 2, "before {before}, after {after}");
        h.drop_zones();
        assert!(
            !h.prune_whole_segment(|_m, _x| false),
            "no zone map, no pruning"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn reopen_with_leftover_pages_appends_contiguously() {
        // A crash can leave the file extended past the logical tail:
        // pages were allocated (and one even dirtied) but the rows they
        // held never became durable. Reopening must append into those
        // leftover pages — zeroed — so rows stay physically contiguous;
        // WAL recovery's logical truncation would otherwise chop off
        // rows that ended up past a gap of empty pages.
        let p = std::env::temp_dir().join(format!("pagestore-heap-{}-gap", std::process::id()));
        std::fs::remove_file(&p).ok();
        {
            let pool = Arc::new(BufferPool::new(64));
            let fid = pool.register_file(PageFile::create(&p).unwrap());
            let mut h = HeapFile::create(pool.clone(), fid, 1, PageFormat::Raw).unwrap();
            for i in 0..511 {
                h.insert(&[i as f64]).unwrap(); // fills data page 1 exactly
            }
            h.sync_meta().unwrap();
            // Crash remnant: two more pages allocated, one full of stale
            // bytes, with no surviving rows (meta still says 511).
            let g1 = pool.allocate_page(fid).unwrap();
            pool.allocate_page(fid).unwrap();
            pool.with_page_mut(fid, g1, |b| b.fill(0xAB)).unwrap();
            pool.flush_all().unwrap();
        }
        let pool = Arc::new(BufferPool::new(64));
        let fid = pool.register_file(PageFile::open(&p).unwrap());
        let mut h = HeapFile::open(pool.clone(), fid).unwrap();
        assert_eq!(h.num_rows(), 511);
        let r = h.insert(&[511.0]).unwrap();
        assert_eq!(r >> 16, 2, "insert must reuse the first leftover page");
        assert_eq!(pool.file_pages(fid), 4, "no page appended past the gap");
        let stale = pool
            .with_page(fid, 2, |b| b[PAGE_HDR + 8..].iter().any(|&x| x != 0))
            .unwrap();
        assert!(!stale, "reused page must be zeroed beyond its rows");
        let mut seen = 0u64;
        h.scan(|_, row| {
            assert_eq!(row[0], seen as f64);
            seen += 1;
            true
        })
        .unwrap();
        assert_eq!(seen, 512);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn payload_and_disk_sizes() {
        let (_pool, mut h, p) = setup("sizes", 4);
        for _ in 0..100 {
            h.insert(&[0.0; 4]).unwrap();
        }
        assert_eq!(h.payload_bytes(), 100 * 4 * 8);
        assert!(h.size_bytes() >= h.payload_bytes());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let (_pool, mut h, _p) = setup("arity", 2);
        let _ = h.insert(&[1.0]);
    }

    #[test]
    fn rid_packing_roundtrip() {
        for &(p, s) in &[(0u32, 0u16), (1, 0), (77, 511), (u32::MAX, u16::MAX)] {
            assert_eq!(rid_parts(rid(p, s)), (p, s));
        }
    }
}
