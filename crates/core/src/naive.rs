//! The naive baseline from the paper's introduction.
//!
//! "A naive approach for solving this problem would be taking the
//! difference between any two observation values within T time units and
//! comparing the differences with V on the fly. Unfortunately, this
//! approach would take several hours for a reasonably large data set"
//! (§1). This module implements exactly that: raw observations stored as a
//! plain relational table, every query a nested window pass with no
//! precomputation. It completes the paper's three-system comparison —
//! naive (no storage of differences), Exh (all differences stored),
//! SegDiff (compressed differences stored).

use crate::exh::ExhEvent;
use crate::query::QueryStats;
use featurespace::{QueryRegion, SearchKind};
use pagestore::{Database, Result, Table, TableSpec};
use sensorgen::TimeSeries;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The naive on-the-fly search: stores only the raw observations.
pub struct NaiveSearch {
    db: Arc<Database>,
    table: Arc<Table>,
    n_observations: u64,
}

impl NaiveSearch {
    /// Creates a naive store under `dir`.
    pub fn create(dir: &Path, pool_pages: usize) -> Result<Self> {
        let db = Database::create(dir, pool_pages)?;
        let table = db.create_table(TableSpec::new("obs", &["t", "v"]))?;
        Ok(Self {
            db,
            table,
            n_observations: 0,
        })
    }

    /// Appends one observation.
    pub fn push(&mut self, t: f64, v: f64) -> Result<()> {
        self.table.insert(&[t, v])?;
        self.n_observations += 1;
        Ok(())
    }

    /// Appends a whole series.
    pub fn ingest_series(&mut self, series: &TimeSeries) -> Result<()> {
        for (t, v) in series.iter() {
            self.push(t, v)?;
        }
        Ok(())
    }

    /// Persists the store.
    pub fn finish(&self) -> Result<()> {
        self.db.flush()
    }

    /// Raw payload bytes: two columns per observation — the *smallest*
    /// store of the three systems, paid for at query time.
    pub fn payload_bytes(&self) -> u64 {
        self.table.payload_bytes()
    }

    /// Number of stored observations.
    pub fn num_observations(&self) -> u64 {
        self.n_observations
    }

    /// Runs a search by scanning the raw observations once and comparing
    /// every pair within `T` on the fly (a sliding window over the scan,
    /// quadratic in the window population).
    pub fn query(&self, region: &QueryRegion) -> Result<(Vec<ExhEvent>, QueryStats)> {
        let io_before = self.db.stats();
        let start = Instant::now();
        let mut window: VecDeque<(f64, f64)> = VecDeque::new();
        let mut out = Vec::new();
        let mut rows_considered = 0u64;
        self.table.seq_scan(|_, row| {
            rows_considered += 1;
            let (t, v) = (row[0], row[1]);
            while let Some(&(t0, _)) = window.front() {
                if t - t0 > region.t {
                    window.pop_front();
                } else {
                    break;
                }
            }
            for &(ti, vi) in &window {
                let dv = v - vi;
                let hit = match region.kind {
                    SearchKind::Drop => dv <= region.v,
                    SearchKind::Jump => dv >= region.v,
                };
                if hit {
                    out.push(ExhEvent { t1: ti, t2: t, dv });
                }
            }
            window.push_back((t, v));
            true
        })?;
        out.sort_by(|a, b| a.t1.total_cmp(&b.t1).then(a.t2.total_cmp(&b.t2)));
        let stats = QueryStats {
            wall_seconds: start.elapsed().as_secs_f64(),
            rows_considered,
            results: out.len() as u64,
            io: self.db.stats().since(&io_before),
            phases: Vec::new(),
        };
        Ok((out, stats))
    }

    /// Drops the buffer pool (cold-cache mode).
    pub fn clear_cache(&self) -> Result<()> {
        self.db.clear_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use sensorgen::HOUR;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("segdiff-naive-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn walk(n: usize, seed: u64) -> TimeSeries {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 0.0;
        (0..n)
            .map(|i| {
                v += (rng.random::<f64>() - 0.5) * 2.0;
                (i as f64 * 300.0, v)
            })
            .collect()
    }

    #[test]
    fn naive_equals_oracle_exactly() {
        let dir = tmpdir("oracle");
        let series = walk(400, 3);
        let mut naive = NaiveSearch::create(&dir, 256).unwrap();
        naive.ingest_series(&series).unwrap();
        for region in [
            QueryRegion::drop(1.0 * HOUR, -1.5),
            QueryRegion::jump(0.5 * HOUR, 1.0),
        ] {
            let want = oracle::true_events(&series, &region);
            let (events, stats) = naive.query(&region).unwrap();
            let got: Vec<(f64, f64)> = events.iter().map(|e| (e.t1, e.t2)).collect();
            // Unlike Exh, the naive pass keeps the exact original time
            // stamps, so the comparison is exact.
            assert_eq!(got, want, "{region:?}");
            assert_eq!(stats.results as usize, want.len());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smallest_store_of_the_three() {
        let dir_n = tmpdir("size-naive");
        let dir_e = tmpdir("size-exh");
        let series = walk(600, 5);
        let mut naive = NaiveSearch::create(&dir_n, 256).unwrap();
        naive.ingest_series(&series).unwrap();
        let mut exh = crate::exh::ExhIndex::create(&dir_e, 4.0 * HOUR, 256).unwrap();
        exh.ingest_series(&series).unwrap();
        assert!(naive.payload_bytes() * 10 < exh.stats().feature_payload_bytes);
        assert_eq!(naive.num_observations(), 600);
        std::fs::remove_dir_all(&dir_n).ok();
        std::fs::remove_dir_all(&dir_e).ok();
    }
}
