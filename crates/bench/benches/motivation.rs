//! The paper's §1 motivation, quantified: naive on-the-fly search vs the
//! exhaustive difference store vs SegDiff, on the same workload and query.
//! Storage ordering is always naive < SegDiff ≪ Exh. For query time the
//! paper's 2006 setting had naive ≫ Exh (hours vs seconds, disk-bound,
//! per-pair SQL overhead); on a memory-resident workload the naive pass
//! competes with Exh's full scan — which only sharpens the paper's point:
//! the system that stays an order of magnitude faster either way is
//! SegDiff, because its feature store is an order of magnitude smaller.

use criterion::{criterion_group, criterion_main, Criterion};
use segdiff::naive::NaiveSearch;
use segdiff::QueryPlan;
use segdiff_bench::{build_exh, build_segdiff, default_series};
use sensorgen::HOUR;
use std::hint::black_box;
use std::time::Duration;

fn bench_motivation(c: &mut Criterion) {
    let series = default_series(10, 1);
    let w = 8.0 * HOUR;
    let region = featurespace::QueryRegion::drop(1.0 * HOUR, -3.0);
    let base = std::env::temp_dir().join(format!("segdiff-bench-motiv-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let seg = build_segdiff(&series, 0.2, w, 8192, &base.join("seg"), false);
    let exh = build_exh(&series, w, 8192, &base.join("exh"), false);
    let mut naive = NaiveSearch::create(&base.join("naive"), 8192).unwrap();
    naive.ingest_series(&series).unwrap();
    naive.finish().unwrap();

    // Sanity of the space story: naive < SegDiff << Exh.
    let seg_bytes = seg.index.stats().feature_payload_bytes;
    let exh_bytes = exh.index.stats().feature_payload_bytes;
    assert!(naive.payload_bytes() < seg_bytes);
    assert!(seg_bytes * 5 < exh_bytes);

    let mut group = c.benchmark_group("motivation/default_query");
    group.sample_size(10);
    group.bench_function("naive_on_the_fly", |b| {
        b.iter(|| black_box(naive.query(&region).unwrap().0.len()))
    });
    group.bench_function("exh_scan", |b| {
        b.iter(|| {
            black_box(
                exh.index
                    .query(&region, QueryPlan::SeqScan)
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    group.bench_function("segdiff_scan", |b| {
        b.iter(|| {
            black_box(
                seg.index
                    .query(&region, QueryPlan::SeqScan)
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_motivation
}
criterion_main!(benches);
