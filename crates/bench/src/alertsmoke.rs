//! Beyond-paper experiment: the dogfooded alerting pipeline against an
//! injected fault.
//!
//! The server watches its own sampled metric series with the paper's
//! drop/jump detector (DESIGN.md §5g). This harness proves that loop
//! end-to-end: it serves a real index, drives it with a closed-loop
//! load, and — in fault mode — arms the `SEGDIFF_FAULT_SLEEP_MS` hatch
//! in the query executor so every query suddenly slows down mid-run.
//! The standing rules must then fire: `query-latency-jump` on the
//! windowed `server.query_nanos.p50` series directly, and (because the
//! load is closed-loop, so slower queries mean fewer of them)
//! optionally `query-rate-drop` on `server.queries.rate` as collateral.
//! In clean mode the same run with no fault must fire nothing.
//!
//! Fault injection is process-global (the hatch reads its environment
//! once), so clean and fault runs are separate invocations of the
//! `alertsmoke` binary — which is also how CI consumes this module.

use crate::harness::{build_segdiff, default_series, scratch_dir, Scale};
use obs::json::Json;
use segdiff::alerts::AlertRuleSet;
use segdiff_server::loadgen::{self, fetch};
use segdiff_server::{LoadgenConfig, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

/// The rule the fault's latency signature must trip.
pub const REQUIRED_RULE: &str = "query-latency-jump";
/// Closed-loop collateral of the latency fault: slower queries mean
/// fewer queries per second, which is itself a (legitimate) drop.
pub const COLLATERAL_RULE: &str = "query-rate-drop";

/// One alert-smoke run.
#[derive(Debug, Clone)]
pub struct SmokeConfig {
    /// Whether the latency fault is armed (informational — arming is
    /// the binary's job, via the environment, before any query runs).
    pub fault: bool,
    /// Total load duration.
    pub duration: Duration,
    /// Fault onset, measured from the first query (mirrors
    /// `SEGDIFF_FAULT_DELAY_SECS`); the run is clean until then.
    pub fault_delay: Duration,
    /// Sampler/alert-evaluation period for the server under test.
    pub sample_period: Duration,
    /// Standing rules to evaluate.
    pub rules: AlertRuleSet,
    /// Closed-loop loadgen workers.
    pub concurrency: usize,
    /// Distinct query bodies; sized so the run cannot wrap the rotation
    /// (a wrapped body hits the result cache and skips the executor —
    /// and with it the fault hatch).
    pub unique_bodies: usize,
}

impl SmokeConfig {
    /// The configuration CI runs: 8 s of load, fault (if armed) at 3 s,
    /// 250 ms sampling.
    pub fn ci(fault: bool, rules: AlertRuleSet) -> SmokeConfig {
        SmokeConfig {
            fault,
            duration: Duration::from_secs(8),
            fault_delay: Duration::from_secs(3),
            sample_period: Duration::from_millis(250),
            rules,
            concurrency: 4,
            unique_bodies: 50_000,
        }
    }
}

/// What a run observed, before any pass/fail judgement.
#[derive(Debug, Clone)]
pub struct SmokeOutcome {
    /// Echo of the mode.
    pub fault: bool,
    /// Completed 2xx requests.
    pub ok: u64,
    /// Non-2xx responses plus transport errors.
    pub failures: u64,
    /// Requests per second over the whole run (fault runs mix the fast
    /// and slow phases).
    pub qps: f64,
    /// Rule names that fired, in log order, deduplicated.
    pub fired_rules: Vec<String>,
    /// For the first [`REQUIRED_RULE`] alert: milliseconds from fault
    /// onset to `fired_at_ms`. `None` when it never fired.
    pub detection_ms: Option<i64>,
    /// Raw `GET /alerts` body, snapshotted while the server still held
    /// the run's state (artifact).
    pub alerts_body: String,
    /// Raw `GET /debug/traces?ring=slow&full=1` body (artifact): the
    /// tail-sampled evidence of the slow requests themselves.
    pub slow_traces_body: String,
    /// Raw `GET /debug/traces` body (artifact).
    pub recent_traces_body: String,
}

/// Builds a tiny index, serves it, drives the load, and snapshots the
/// alert log and trace rings **before** the load's own end can register
/// as a throughput drop (the observer is still ticking during the
/// snapshot, but the window between loadgen returning and the fetch is
/// far below one sampling period).
pub fn run_alertsmoke(config: &SmokeConfig) -> Result<SmokeOutcome, String> {
    let dir = scratch_dir(if config.fault {
        "alertsmoke-fault"
    } else {
        "alertsmoke-clean"
    });
    let scale = Scale::tiny();
    let series = default_series(scale.subset_days, scale.seed);
    let built = build_segdiff(&series, 0.2, 8.0 * 3600.0, scale.pool_pages, &dir, true);
    let index = Arc::new(built.index);

    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&index),
        ServerConfig {
            threads: 2,
            sample_period: config.sample_period,
            alert_rules: config.rules.clone(),
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind alertsmoke server: {e}"))?;
    let host = server.local_addr().to_string();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());

    // Every body is distinct so the result cache cannot short-circuit
    // the executor (V varies by far less than any result cares about).
    let bodies: Vec<String> = (0..config.unique_bodies.max(1))
        .map(|i| {
            format!(
                r#"{{"kind":"drop","v":{:.6},"t_hours":1.0,"plan":"index"}}"#,
                -2.0 - i as f64 * 1e-6
            )
        })
        .collect();

    let start_ms = obs::unix_ms();
    let report = loadgen::run(&LoadgenConfig {
        host: host.clone(),
        concurrency: config.concurrency,
        duration: config.duration,
        bodies,
    })?;

    // Snapshot while the in-load state is still current.
    let (status, alerts_body) = fetch(&host, "GET", "/alerts", None)?;
    if status != 200 {
        return Err(format!("GET /alerts returned {status}"));
    }
    let (_, slow_traces_body) = fetch(&host, "GET", "/debug/traces?ring=slow&n=64&full=1", None)?;
    let (_, recent_traces_body) = fetch(&host, "GET", "/debug/traces?n=64", None)?;

    flag.store(true, std::sync::atomic::Ordering::Release);
    handle
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server run: {e}"))?;
    std::fs::remove_dir_all(&dir).ok();

    let doc = Json::parse(&alerts_body).map_err(|e| format!("parse /alerts: {e}"))?;
    let alerts = doc
        .get("alerts")
        .and_then(|v| v.as_array())
        .ok_or("GET /alerts body has no 'alerts' array")?;
    let mut fired_rules: Vec<String> = Vec::new();
    let mut detection_ms = None;
    let onset_ms = start_ms + config.fault_delay.as_millis() as u64;
    for alert in alerts {
        let rule = alert
            .get("rule")
            .and_then(|v| v.as_str())
            .ok_or("alert entry has no 'rule'")?;
        if !fired_rules.iter().any(|r| r == rule) {
            fired_rules.push(rule.to_string());
        }
        if rule == REQUIRED_RULE && detection_ms.is_none() {
            let fired_at = alert
                .get("fired_at_ms")
                .and_then(|v| v.as_u64())
                .ok_or("alert entry has no 'fired_at_ms'")?;
            detection_ms = Some(fired_at as i64 - onset_ms as i64);
        }
    }

    Ok(SmokeOutcome {
        fault: config.fault,
        ok: report.ok,
        failures: report.non_2xx + report.errors,
        qps: report.qps(),
        fired_rules,
        detection_ms,
        alerts_body,
        slow_traces_body,
        recent_traces_body,
    })
}

/// Applies the CI gate to an outcome. Returns the failure reasons
/// (empty = pass).
///
/// * Clean mode: **nothing** may fire — the standing rules must not
///   false-positive on an ordinary serving workload.
/// * Fault mode: [`REQUIRED_RULE`] must fire within `detect_within` of
///   fault onset, and nothing beyond it and [`COLLATERAL_RULE`] may
///   fire.
pub fn judge(outcome: &SmokeOutcome, detect_within: Duration) -> Vec<String> {
    let mut failures = Vec::new();
    if outcome.ok == 0 {
        failures.push("no request succeeded; the run measured nothing".to_string());
    }
    if !outcome.fault {
        if !outcome.fired_rules.is_empty() {
            failures.push(format!(
                "clean run fired {:?} — false positive",
                outcome.fired_rules
            ));
        }
        return failures;
    }
    match outcome.detection_ms {
        None => failures.push(format!(
            "fault run never fired '{REQUIRED_RULE}' (fired: {:?})",
            outcome.fired_rules
        )),
        Some(ms) if ms > detect_within.as_millis() as i64 => failures.push(format!(
            "'{REQUIRED_RULE}' fired {ms} ms after fault onset (bound: {} ms)",
            detect_within.as_millis()
        )),
        Some(_) => {}
    }
    for rule in &outcome.fired_rules {
        if rule != REQUIRED_RULE && rule != COLLATERAL_RULE {
            failures.push(format!("unexpected rule fired: '{rule}'"));
        }
    }
    failures
}

/// The outcome as a JSON artifact (`summary.json`).
pub fn summary_json(outcome: &SmokeOutcome, failures: &[String]) -> Json {
    Json::obj([
        (
            "mode",
            Json::from(if outcome.fault { "fault" } else { "clean" }),
        ),
        ("pass", Json::Bool(failures.is_empty())),
        ("ok", Json::from(outcome.ok)),
        ("failures", Json::from(outcome.failures)),
        ("qps", Json::Float(outcome.qps)),
        (
            "fired_rules",
            Json::Array(
                outcome
                    .fired_rules
                    .iter()
                    .map(|r| Json::from(r.as_str()))
                    .collect(),
            ),
        ),
        (
            "detection_ms",
            outcome.detection_ms.map_or(Json::Null, Json::from),
        ),
        (
            "gate_failures",
            Json::Array(failures.iter().map(|f| Json::from(f.as_str())).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short clean run end-to-end: requests succeed and no standing
    /// rule fires. (The fault path needs a process with the environment
    /// hatch armed before the first query; the `alertsmoke` binary and
    /// CI cover it.)
    #[test]
    fn clean_run_fires_nothing() {
        let config = SmokeConfig {
            fault: false,
            duration: Duration::from_millis(1500),
            fault_delay: Duration::from_secs(0),
            sample_period: Duration::from_millis(100),
            rules: AlertRuleSet::defaults(),
            concurrency: 2,
            unique_bodies: 20_000,
        };
        let outcome = run_alertsmoke(&config).expect("smoke runs");
        let failures = judge(&outcome, Duration::from_secs(1));
        assert!(failures.is_empty(), "{failures:?}");
        assert!(outcome.ok > 0);
        assert!(outcome.alerts_body.contains("\"rules\""));
    }

    #[test]
    fn judge_rejects_bad_outcomes() {
        let base = SmokeOutcome {
            fault: true,
            ok: 100,
            failures: 0,
            qps: 10.0,
            fired_rules: vec![REQUIRED_RULE.to_string()],
            detection_ms: Some(400),
            alerts_body: String::new(),
            slow_traces_body: String::new(),
            recent_traces_body: String::new(),
        };
        assert!(judge(&base, Duration::from_secs(2)).is_empty());

        let mut slow = base.clone();
        slow.detection_ms = Some(5_000);
        assert!(!judge(&slow, Duration::from_secs(2)).is_empty());

        let mut missing = base.clone();
        missing.fired_rules.clear();
        missing.detection_ms = None;
        assert!(!judge(&missing, Duration::from_secs(2)).is_empty());

        let mut rogue = base.clone();
        rogue.fired_rules.push("disk-full".to_string());
        assert!(!judge(&rogue, Duration::from_secs(2)).is_empty());

        let mut clean_fired = base;
        clean_fired.fault = false;
        assert_eq!(judge(&clean_fired, Duration::from_secs(2)).len(), 1);

        let json = summary_json(&clean_fired, &["x".to_string()]).to_string();
        assert!(json.contains("\"pass\":false"), "{json}");
    }
}
