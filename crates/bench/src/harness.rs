//! Shared experiment plumbing: workload construction, index building, and
//! query timing.

use featurespace::QueryRegion;
use segdiff::exh::ExhIndex;
use segdiff::{QueryPlan, QueryStats, SegDiffConfig, SegDiffIndex};
use sensorgen::{generate_sensor, smooth::RobustSmoother, CadTransectConfig, TimeSeries, HOUR};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Experiment scale knobs (all experiments honour these).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Days of 5-minute data in the §6.1/6.2/6.4 subset.
    pub subset_days: u32,
    /// Days of data for the §6.3 scalability run (split into 5 groups).
    pub full_days: u32,
    /// Buffer-pool pages for every database.
    pub pool_pages: usize,
    /// Repetitions per timed query (the paper averages 10 runs).
    pub repeats: u32,
    /// RNG seed for the workload.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            subset_days: 120,
            full_days: 365,
            pool_pages: 8192, // 32 MiB
            repeats: 5,
            seed: 20_080_325,
        }
    }
}

impl Scale {
    /// A much smaller scale for Criterion benches and smoke tests.
    pub fn tiny() -> Self {
        Self {
            subset_days: 10,
            full_days: 25,
            pool_pages: 2048,
            repeats: 2,
            seed: 20_080_325,
        }
    }
}

/// The canonical workload: one canyon-bottom sensor, smoothed with robust
/// weights (the paper's preprocessing), `days` days at 5-minute sampling.
pub fn default_series(days: u32, seed: u64) -> TimeSeries {
    let cfg = CadTransectConfig::default().with_days(days);
    let raw = generate_sensor(&cfg, 12, seed);
    RobustSmoother::default().smooth(&raw)
}

/// A built SegDiff index plus build metadata.
pub struct BuiltSegDiff {
    /// The index.
    pub index: SegDiffIndex,
    /// Wall-clock build time (ingest + finish), seconds.
    pub build_seconds: f64,
    /// Wall-clock time spent creating B+trees, seconds (0 if none built).
    pub index_build_seconds: f64,
}

/// Builds a SegDiff index over `series` under `dir`.
pub fn build_segdiff(
    series: &TimeSeries,
    epsilon: f64,
    window: f64,
    pool_pages: usize,
    dir: &Path,
    with_indexes: bool,
) -> BuiltSegDiff {
    std::fs::remove_dir_all(dir).ok();
    // Paper-reproduction builds skip the WAL so measured build and query
    // times stay comparable to the seed numbers; the `durability`
    // experiment measures the WAL's cost explicitly.
    let cfg = SegDiffConfig::default()
        .with_epsilon(epsilon)
        .with_window(window)
        .with_pool_pages(pool_pages)
        .with_durable(false);
    let start = Instant::now();
    let mut index = SegDiffIndex::create(dir, cfg).expect("create segdiff");
    index.ingest_series(series).expect("ingest");
    index.finish().expect("finish");
    let build_seconds = start.elapsed().as_secs_f64();
    let mut index_build_seconds = 0.0;
    if with_indexes {
        let t = Instant::now();
        index.build_indexes().expect("build indexes");
        index_build_seconds = t.elapsed().as_secs_f64();
    }
    BuiltSegDiff {
        index,
        build_seconds,
        index_build_seconds,
    }
}

/// A built Exh index plus build metadata.
pub struct BuiltExh {
    /// The baseline index.
    pub index: ExhIndex,
    /// Wall-clock build time, seconds.
    pub build_seconds: f64,
    /// Wall-clock B+tree build time, seconds.
    pub index_build_seconds: f64,
}

/// Builds the exhaustive baseline over `series` under `dir`.
pub fn build_exh(
    series: &TimeSeries,
    window: f64,
    pool_pages: usize,
    dir: &Path,
    with_indexes: bool,
) -> BuiltExh {
    std::fs::remove_dir_all(dir).ok();
    let start = Instant::now();
    let mut index = ExhIndex::create(dir, window, pool_pages).expect("create exh");
    index.ingest_series(series).expect("ingest");
    index.finish().expect("finish");
    let build_seconds = start.elapsed().as_secs_f64();
    let mut index_build_seconds = 0.0;
    if with_indexes {
        let t = Instant::now();
        index.build_indexes().expect("build exh index");
        index_build_seconds = t.elapsed().as_secs_f64();
    }
    BuiltExh {
        index,
        build_seconds,
        index_build_seconds,
    }
}

/// Runs `f` with the global metrics registry snapshotted around it and
/// returns the closure's output plus the registry delta for that window:
/// counters as differences, histograms as the post-run summaries of every
/// series that advanced. Use it to bracket the timed portion of an
/// experiment so the report can embed exactly the telemetry it generated.
pub fn with_registry_delta<T>(f: impl FnOnce() -> T) -> (T, obs::MetricsSnapshot) {
    let before = obs::global().snapshot();
    let out = f();
    let delta = obs::global().snapshot().delta(&before);
    (out, delta)
}

/// Timing result of a repeated query.
#[derive(Debug, Clone, Copy)]
pub struct TimedQuery {
    /// Mean wall-clock seconds per execution.
    pub seconds: f64,
    /// Result count (identical across repetitions).
    pub results: u64,
    /// Pages physically read during the *first* (representative) run.
    pub pages_read: u64,
    /// Rows or index entries examined per run.
    pub rows_considered: u64,
}

fn summarize(runs: &[QueryStats]) -> TimedQuery {
    let n = runs.len() as f64;
    TimedQuery {
        seconds: runs.iter().map(|s| s.wall_seconds).sum::<f64>() / n,
        results: runs[0].results,
        pages_read: runs[0].io.physical_reads + runs[0].io.misses,
        rows_considered: runs[0].rows_considered,
    }
}

/// Times a SegDiff query. With `cold`, the buffer pool is dropped before
/// every repetition (the paper's flushed-cache mode).
pub fn time_query_segdiff(
    built: &BuiltSegDiff,
    region: &QueryRegion,
    plan: QueryPlan,
    repeats: u32,
    cold: bool,
) -> TimedQuery {
    let mut runs = Vec::new();
    if !cold {
        // Warm-up pass so "warm" really is warm.
        let _ = built.index.query(region, plan).expect("warmup");
    }
    for _ in 0..repeats.max(1) {
        if cold {
            built.index.clear_cache().expect("clear cache");
        }
        let (_, stats) = built.index.query(region, plan).expect("query");
        runs.push(stats);
    }
    summarize(&runs)
}

/// Times an Exh query, same protocol as [`time_query_segdiff`].
pub fn time_query_exh(
    built: &BuiltExh,
    region: &QueryRegion,
    plan: QueryPlan,
    repeats: u32,
    cold: bool,
) -> TimedQuery {
    let mut runs = Vec::new();
    if !cold {
        let _ = built.index.query(region, plan).expect("warmup");
    }
    for _ in 0..repeats.max(1) {
        if cold {
            built.index.clear_cache().expect("clear cache");
        }
        let (_, stats) = built.index.query(region, plan).expect("query");
        runs.push(stats);
    }
    summarize(&runs)
}

/// The paper's default query: a 3 degC drop within one hour.
pub fn default_region() -> QueryRegion {
    QueryRegion::drop(1.0 * HOUR, -3.0)
}

/// Scratch directory for experiment databases.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("segdiff-exp-{}", std::process::id()));
    d.join(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_pipeline_runs() {
        let scale = Scale::tiny();
        let series = default_series(scale.subset_days, scale.seed);
        assert!(series.len() > 2000);
        let sd = scratch_dir("harness-test-seg");
        let ed = scratch_dir("harness-test-exh");
        let seg = build_segdiff(&series, 0.2, 8.0 * HOUR, scale.pool_pages, &sd, false);
        let exh = build_exh(&series, 8.0 * HOUR, scale.pool_pages, &ed, false);
        assert!(seg.index.stats().n_rows > 0);
        assert!(exh.index.stats().n_rows > seg.index.stats().n_rows);
        let q = default_region();
        let a = time_query_segdiff(&seg, &q, QueryPlan::SeqScan, 2, false);
        let b = time_query_exh(&exh, &q, QueryPlan::SeqScan, 2, false);
        assert!(a.seconds > 0.0 && b.seconds > 0.0);
        std::fs::remove_dir_all(sd).ok();
        std::fs::remove_dir_all(ed).ok();
    }
}
