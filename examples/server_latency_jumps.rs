//! SegDiff outside its home domain: **jump search** over server latency.
//!
//! The paper generalizes the problem to any one-dimensional time series
//! (§2). Here the series is a synthetic p99-latency trace: a daily traffic
//! cycle, slow drift, and injected regression events where latency jumps by
//! tens of milliseconds in minutes. The on-call question "when did p99 ever
//! rise by more than 40 ms within 10 minutes?" is exactly a jump search.
//!
//! ```sh
//! cargo run --release --example server_latency_jumps
//! ```

use rand::{rngs::StdRng, RngExt, SeedableRng};
use segdiff_repro::prelude::*;

/// Synthesizes a latency trace sampled every 15 s over `days` days.
fn latency_trace(days: f64, seed: u64) -> (TimeSeries, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dt = 15.0;
    let n = (days * DAY / dt) as usize;
    let mut series = TimeSeries::with_capacity(n);
    let mut regressions = Vec::new();
    let mut regression_offset = 0.0f64;
    let mut next_regression = 0.3 * DAY + rng.random::<f64>() * DAY;
    let mut recovery_at = f64::INFINITY;
    for i in 0..n {
        let t = i as f64 * dt;
        if t >= next_regression {
            regressions.push(t);
            regression_offset += 40.0 + rng.random::<f64>() * 60.0; // the incident
            recovery_at = t + 0.5 * HOUR + rng.random::<f64>() * 2.0 * HOUR;
            next_regression = t + 0.7 * DAY + rng.random::<f64>() * 1.5 * DAY;
        }
        if t >= recovery_at {
            regression_offset = 0.0; // rollback deployed
            recovery_at = f64::INFINITY;
        }
        let diurnal = 25.0 * (std::f64::consts::TAU * (t / DAY - 0.6)).sin();
        let noise = (rng.random::<f64>() - 0.5) * 6.0;
        let p99 = 120.0 + diurnal + regression_offset + noise;
        series.push(t, p99);
    }
    (series, regressions)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("segdiff-latency-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let (raw, regressions) = latency_trace(14.0, 7);
    let series = RobustSmoother::new(3).smooth(&raw);
    println!(
        "trace: {} samples over 14 days, {} injected regressions",
        series.len(),
        regressions.len()
    );

    // Latency is noisier than temperature: a larger epsilon buys much more
    // compression, and the guarantee degrades only by 2*epsilon = 6 ms.
    let config = SegDiffConfig::default()
        .with_epsilon(3.0)
        .with_window(2.0 * HOUR);
    let mut index = SegDiffIndex::create(&dir, config).expect("create");
    index.ingest_series(&series).expect("ingest");
    index.finish().expect("finish");
    let s = index.stats();
    println!(
        "index: r = {:.1}, {} rows, {} KiB",
        s.compression_rate(),
        s.n_rows,
        s.feature_payload_bytes / 1024
    );

    // The on-call question.
    let region = QueryRegion::jump(10.0 * MINUTE, 40.0);
    let (results, stats) = index.query(&region, QueryPlan::SeqScan).expect("query");
    println!(
        "\njumps of >= 40 ms within 10 min: {} periods ({:.1} ms query)",
        results.len(),
        stats.wall_seconds * 1e3
    );

    // Each injected regression must be covered by some result.
    let mut found = 0;
    for &r in &regressions {
        let hit = results
            .iter()
            .any(|p| p.t_d <= r + 10.0 * MINUTE && r - 10.0 * MINUTE <= p.t_a);
        if hit {
            found += 1;
        } else {
            println!("  !! regression at {:.2} days NOT matched", r / DAY);
        }
    }
    println!("regressions recovered: {found}/{}", regressions.len());

    // And the symmetric question: rollbacks (drops of 40 ms within 10 min).
    let region = QueryRegion::drop(10.0 * MINUTE, -40.0);
    let (rollbacks, _) = index.query(&region, QueryPlan::SeqScan).expect("query");
    println!("rollback-shaped drops: {} periods", rollbacks.len());

    for p in results.iter().take(5) {
        println!(
            "  jump starts in day {:.2}..{:.2}, ends in day {:.2}..{:.2}",
            p.t_d / DAY,
            p.t_c / DAY,
            p.t_b / DAY,
            p.t_a / DAY
        );
    }

    assert_eq!(
        found,
        regressions.len(),
        "an injected regression was missed"
    );
    std::fs::remove_dir_all(&dir).ok();
}
