//! Expression evaluation over a row.

use super::ast::{BinOp, Expr};
use crate::error::Result;
use crate::StoreError;

/// An expression compiled against a concrete schema: column names resolved
/// to positions, so per-row evaluation does no string work.
#[derive(Debug, Clone)]
pub enum Compiled {
    /// Column by position.
    Column(usize),
    /// Literal.
    Number(f64),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Compiled>,
        /// Right operand.
        rhs: Box<Compiled>,
    },
    /// Negation.
    Neg(Box<Compiled>),
    /// Logical not.
    Not(Box<Compiled>),
}

/// Resolves column names against `cols`, producing a [`Compiled`] tree.
pub fn compile(expr: &Expr, cols: &[String]) -> Result<Compiled> {
    Ok(match expr {
        Expr::Column(name) => {
            let idx = cols
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| StoreError::NotFound(format!("column {name} in SQL expression")))?;
            Compiled::Column(idx)
        }
        Expr::Number(n) => Compiled::Number(*n),
        Expr::Binary { op, lhs, rhs } => Compiled::Binary {
            op: *op,
            lhs: Box::new(compile(lhs, cols)?),
            rhs: Box::new(compile(rhs, cols)?),
        },
        Expr::Neg(e) => Compiled::Neg(Box::new(compile(e, cols)?)),
        Expr::Not(e) => Compiled::Not(Box::new(compile(e, cols)?)),
    })
}

/// Evaluates over a row. Boolean results are 1.0 / 0.0; any non-zero value
/// is truthy for `AND`/`OR`/`NOT` and `WHERE`.
pub fn eval(e: &Compiled, row: &[f64]) -> f64 {
    match e {
        Compiled::Column(i) => row[*i],
        Compiled::Number(n) => *n,
        Compiled::Neg(inner) => -eval(inner, row),
        Compiled::Not(inner) => {
            if eval(inner, row) != 0.0 {
                0.0
            } else {
                1.0
            }
        }
        Compiled::Binary { op, lhs, rhs } => {
            let b = |cond: bool| if cond { 1.0 } else { 0.0 };
            match op {
                // Short-circuiting logic.
                BinOp::And => b(eval(lhs, row) != 0.0 && eval(rhs, row) != 0.0),
                BinOp::Or => b(eval(lhs, row) != 0.0 || eval(rhs, row) != 0.0),
                BinOp::Lt => b(eval(lhs, row) < eval(rhs, row)),
                BinOp::Le => b(eval(lhs, row) <= eval(rhs, row)),
                BinOp::Gt => b(eval(lhs, row) > eval(rhs, row)),
                BinOp::Ge => b(eval(lhs, row) >= eval(rhs, row)),
                BinOp::Eq => b(eval(lhs, row) == eval(rhs, row)),
                BinOp::Ne => b(eval(lhs, row) != eval(rhs, row)),
                BinOp::Add => eval(lhs, row) + eval(rhs, row),
                BinOp::Sub => eval(lhs, row) - eval(rhs, row),
                BinOp::Mul => eval(lhs, row) * eval(rhs, row),
                BinOp::Div => eval(lhs, row) / eval(rhs, row),
            }
        }
    }
}

/// Whether the row satisfies the compiled predicate.
pub fn matches(e: &Compiled, row: &[f64]) -> bool {
    eval(e, row) != 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse;
    use crate::sql::Statement;

    fn compile_where(sql: &str, cols: &[&str]) -> Compiled {
        let full = format!("SELECT * FROM t WHERE {sql}");
        let Statement::Select { predicate, .. } = parse(&full).unwrap() else {
            panic!()
        };
        let cols: Vec<String> = cols.iter().map(|s| s.to_string()).collect();
        compile(&predicate.unwrap(), &cols).unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = compile_where("a + b * 2 <= 10", &["a", "b"]);
        assert!(matches(&e, &[2.0, 4.0])); // 2 + 8 = 10
        assert!(!matches(&e, &[3.0, 4.0])); // 11
    }

    #[test]
    fn the_line_query_predicate() {
        // dv1 + (dv2 - dv1)/(dt2 - dt1) * (T - dt1) <= V with T=10, V=-2.
        let e = compile_where(
            "dt1 <= 10 AND dv1 > -2 AND dt2 > 10 AND dv2 < -2 \
             AND dv1 + (dv2 - dv1) / (dt2 - dt1) * (10 - dt1) <= -2",
            &["dt1", "dv1", "dt2", "dv2"],
        );
        // Crossing edge (2, -1) -> (12, -6): value at 10 is -5 <= -2.
        assert!(matches(&e, &[2.0, -1.0, 12.0, -6.0]));
        // Late crossing (9, -1) -> (30, -6): value at 10 is -1.24 > -2.
        assert!(!matches(&e, &[9.0, -1.0, 30.0, -6.0]));
    }

    #[test]
    fn logic_operators() {
        let e = compile_where("NOT (a > 1 OR b > 1) AND a >= 0", &["a", "b"]);
        assert!(matches(&e, &[0.5, 0.5]));
        assert!(!matches(&e, &[2.0, 0.5]));
        assert!(!matches(&e, &[-1.0, 0.5]));
    }

    #[test]
    fn unknown_column_rejected() {
        let full = "SELECT * FROM t WHERE nope > 1".to_string();
        let Statement::Select { predicate, .. } = parse(&full).unwrap() else {
            panic!()
        };
        assert!(compile(&predicate.unwrap(), &["a".to_string()]).is_err());
    }

    #[test]
    fn unary_minus() {
        let e = compile_where("-a = 3", &["a"]);
        assert!(matches(&e, &[-3.0]));
        assert!(!matches(&e, &[3.0]));
    }
}
