//! Larger-than-RAM smoke: a columnar corpus at least 4x the buffer
//! pool, answering the standard query mix under the CI latency guard.
//!
//! The run builds a SegDiff index, rewrites its heaps into compressed
//! columnar pages ([`segdiff::SegDiffIndex::compact_storage`]), then
//! *reopens it with a pool sized to a quarter of the corpus*, so every
//! sequential scan evicts. The query mix includes one region no row can
//! match, which the hierarchical zone maps must reject at the segment
//! level — the `zonemap.extents_pruned` counter proves the upper levels
//! of the hierarchy are consulted, and the guard file bounds the
//! index-plan p99 exactly as the `scaling` experiment does.

use crate::harness::{scratch_dir, with_registry_delta, Scale};
use crate::report::Report;
use crate::scaling::QueryScalingPoint;
use featurespace::QueryRegion;
use obs::json::Json;
use segdiff::{QueryPlan, SegDiffConfig, SegDiffIndex};
use sensorgen::{generate_sensor, smooth::RobustSmoother, CadTransectConfig, HOUR};
use std::time::Instant;

/// Outcome of one big-corpus run.
#[derive(Debug)]
pub struct BigCorpusResult {
    /// Heap bytes across every table after compaction.
    pub corpus_bytes: u64,
    /// Buffer-pool bytes the queries ran with (`corpus >= 4x` this).
    pub pool_bytes: u64,
    /// Aggregate encoded-vs-raw payload ratio over the feature tables.
    pub compression_ratio: f64,
    /// Encoded-vs-raw ratio over the corner (`Δt, Δv`) columns alone.
    pub corner_ratio: f64,
    /// Per-plan latency/pruning points, guard-compatible with the
    /// `scaling` experiment (`sensors` carries the region-mix size).
    pub points: Vec<QueryScalingPoint>,
    /// `zonemap.extents_pruned` delta across the timed queries.
    pub extents_pruned: u64,
    /// Registry delta across the timed queries (the metrics artifact).
    pub metrics: obs::MetricsSnapshot,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_ms.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

/// The standard mix: the paper's default drop, a shallow long-window
/// drop, a moderate jump, and one unsatisfiable drop that the zone
/// hierarchy must reject wholesale (no synthetic sensor falls 30 degC
/// in an hour).
fn query_mix() -> Vec<QueryRegion> {
    vec![
        QueryRegion::drop(1.0 * HOUR, -3.0),
        QueryRegion::drop(4.0 * HOUR, -1.0),
        QueryRegion::jump(2.0 * HOUR, 1.5),
        QueryRegion::drop(1.0 * HOUR, -30.0),
    ]
}

/// Builds the corpus, compacts it to columnar pages, reopens it with a
/// quarter-of-the-corpus pool, and times the query mix on both plans.
pub fn run_bigcorpus(scale: &Scale) -> BigCorpusResult {
    let root = scratch_dir("bigcorpus");
    std::fs::remove_dir_all(&root).ok();
    let cfg = SegDiffConfig::default()
        .with_epsilon(0.2)
        .with_window(8.0 * HOUR)
        .with_pool_pages(scale.pool_pages)
        .with_durable(false);
    let gen_cfg = CadTransectConfig::default().with_days(scale.subset_days);
    let mut idx = SegDiffIndex::create(&root, cfg).expect("create index");
    // One smoothed canyon sensor; the pool is sized off the finished
    // corpus below, so the 4x invariant holds at any --days setting.
    let series = RobustSmoother::default().smooth(&generate_sensor(&gen_cfg, 12, scale.seed));
    idx.ingest_series(&series).expect("ingest sensor");
    idx.finish().expect("finish");
    idx.build_indexes().expect("build indexes");

    // Compress, then account: aggregate ratio over the feature tables
    // and the ratio over the corner columns alone (first `2 * corners`
    // columns of each feature table; the 4 segment-endpoint columns and
    // the segments table are excluded).
    let report = idx.compact_storage().expect("compact to columnar");
    let (mut raw, mut stored, mut corner_raw, mut corner_stored) = (0u64, 0u64, 0u64, 0u64);
    for (name, stats) in &report {
        if !name.starts_with("drop") && !name.starts_with("jump") {
            continue;
        }
        raw += stats.raw_bytes;
        stored += stats.stored_bytes;
        let corners = (stats.col_raw.len() - 4) / 2;
        for c in 0..2 * corners {
            corner_raw += stats.col_raw[c];
            corner_stored += stats.col_stored[c];
        }
    }
    let ratio = |r: u64, s: u64| if s == 0 { 1.0 } else { r as f64 / s as f64 };

    // Reopen with a pool a quarter of the corpus (pages, floored so the
    // engine still functions): the query mix below runs larger-than-RAM.
    let corpus_bytes = idx.stats().heap_bytes;
    drop(idx);
    let corpus_pages = (corpus_bytes / pagestore::PAGE_SIZE as u64).max(1);
    let pool_pages = ((corpus_pages / 4) as usize).max(16);
    let idx = SegDiffIndex::open(&root, pool_pages).expect("reopen small-pool");

    let mix = query_mix();
    let mut points = Vec::new();
    let (_, metrics) = with_registry_delta(|| {
        for (plan, name) in [
            (QueryPlan::SeqScan, "seq_scan"),
            (QueryPlan::Index, "index"),
        ] {
            let (_, delta) = with_registry_delta(|| {
                let mut lat_ms = Vec::new();
                let mut first: Option<segdiff::QueryStats> = None;
                let mut results = 0u64;
                let mut considered = 0u64;
                for _ in 0..scale.repeats.max(1) {
                    results = 0;
                    considered = 0;
                    let t = Instant::now();
                    for region in &mix {
                        let (_, stats) = idx.query(region, plan).expect("query");
                        results += stats.results;
                        considered += stats.rows_considered;
                        first.get_or_insert(stats);
                    }
                    lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                lat_ms.sort_by(|a, b| a.total_cmp(b));
                let io = first.map(|s| s.io).unwrap_or_default();
                points.push(QueryScalingPoint {
                    sensors: mix.len() as u32,
                    plan: name,
                    p50_ms: percentile(&lat_ms, 0.50),
                    p90_ms: percentile(&lat_ms, 0.90),
                    p99_ms: percentile(&lat_ms, 0.99),
                    pages_read: io.hits + io.misses,
                    results,
                    rows_considered: considered,
                    pages_pruned: 0, // filled from the delta below
                    extents_pruned: 0,
                });
            });
            let get = |k: &str| delta.counters.get(k).copied().unwrap_or(0);
            if let Some(p) = points.last_mut() {
                p.pages_pruned = get("zonemap.pages_pruned");
                p.extents_pruned = get("zonemap.extents_pruned");
            }
        }
    });
    std::fs::remove_dir_all(&root).ok();
    BigCorpusResult {
        corpus_bytes,
        pool_bytes: pool_pages as u64 * pagestore::PAGE_SIZE as u64,
        compression_ratio: ratio(raw, stored),
        corner_ratio: ratio(corner_raw, corner_stored),
        extents_pruned: metrics
            .counters
            .get("zonemap.extents_pruned")
            .copied()
            .unwrap_or(0),
        points,
        metrics,
    }
}

/// Renders the big-corpus section of the report.
pub fn bigcorpus_report(r: &BigCorpusResult, report: &mut Report) {
    report.heading("Big corpus (beyond the paper): compressed columnar pages, 4x the pool");
    report.para(&format!(
        "Corpus of {:.1} MiB columnar heap pages queried through a {:.1} MiB \
         buffer pool ({:.1}x the pool). Feature-table compression ratio \
         {:.2}x overall, {:.2}x on the corner columns; the query mix of {} \
         regions pruned {} extents and {} pages across the timed repeats.",
        r.corpus_bytes as f64 / (1 << 20) as f64,
        r.pool_bytes as f64 / (1 << 20) as f64,
        r.corpus_bytes as f64 / r.pool_bytes as f64,
        r.compression_ratio,
        r.corner_ratio,
        r.points.first().map_or(0, |p| p.sensors),
        r.points.iter().map(|p| p.extents_pruned).sum::<u64>(),
        r.points.iter().map(|p| p.pages_pruned).sum::<u64>(),
    ));
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.plan.to_string(),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p99_ms),
                p.pages_read.to_string(),
                p.rows_considered.to_string(),
                p.results.to_string(),
                p.pages_pruned.to_string(),
                p.extents_pruned.to_string(),
            ]
        })
        .collect();
    report.table(
        &[
            "plan",
            "p50 ms",
            "p99 ms",
            "pages read",
            "rows considered",
            "results",
            "pages pruned",
            "extents pruned",
        ],
        &rows,
    );
}

/// Serializes the run — headline numbers plus the full counter delta —
/// as the CI metrics artifact.
pub fn metrics_json(r: &BigCorpusResult) -> String {
    let counters = Json::Object(
        r.metrics
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect(),
    );
    let doc = Json::obj([
        ("corpus_bytes", Json::from(r.corpus_bytes)),
        ("pool_bytes", Json::from(r.pool_bytes)),
        ("compression_ratio", Json::from(r.compression_ratio)),
        ("corner_ratio", Json::from(r.corner_ratio)),
        ("extents_pruned", Json::from(r.extents_pruned)),
        ("counters", counters),
    ]);
    let mut s = doc.to_string_compact();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_bigcorpus_holds_the_invariants() {
        let mut scale = Scale::tiny();
        // Enough days that a quarter of the corpus clears the 16-page
        // pool floor, keeping the 4x larger-than-RAM invariant honest.
        scale.subset_days = 24;
        scale.repeats = 2;
        let r = run_bigcorpus(&scale);
        assert!(
            r.corpus_bytes >= 4 * r.pool_bytes,
            "corpus {} not 4x pool {}",
            r.corpus_bytes,
            r.pool_bytes
        );
        assert!(
            r.compression_ratio > 1.0,
            "no compression: {}",
            r.compression_ratio
        );
        assert!(
            r.corner_ratio >= 2.0,
            "corner columns must compress 2x: {}",
            r.corner_ratio
        );
        assert!(r.extents_pruned > 0, "zone hierarchy never pruned extents");
        assert_eq!(r.points.len(), 2);
        let (seq, idx) = (
            r.points.iter().find(|p| p.plan == "seq_scan").unwrap(),
            r.points.iter().find(|p| p.plan == "index").unwrap(),
        );
        assert_eq!(seq.results, idx.results, "plans disagree: {:?}", r.points);
        let json = metrics_json(&r);
        assert!(json.contains("\"extents_pruned\""), "{json}");

        let mut report = Report::new();
        bigcorpus_report(&r, &mut report);
        let md = report.markdown();
        assert!(
            md.contains("extents pruned") && md.contains("seq_scan"),
            "{md}"
        );
    }
}

#[cfg(test)]
mod dbg_tests {
    use super::*;
    #[test]
    #[ignore]
    fn dump_per_column_ratios() {
        let root = scratch_dir("bigcorpus-dbg");
        std::fs::remove_dir_all(&root).ok();
        let cfg = SegDiffConfig::default()
            .with_epsilon(0.2)
            .with_window(8.0 * HOUR)
            .with_pool_pages(2048)
            .with_durable(false);
        let gen_cfg = CadTransectConfig::default().with_days(24);
        let mut idx = SegDiffIndex::create(&root, cfg).expect("create");
        let series = RobustSmoother::default().smooth(&generate_sensor(&gen_cfg, 12, 20_080_325));
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        for (name, s) in idx.compact_storage().unwrap() {
            let cols: Vec<String> = s
                .col_raw
                .iter()
                .zip(&s.col_stored)
                .map(|(&r, &st)| format!("{:.2}", r as f64 / st.max(1) as f64))
                .collect();
            eprintln!(
                "{name}: ratio={:.2} cols=[{}] raw={} stored={}",
                s.ratio(),
                cols.join(","),
                s.raw_bytes,
                s.stored_bytes
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
