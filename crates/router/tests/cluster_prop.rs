//! Property: scatter–gather through the router is byte-identical to a
//! single process serving the whole transect — whatever the sensor
//! count, shard count, engine thread count, or query region, and for
//! full fan-outs as well as sensor subsets.
//!
//! Each case builds a small CAD transect, partitions it over in-process
//! shard servers with the same [`router::Ring`] the router uses, fronts
//! them with an in-process [`router::Router`], and compares the
//! `results` array (compact re-serialization, so equal strings mean the
//! shared serializer saw identical values) against a reference server
//! that owns every sensor. A second reference with a different fan-out
//! thread count pins down thread-count invariance on the way.

use obs::json::Json;
use proptest::prelude::*;
use router::{Ring, Router, RouterConfig, ShardSpec};
use segdiff::{SegDiffConfig, TransectIndex};
use segdiff_server::loadgen::fetch;
use segdiff_server::{Engine, Server, ServerConfig};
use sensorgen::{generate_sensor, CadTransectConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "segdiff-clusterprop-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy dir");
    for entry in std::fs::read_dir(from).expect("read dir") {
        let entry = entry.expect("dir entry");
        let dst = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).expect("copy file");
        }
    }
}

/// Builds, finishes, and checkpoints a clean transect, then drops it so
/// later read-only opens never race a live buffer pool.
fn build_transect(dir: &Path, sensors: u32) {
    let cfg = CadTransectConfig::default()
        .with_days(2)
        .with_sensors(sensors)
        .clean();
    let mut t = TransectIndex::create(dir, SegDiffConfig::default(), sensors).expect("create");
    for k in 0..sensors {
        t.ingest_series(k, &generate_sensor(&cfg, k, 7))
            .expect("ingest");
    }
    t.finish_all().expect("finish");
    t.build_indexes_all().expect("build indexes");
    t.flush_all().expect("flush");
}

struct Running {
    host: String,
    flag: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

fn start_server(engine: Engine) -> Running {
    let server = Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            threads: 2,
            queue_depth: 32,
            read_timeout: Duration::from_millis(250),
            ..ServerConfig::default()
        },
    )
    .expect("bind shard server");
    let host = server.local_addr().to_string();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    Running { host, flag, handle }
}

fn results_of(host: &str, body: &str) -> Result<String, String> {
    let (status, text) = fetch(host, "POST", "/query", Some(body))?;
    if status != 200 {
        return Err(format!("POST /query on {host}: status {status}: {text}"));
    }
    let doc = Json::parse(&text).map_err(|e| format!("bad response: {e}"))?;
    Ok(doc
        .get("results")
        .map(Json::to_string_compact)
        .unwrap_or_default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn router_matches_single_process_byte_for_byte(
        sensors in 4u32..8,
        shards in 2usize..4,
        wide_engine in any::<bool>(),
        is_drop in any::<bool>(),
        v_mag in 0.5f64..3.0,
        t_frac in 0.2f64..1.0,
    ) {
        let threads = if wide_engine { 3 } else { 1 };
        let (kind, v) = if is_drop { ("drop", -v_mag) } else { ("jump", v_mag) };
        let t_hours = t_frac * 4.0;
        let body = format!(r#"{{"kind":"{kind}","v":{v},"t_hours":{t_hours},"plan":"index"}}"#);

        let ids: Vec<u32> = (0..sensors).collect();
        let buckets = Ring::new(shards).partition(&ids);
        // The ring occasionally hashes every sensor away from one shard;
        // a shard serving nothing cannot be opened, so skip that case.
        prop_assume!(buckets.iter().all(|b| !b.is_empty()));

        let dir = tmpdir("ref");
        build_transect(&dir, sensors);
        // Shards read a private copy: the reference holds buffer pools
        // over the original, and two pools over one file tear reads.
        let shard_dir = tmpdir("shards");
        copy_dir(&dir, &shard_dir);

        let full = Arc::new(TransectIndex::open(&dir, 2048).expect("open reference"));
        let reference = start_server(Engine::transect(Arc::clone(&full), 1));
        let reference_wide = start_server(Engine::transect(Arc::clone(&full), threads));

        let mut servers = Vec::new();
        let mut specs = Vec::new();
        for bucket in &buckets {
            let sub = TransectIndex::open_subset(&shard_dir, 2048, bucket).expect("open subset");
            let running = start_server(Engine::transect(Arc::new(sub), threads));
            specs.push(ShardSpec { primary: running.host.clone(), replica: None });
            servers.push(running);
        }

        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig {
                shards: specs,
                threads: 2,
                queue_depth: 32,
                read_timeout: Duration::from_millis(1000),
                health_interval: Duration::from_millis(200),
            },
        )
        .expect("bind router");
        let router_host = router.local_addr().to_string();
        let router_flag = router.shutdown_flag();
        let router_handle = std::thread::spawn(move || router.run().expect("router run"));

        let want = results_of(&reference.host, &body).expect("reference query");
        let want_wide = results_of(&reference_wide.host, &body).expect("wide reference query");
        let got = results_of(&router_host, &body).expect("router query");
        prop_assert_eq!(
            &want, &want_wide,
            "fan-out thread count changed the reference answer"
        );
        prop_assert_eq!(&got, &want, "router full fan-out diverged from one process");

        // A subset query must scatter to only the owning shards and
        // still merge into the one-process answer for those sensors.
        let subset: Vec<String> =
            ids.iter().step_by(2).map(u32::to_string).collect();
        let subset_body = format!(
            r#"{{"kind":"{kind}","v":{v},"t_hours":{t_hours},"plan":"index","sensors":[{}]}}"#,
            subset.join(",")
        );
        let want_subset = results_of(&reference.host, &subset_body).expect("reference subset");
        let got_subset = results_of(&router_host, &subset_body).expect("router subset");
        prop_assert_eq!(
            &got_subset, &want_subset,
            "router subset query diverged from one process"
        );

        router_flag.store(true, Ordering::Release);
        router_handle.join().expect("router thread");
        for running in servers.into_iter().chain([reference, reference_wide]) {
            running.flag.store(true, Ordering::Release);
            running.handle.join().expect("server thread");
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }
}
