//! Whole-pipeline test on the CAD workload: generate → smooth → index →
//! search, checking that planted cold-air-drainage events are recovered
//! and that anomalies do not pollute the results.

use segdiff_repro::prelude::*;
use segdiff_repro::sensorgen::EventSchedule;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("segdiff-pipe-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn planted_cad_events_are_recovered() {
    // Generate a clean winter month at the canyon bottom and collect the
    // planted schedule by regenerating the schedule deterministically via
    // the event offsets: instead, detect drops with the oracle and require
    // SegDiff to cover all of them.
    let cfg = CadTransectConfig::default().with_days(10).clean();
    let series = generate_sensor(&cfg, 12, 2026);

    let dir = tmpdir("cad");
    let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
    idx.ingest_series(&series).unwrap();
    idx.finish().unwrap();

    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    let events = oracle::true_events(&series, &region);
    assert!(
        !events.is_empty(),
        "a winter CAD workload must contain 3-degree drops"
    );
    let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
    assert_eq!(oracle::find_missed_event(&events, &results), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn smoothing_removes_spike_phantoms() {
    // A clean series plus one isolated 8-degree spike. Raw indexing sees a
    // phantom drop (the spike's falling edge); smoothing must remove it.
    let mut raw = TimeSeries::new();
    for i in 0..600 {
        let t = i as f64 * 300.0;
        let mut v = 10.0 + (t / 40_000.0).sin(); // gentle, no real drops
        if i == 300 {
            v += 8.0;
        }
        raw.push(t, v);
    }
    let smoothed = RobustSmoother::default().smooth(&raw);
    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    assert!(
        !oracle::true_events(&raw, &region).is_empty(),
        "the spike must create a phantom drop in the raw data"
    );
    assert!(
        oracle::true_events(&smoothed, &region).is_empty(),
        "smoothing must remove the phantom"
    );

    let dir = tmpdir("spike");
    let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
    idx.ingest_series(&smoothed).unwrap();
    idx.finish().unwrap();
    let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
    assert!(
        results.is_empty(),
        "no drop results expected after smoothing, got {results:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deeper_events_at_canyon_bottom() {
    // The transect geometry: querying a deep drop threshold should match on
    // the canyon-bottom sensor but not the rim sensor over the same period.
    let cfg = CadTransectConfig::default().with_days(20).clean();
    let rim = generate_sensor(&cfg, 0, 555);
    let bottom = generate_sensor(&cfg, 12, 555);
    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    let rim_events = oracle::true_events(&rim, &region).len();
    let bottom_events = oracle::true_events(&bottom, &region).len();
    assert!(
        bottom_events > rim_events,
        "bottom {bottom_events} should exceed rim {rim_events}"
    );
}

#[test]
fn event_schedule_offsets_reach_sampled_data() {
    // The generator's injected schedule must actually produce drops of the
    // configured depth in the sampled series.
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    let schedule = EventSchedule::generate(&mut rng, 30, 1.0, 1.0, 1.0, 45.0);
    assert!(schedule.len() >= 25, "near-daily events requested");
    for e in schedule.events().iter().take(5) {
        let before = schedule.offset(e.start);
        let bottom = schedule.offset(e.start + e.drop_duration);
        assert!(before - bottom >= e.depth * 0.9 - 1.0);
    }
}

#[test]
fn multi_sensor_ingest_into_separate_indexes() {
    // The paper returns results "for all sensors within 10 seconds"; the
    // natural layout is one index per sensor. Check that two sensors can be
    // ingested and queried independently with consistent outcomes.
    let cfg = CadTransectConfig::default().with_days(5).clean();
    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    for sensor in [3u32, 12] {
        let series = generate_sensor(&cfg, sensor, 31);
        let dir = tmpdir(&format!("sensor-{sensor}"));
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        let events = oracle::true_events(&series, &region);
        let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        assert_eq!(oracle::find_missed_event(&events, &results), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
