//! The database facade: a directory of tables and indexes with a shared
//! buffer pool and a persistent catalog.

use crate::btree::BTree;
use crate::buffer::{BufferPool, PoolStats};
use crate::error::Result;
use crate::heap::HeapFile;
use crate::pagefile::PageFile;
use crate::table::Table;
use crate::StoreError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const CATALOG: &str = "catalog.txt";

/// Declares a table to be created: name plus column names.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name (also the file stem on disk).
    pub name: String,
    /// Column names.
    pub cols: Vec<String>,
}

impl TableSpec {
    /// Builds a spec from string slices.
    pub fn new(name: &str, cols: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            cols: cols.iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// A directory-backed database: catalog + shared buffer pool.
pub struct Database {
    dir: PathBuf,
    pool: Arc<BufferPool>,
    tables: Mutex<HashMap<String, Arc<Table>>>,
    /// Catalog lines for persistence, in creation order.
    catalog: Mutex<Vec<String>>,
}

impl Database {
    /// Creates a fresh database in `dir` (created if missing; an existing
    /// catalog there is an error) with a pool of `pool_pages` pages.
    pub fn create(dir: &Path, pool_pages: usize) -> Result<Arc<Self>> {
        fs::create_dir_all(dir)?;
        let cat = dir.join(CATALOG);
        if cat.exists() {
            return Err(StoreError::AlreadyExists(format!(
                "database at {}",
                dir.display()
            )));
        }
        fs::write(&cat, "")?;
        Ok(Arc::new(Self {
            dir: dir.to_path_buf(),
            pool: Arc::new(BufferPool::new(pool_pages)),
            tables: Mutex::new(HashMap::new()),
            catalog: Mutex::new(Vec::new()),
        }))
    }

    /// Opens an existing database.
    pub fn open(dir: &Path, pool_pages: usize) -> Result<Arc<Self>> {
        let cat_path = dir.join(CATALOG);
        let text = fs::read_to_string(&cat_path)
            .map_err(|_| StoreError::NotFound(format!("database at {}", dir.display())))?;
        let db = Arc::new(Self {
            dir: dir.to_path_buf(),
            pool: Arc::new(BufferPool::new(pool_pages)),
            tables: Mutex::new(HashMap::new()),
            catalog: Mutex::new(Vec::new()),
        });
        for line in text.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["table", name, cols] => {
                    let cols: Vec<String> = cols.split(',').map(|s| s.to_string()).collect();
                    let path = db.table_path(name);
                    let fid = db.pool.register_file(PageFile::open(&path)?);
                    let heap = HeapFile::open(db.pool.clone(), fid)?;
                    if heap.ncols() != cols.len() {
                        return Err(StoreError::Corrupt(format!(
                            "table {name}: catalog says {} columns, heap has {}",
                            cols.len(),
                            heap.ncols()
                        )));
                    }
                    let table = Arc::new(Table::new(name.to_string(), cols, heap));
                    db.tables.lock().insert(name.to_string(), table);
                }
                ["index", tname, iname, cols] => {
                    let cols: Vec<usize> = cols
                        .split(',')
                        .map(|s| s.parse().expect("catalog column index"))
                        .collect();
                    let table = db.table(tname)?;
                    let path = db.index_path(tname, iname);
                    let fid = db.pool.register_file(PageFile::open(&path)?);
                    let tree = BTree::open(db.pool.clone(), fid)?;
                    table.attach_index(iname.to_string(), cols, tree);
                }
                [] => {}
                _ => {
                    return Err(StoreError::Corrupt(format!("bad catalog line: {line}")));
                }
            }
            db.catalog.lock().push(line.to_string());
        }
        Ok(db)
    }

    fn table_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.tbl"))
    }

    fn index_path(&self, table: &str, index: &str) -> PathBuf {
        self.dir.join(format!("{table}.{index}.idx"))
    }

    fn persist_catalog(&self) -> Result<()> {
        let text = self.catalog.lock().join("\n");
        fs::write(self.dir.join(CATALOG), text)?;
        Ok(())
    }

    /// Creates a table; errors if it already exists.
    pub fn create_table(&self, spec: TableSpec) -> Result<Arc<Table>> {
        let mut tables = self.tables.lock();
        if tables.contains_key(&spec.name) {
            return Err(StoreError::AlreadyExists(format!("table {}", spec.name)));
        }
        let path = self.table_path(&spec.name);
        let fid = self.pool.register_file(PageFile::create(&path)?);
        let heap = HeapFile::create(self.pool.clone(), fid, spec.cols.len())?;
        let table = Arc::new(Table::new(spec.name.clone(), spec.cols.clone(), heap));
        tables.insert(spec.name.clone(), table.clone());
        drop(tables);
        self.catalog
            .lock()
            .push(format!("table {} {}", spec.name, spec.cols.join(",")));
        self.persist_catalog()?;
        Ok(table)
    }

    /// Creates a B+tree index over the named columns, backfilling existing
    /// rows.
    pub fn create_index(&self, table_name: &str, index_name: &str, cols: &[&str]) -> Result<()> {
        let table = self.table(table_name)?;
        if table.index(index_name).is_ok() {
            return Err(StoreError::AlreadyExists(format!(
                "index {index_name} on {table_name}"
            )));
        }
        let col_idx: Vec<usize> = cols
            .iter()
            .map(|c| table.column_index(c))
            .collect::<Result<_>>()?;
        let path = self.index_path(table_name, index_name);
        let fid = self.pool.register_file(PageFile::create(&path)?);
        // Bulk-load existing rows (sorted once, leaves written left to
        // right) instead of inserting them one by one.
        let mut entries: Vec<(Vec<u8>, u64)> = Vec::with_capacity(table.num_rows() as usize);
        {
            let mut key = crate::encode::KeyBuf::new();
            let mut colbuf = Vec::new();
            table.seq_scan(|rid, row| {
                colbuf.clear();
                colbuf.extend(col_idx.iter().map(|&c| row[c]));
                crate::encode::encode_key(&colbuf, rid, &mut key);
                entries.push((key.to_vec(), rid));
                true
            })?;
        }
        entries.sort();
        let tree = BTree::bulk_load(
            self.pool.clone(),
            fid,
            col_idx.len() * 8 + 8,
            entries.iter().map(|(k, v)| (k.as_slice(), *v)),
        )?;
        drop(entries);
        table.attach_index(index_name.to_string(), col_idx.clone(), tree);
        let cols_text: Vec<String> = col_idx.iter().map(|c| c.to_string()).collect();
        self.catalog.lock().push(format!(
            "index {table_name} {index_name} {}",
            cols_text.join(",")
        ));
        self.persist_catalog()?;
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(format!("table {name}")))
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.lock().keys().cloned().collect()
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Writes all metadata and dirty pages to disk.
    pub fn flush(&self) -> Result<()> {
        for t in self.tables.lock().values() {
            t.sync_meta()?;
        }
        self.pool.flush_all()
    }

    /// Flushes and then empties the buffer pool — the next query starts
    /// cold, like the paper's "operating system cache is flushed before
    /// every query" runs.
    pub fn clear_cache(&self) -> Result<()> {
        for t in self.tables.lock().values() {
            t.sync_meta()?;
        }
        self.pool.clear_cache()
    }

    /// Buffer-pool counters.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Total bytes on disk across all heaps and indexes.
    pub fn total_size_bytes(&self) -> u64 {
        self.tables
            .lock()
            .values()
            .map(|t| t.heap_bytes() + t.index_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pagestore-db-{}-{name}", std::process::id()))
    }

    #[test]
    fn create_insert_query() {
        let dir = tmpdir("basic");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create(&dir, 128).unwrap();
        let t = db
            .create_table(TableSpec::new("ev", &["dt", "dv"]))
            .unwrap();
        for i in 0..100 {
            t.insert(&[i as f64, -(i as f64)]).unwrap();
        }
        db.create_index("ev", "by_dt", &["dt"]).unwrap();
        let mut hits = 0;
        t.index_scan("by_dt", &[10.0], &[19.0], |_, _| {
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_full_database() {
        let dir = tmpdir("reopen");
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = Database::create(&dir, 128).unwrap();
            let t = db
                .create_table(TableSpec::new("ev", &["a", "b", "c"]))
                .unwrap();
            db.create_index("ev", "by_ab", &["a", "b"]).unwrap();
            for i in 0..1000 {
                t.insert(&[(i % 10) as f64, i as f64, 3.0]).unwrap();
            }
            db.flush().unwrap();
        }
        let db = Database::open(&dir, 128).unwrap();
        let t = db.table("ev").unwrap();
        assert_eq!(t.num_rows(), 1000);
        let mut hits = 0;
        t.index_scan(
            "by_ab",
            &[3.0, f64::NEG_INFINITY],
            &[3.0, f64::INFINITY],
            |_, cols| {
                assert_eq!(cols[0], 3.0);
                hits += 1;
                true
            },
        )
        .unwrap();
        assert_eq!(hits, 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_objects_rejected() {
        let dir = tmpdir("dup");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create(&dir, 64).unwrap();
        db.create_table(TableSpec::new("t", &["x"])).unwrap();
        assert!(db.create_table(TableSpec::new("t", &["x"])).is_err());
        db.create_index("t", "i", &["x"]).unwrap();
        assert!(db.create_index("t", "i", &["x"]).is_err());
        assert!(db.create_index("nope", "i", &["x"]).is_err());
        assert!(Database::create(&dir, 64).is_err(), "existing catalog");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_cache_counts_physical_reads() {
        let dir = tmpdir("cold");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create(&dir, 256).unwrap();
        let t = db.create_table(TableSpec::new("big", &["x", "y"])).unwrap();
        for i in 0..50_000 {
            t.insert(&[i as f64, 2.0 * i as f64]).unwrap();
        }
        // Warm scan.
        let before = db.stats();
        let mut n = 0u64;
        t.seq_scan(|_, _| {
            n += 1;
            true
        })
        .unwrap();
        let warm = db.stats().since(&before);
        assert_eq!(n, 50_000);
        // Cold scan.
        db.clear_cache().unwrap();
        let before = db.stats();
        t.seq_scan(|_, _| true).unwrap();
        let cold = db.stats().since(&before);
        assert!(cold.physical_reads > 0);
        assert!(
            cold.physical_reads > warm.physical_reads,
            "cold {} vs warm {}",
            cold.physical_reads,
            warm.physical_reads
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn total_size_accounts_heap_and_index() {
        let dir = tmpdir("sizes");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::create(&dir, 64).unwrap();
        let t = db.create_table(TableSpec::new("t", &["x"])).unwrap();
        for i in 0..1000 {
            t.insert(&[i as f64]).unwrap();
        }
        let heap_only = db.total_size_bytes();
        db.create_index("t", "i", &["x"]).unwrap();
        assert!(db.total_size_bytes() > heap_only);
        std::fs::remove_dir_all(&dir).ok();
    }
}
