#![warn(missing_docs)]

//! **segdiff-obs** — unified telemetry for the SegDiff system.
//!
//! The paper's entire evaluation (§6) is built on counting physical I/Os
//! and timing query phases. This crate is the substrate that makes those
//! quantities observable in one place, for every layer of the system:
//!
//! * [`MetricsRegistry`] — a global, thread-safe registry of named
//!   [`Counter`]s, [`Gauge`]s and log-bucketed [`Histogram`]s (count /
//!   min / p50 / p90 / p99 / p999 / max). The storage engine publishes
//!   buffer-pool and B+tree counters here; query execution feeds
//!   per-phase latency histograms.
//! * [`series`] — the time axis: a background sampler scrapes every
//!   registered metric at a fixed cadence into bounded ring buffers
//!   (counters as rates, gauges raw, histograms as interval-windowed
//!   quantiles), which is what `GET /series` and the dogfooded alerting
//!   pipeline read.
//! * [`tracering`] — always-on request tracing: bounded rings of recent
//!   traces with tail-sampling that always retains slow or erroring
//!   requests, plus thread-propagated trace ids
//!   ([`next_trace_id`] / [`TraceIdScope`]).
//! * [`span`] / [`SpanGuard`] — RAII span timers. Every span records its
//!   wall time into the histogram `span.<name>`; when a trace is being
//!   collected ([`trace_begin`] / [`trace_take`]) spans also assemble a
//!   parent/child call-tree ([`TraceNode`]) so a query execution yields
//!   an `EXPLAIN ANALYZE`-style trace.
//! * [`export`] — pluggable snapshot exporters: human-readable text and
//!   line-delimited JSON.
//! * [`json`] — a dependency-free JSON value type, writer and parser
//!   (used by the exporters and by round-trip tests).
//! * logging macros ([`error!`], [`warn!`], [`info!`], [`debug!`])
//!   filtered by the `SEGDIFF_LOG` environment variable
//!   (`off|error|warn|info|debug`).
//!
//! The crate has **zero external dependencies** and sits below
//! `pagestore` in the dependency graph, so every layer can use it.
//!
//! # Example
//!
//! ```
//! use obs::{global, span, trace_begin, trace_take};
//!
//! global().counter("example.requests").inc();
//! trace_begin();
//! {
//!     let root = span("query");
//!     {
//!         let s = span("scan");
//!         s.record("rows_out", 42u64);
//!     }
//!     root.record("plan", "SeqScan");
//! }
//! let trace = trace_take().expect("a trace was collected");
//! assert_eq!(trace.name, "query");
//! assert_eq!(trace.children.len(), 1);
//! assert_eq!(global().counter("example.requests").get(), 1);
//! ```

mod export_impl;
mod json_impl;
mod log_impl;
mod metrics;
pub mod names;
pub mod series;
mod span_impl;
pub mod tracering;

pub use metrics::{
    quantile_from_counts, Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry,
    MetricsSnapshot, BUCKETS,
};
pub use series::unix_ms;
pub use span_impl::{
    current_trace_id, next_trace_id, set_current_trace_id, span, trace_active, trace_begin,
    trace_take, SpanGuard, TraceIdScope, TraceNode,
};

/// Snapshot exporters (text and line-delimited JSON).
pub mod export {
    pub use crate::export_impl::{Exporter, JsonLinesExporter, TextExporter};
}

/// Dependency-free JSON value, writer and parser.
pub mod json {
    pub use crate::json_impl::Json;
}

#[doc(hidden)]
pub mod log {
    pub use crate::log_impl::{emit, level, set_level, Level};
}

pub use log_impl::Level;

/// The process-wide metrics registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Logs at error level (shown unless `SEGDIFF_LOG=off`).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::log::Level::Error, ::core::format_args!($($arg)*))
    };
}

/// Logs at warn level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::log::Level::Warn, ::core::format_args!($($arg)*))
    };
}

/// Logs at info level (enable with `SEGDIFF_LOG=info`).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::log::Level::Info, ::core::format_args!($($arg)*))
    };
}

/// Logs at debug level (enable with `SEGDIFF_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::log::Level::Debug, ::core::format_args!($($arg)*))
    };
}
