//! Exploratory analysis of Cold Air Drainage events across the transect —
//! the workflow the paper's biologists wanted (§1): pose *ad-hoc* queries
//! with different drops and time spans, interactively, against a year of
//! data from 25 sensors.
//!
//! ```sh
//! cargo run --release --example cad_exploration [days] [sensors]
//! ```

use segdiff_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let sensors: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    let base = std::env::temp_dir().join(format!("segdiff-cad-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    println!("generating {sensors} sensors x {days} days of transect data ...");
    let cfg = CadTransectConfig::default()
        .with_days(days)
        .with_sensors(sensors);
    let smoother = RobustSmoother::default();

    // One index per sensor, as a deployment would maintain.
    let mut indexes = Vec::new();
    for sensor in 0..sensors {
        let raw = generate_sensor(&cfg, sensor, 20_080_325);
        let series = smoother.smooth(&raw);
        let dir = base.join(format!("sensor-{sensor}"));
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).expect("create");
        idx.ingest_series(&series).expect("ingest");
        idx.finish().expect("finish");
        let s = idx.stats();
        println!(
            "  sensor {sensor:2}: {:6} obs -> {:5} segments (r = {:4.1}), {:6} feature rows",
            s.n_observations,
            s.n_segments,
            s.compression_rate(),
            s.n_rows
        );
        indexes.push(idx);
    }

    // The exploratory session: biologists start from the working definition
    // (3 degC within 1 h) and then vary both thresholds.
    let queries = [
        ("the textbook CAD event", 1.0 * HOUR, -3.0),
        ("shallower, faster drops", 0.5 * HOUR, -2.0),
        ("deep drainage events", 2.0 * HOUR, -6.0),
        ("extreme events", 4.0 * HOUR, -10.0),
    ];
    println!("\n{:<26} {:>8} {:>10}  per-sensor hits", "query", "T", "V");
    for (label, t, v) in queries {
        let region = QueryRegion::drop(t, v);
        let mut per_sensor = Vec::new();
        let mut total_ms = 0.0;
        for idx in &indexes {
            let (results, stats) = idx.query(&region, QueryPlan::SeqScan).expect("query");
            per_sensor.push(results.len());
            total_ms += stats.wall_seconds * 1e3;
        }
        println!(
            "{label:<26} {:>6.1} h {:>8.1} C  {per_sensor:?}  ({total_ms:.1} ms total)",
            t / HOUR,
            v
        );
    }

    // Canyon profile: where do deep events concentrate?
    println!("\ncanyon profile for drop >= 4 degC within 1 h:");
    let region = QueryRegion::drop(1.0 * HOUR, -4.0);
    for (sensor, idx) in indexes.iter().enumerate() {
        let (results, _) = idx.query(&region, QueryPlan::SeqScan).expect("query");
        let bar = "#".repeat(results.len().min(60));
        println!("  sensor {sensor:2} |{bar} {}", results.len());
    }
    println!("(sensors near the middle of the transect sit at the canyon bottom)");

    // When do they happen? Merge overlapping periods into episodes and
    // histogram their start hour — CAD events live in the early morning.
    use segdiff_repro::segdiff::analysis::{ascii_histogram, summarize};
    let bottom = (sensors / 2) as usize;
    let (results, _) = indexes[bottom]
        .query(&region, QueryPlan::SeqScan)
        .expect("query");
    let summary = summarize(&results, days as f64);
    println!(
        "\nsensor {bottom}: {} periods -> {} episodes ({:.2} per day); start hours:",
        summary.periods, summary.episodes, summary.rate_per_day
    );
    print!(
        "{}",
        ascii_histogram(&summary.hour_histogram, |h| format!("{h:02}h"))
    );

    std::fs::remove_dir_all(&base).ok();
}
