//! End-to-end tests of the `segdiff` binary: generate → ingest → query →
//! stats → sql, all through the real executable.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_segdiff")
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("segdiff-cli-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn segdiff")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).to_string()
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = tmp("workflow");
    let csv = dir.join("data.csv");
    let idx = dir.join("index");

    // generate
    let o = run(&[
        "generate",
        "--csv",
        csv.to_str().unwrap(),
        "--days",
        "7",
        "--seed",
        "7",
    ]);
    assert!(o.status.success(), "{o:?}");
    assert!(stdout(&o).contains("wrote"));
    assert!(csv.exists());

    // ingest (creates the index)
    let o = run(&[
        "ingest",
        "--index",
        idx.to_str().unwrap(),
        "--csv",
        csv.to_str().unwrap(),
        "--no-smooth", // the CSV is already smoothed by generate
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("segments"));

    // query
    let o = run(&[
        "query",
        "--index",
        idx.to_str().unwrap(),
        "--kind",
        "drop",
        "--v",
        "-3",
        "--t-hours",
        "1",
        "--refine",
        csv.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = stdout(&o);
    assert!(text.contains("periods"), "{text}");
    assert!(text.contains("refined against"), "{text}");

    // stats
    let o = run(&["stats", "--index", idx.to_str().unwrap()]);
    assert!(o.status.success());
    let text = stdout(&o);
    assert!(text.contains("observations:"));
    assert!(text.contains("epsilon 0.2"));

    // sql
    let o = run(&[
        "sql",
        "--index",
        idx.to_str().unwrap(),
        "SELECT COUNT(*) FROM segments",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("count:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_ingest_across_invocations() {
    let dir = tmp("resume");
    let csv1 = dir.join("a.csv");
    let csv2 = dir.join("b.csv");
    let idx = dir.join("index");

    // Two non-overlapping CSVs (manual, tiny).
    std::fs::write(&csv1, "time,value\n0,10\n300,9\n600,5\n900,5\n").unwrap();
    std::fs::write(&csv2, "time,value\n1200,6\n1500,2\n1800,2\n").unwrap();

    for csv in [&csv1, &csv2] {
        let o = run(&[
            "ingest",
            "--index",
            idx.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
            "--no-smooth",
        ]);
        assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    }
    let o = run(&["stats", "--index", idx.to_str().unwrap()]);
    assert!(stdout(&o).contains("observations:    7"), "{}", stdout(&o));

    // The 10 -> 5 drop in the first file and the 6 -> 2 drop crossing the
    // second file must both be findable.
    let o = run(&[
        "query",
        "--index",
        idx.to_str().unwrap(),
        "--kind",
        "drop",
        "--v",
        "-3",
        "--t-hours",
        "1",
    ]);
    let text = stdout(&o);
    let n: usize = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().next())
        .and_then(|w| w.parse().ok())
        .unwrap_or(0);
    assert!(n >= 2, "expected at least two periods, got: {text}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a 10-day index for the observability tests and returns
/// (dir, csv, index) paths.
fn build_ten_day_index(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let dir = tmp(tag);
    let csv = dir.join("data.csv");
    let idx = dir.join("index");
    let o = run(&[
        "generate",
        "--csv",
        csv.to_str().unwrap(),
        "--days",
        "10",
        "--seed",
        "11",
    ]);
    assert!(o.status.success(), "{o:?}");
    let o = run(&[
        "ingest",
        "--index",
        idx.to_str().unwrap(),
        "--csv",
        csv.to_str().unwrap(),
        "--no-smooth",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    (dir, csv, idx)
}

#[test]
fn stats_json_round_trips_through_a_parser() {
    let (dir, _csv, idx) = build_ten_day_index("statsjson");
    let o = run(&["stats", "--index", idx.to_str().unwrap(), "--json"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = stdout(&o);
    // A single machine-readable line that survives a strict JSON parser.
    assert_eq!(text.trim().lines().count(), 1, "{text}");
    let doc = obs::json::Json::parse(text.trim()).expect("stats --json must be valid JSON");

    // Schema-stable keys with sane values.
    let obs_count = doc.get("observations").and_then(|v| v.as_u64()).unwrap();
    assert!(obs_count > 0, "{text}");
    let segments = doc.get("segments").and_then(|v| v.as_u64()).unwrap();
    assert!(segments > 0 && segments <= obs_count, "{text}");
    assert!(
        doc.get("compression_rate")
            .and_then(|v| v.as_f64())
            .unwrap()
            >= 1.0
    );
    for key in [
        "feature_rows",
        "feature_payload_bytes",
        "paper_feature_bytes",
        "heap_bytes",
        "index_bytes",
        "disk_bytes",
    ] {
        assert!(
            doc.get(key).and_then(|v| v.as_u64()).is_some(),
            "missing {key}: {text}"
        );
    }
    let hist = doc.get("corner_hist").expect("corner_hist");
    for key in ["one", "two", "three"] {
        assert!(
            hist.get(key).and_then(|v| v.as_u64()).is_some(),
            "missing corner_hist.{key}"
        );
    }
    assert!(hist.get("effective").and_then(|v| v.as_f64()).is_some());
    let cfg = doc.get("config").expect("config");
    assert_eq!(cfg.get("epsilon").and_then(|v| v.as_f64()), Some(0.2));
    assert_eq!(cfg.get("window_hours").and_then(|v| v.as_f64()), Some(8.0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_trace_prints_consistent_phase_tree() {
    let (dir, _csv, idx) = build_ten_day_index("trace");
    for (plan, phases) in [
        ("scan", &["query.plan", "query.scan", "query.refine"][..]),
        (
            "index",
            &["query.plan", "query.probe", "query.fetch", "query.refine"][..],
        ),
    ] {
        let o = run(&[
            "query",
            "--index",
            idx.to_str().unwrap(),
            "--kind",
            "drop",
            "--v",
            "-3",
            "--t-hours",
            "1",
            "--plan",
            plan,
            "--trace",
        ]);
        assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
        let text = stdout(&o);
        // The trace tree: a root query span with one nested line per phase,
        // each reporting wall time and buffer-pool deltas.
        assert!(text.contains("-> query  wall="), "{text}");
        for phase in phases {
            let line = text
                .lines()
                .find(|l| l.trim_start().starts_with(&format!("-> {phase} ")))
                .unwrap_or_else(|| panic!("missing phase {phase} in:\n{text}"));
            assert!(line.contains("wall="), "{line}");
            assert!(line.contains("physical_reads="), "{line}");
            assert!(line.contains("pool_hits="), "{line}");
        }
        // The per-phase I/O deltas must tile the query's total delta.
        assert!(text.contains("=> consistent"), "{text}");
        assert!(!text.contains("MISMATCH"), "{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_emits_parseable_json_lines() {
    let (dir, _csv, idx) = build_ten_day_index("metrics");
    let o = run(&["metrics", "--index", idx.to_str().unwrap(), "--json"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = stdout(&o);
    let mut names = Vec::new();
    for line in text.lines() {
        let doc = obs::json::Json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable metrics line {line:?}: {e}"));
        let kind = doc
            .get("kind")
            .and_then(|v| v.as_str())
            .expect("kind")
            .to_string();
        assert!(
            kind == "counter" || kind == "gauge" || kind == "histogram",
            "{line}"
        );
        // Every line is stamped with the export timestamp.
        assert!(
            doc.get("ts")
                .and_then(|v| v.as_u64())
                .is_some_and(|t| t > 0),
            "missing ts in {line}"
        );
        names.push(
            doc.get("name")
                .and_then(|v| v.as_str())
                .unwrap()
                .to_string(),
        );
        if kind == "histogram" {
            for key in ["count", "sum", "min", "p50", "p90", "p99", "p999", "max"] {
                assert!(doc.get(key).is_some(), "missing {key} in {line}");
            }
        } else {
            assert!(doc.get("value").is_some(), "{line}");
        }
    }
    // Probing the index must feed both the pool counters and the query
    // span histograms, and leave probed pages resident in the gauge.
    assert!(names.iter().any(|n| n.starts_with("pool.")), "{names:?}");
    assert!(names.iter().any(|n| n == "span.query"), "{names:?}");
    assert!(
        names.iter().any(|n| n == "pool.resident_pages"),
        "{names:?}"
    );

    // Text mode renders the same registry human-readably.
    let o = run(&["metrics", "--index", idx.to_str().unwrap()]);
    assert!(o.status.success());
    let text = stdout(&o);
    assert!(text.contains("counters:"), "{text}");
    assert!(text.contains("histograms"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

/// One raw-TCP HTTP/1.1 exchange with `Connection: close` — the test
/// speaks the wire protocol itself instead of reusing the server crate's
/// client, so a framing bug cannot cancel itself out.
fn http_once(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serve_answers_http_queries_matching_offline_results() {
    use std::io::BufRead;

    let (dir, _csv, idx) = build_ten_day_index("serve");

    // Offline ground truth through the ordinary query subcommand.
    let o = run(&[
        "query",
        "--index",
        idx.to_str().unwrap(),
        "--kind",
        "drop",
        "--v",
        "-2",
        "--t-hours",
        "1",
        "--plan",
        "index",
        "--limit",
        "100000",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let offline = stdout(&o);
    let offline_periods: Vec<&str> = offline
        .lines()
        .filter(|l| l.starts_with("start in ["))
        .collect();

    // Serve the same index on an ephemeral port.
    let mut child = Command::new(bin())
        .args([
            "serve",
            "--index",
            idx.to_str().unwrap(),
            "--port",
            "0",
            "--threads",
            "4",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn segdiff serve");
    let mut child_out = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    child_out.read_line(&mut banner).unwrap();
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();

    let (status, body) = http_once(&addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // The served results must equal the offline run, period for period.
    let query = r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#;
    let (status, body) = http_once(&addr, "POST", "/query", Some(query));
    assert_eq!(status, 200, "{body}");
    let doc = obs::json::Json::parse(&body).expect("query response is JSON");
    let results = doc.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), offline_periods.len(), "{body}");
    for (got, want) in results.iter().zip(&offline_periods) {
        let f = |key: &str| got.get(key).and_then(|v| v.as_f64()).unwrap();
        let rendered = format!(
            "start in [{:.1}, {:.1}]  end in [{:.1}, {:.1}]",
            f("t_d"),
            f("t_c"),
            f("t_b"),
            f("t_a")
        );
        assert!(
            want.starts_with(&rendered),
            "served {rendered:?} vs offline {want:?}"
        );
    }

    // Second identical request is served from the result cache.
    let (_, body) = http_once(&addr, "POST", "/query", Some(query));
    assert!(body.contains("\"cached\":true"), "{body}");

    // Invalid parameters are a clean 400.
    let (status, _) = http_once(
        &addr,
        "POST",
        "/query",
        Some(r#"{"kind":"drop","v":1.0,"t_hours":1.0}"#),
    );
    assert_eq!(status, 400);

    // Drive it briefly with the loadgen subcommand: zero failures.
    let o = run(&[
        "loadgen",
        "--url",
        &format!("http://{addr}"),
        "--concurrency",
        "4",
        "--duration-secs",
        "1",
        "--kind",
        "drop",
        "--v",
        "-2",
        "--t-hours",
        "1",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = stdout(&o);
    assert!(text.contains("0 non-2xx, 0 errors"), "{text}");
    assert!(text.contains("qps"), "{text}");

    // Clean shutdown over HTTP: process drains and exits 0 with a final
    // telemetry snapshot in the same shape as `segdiff metrics`.
    let (status, _) = http_once(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 200);
    let exit = child.wait().expect("serve exits");
    assert!(exit.success(), "serve exited with {exit:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut child_out, &mut rest).unwrap();
    assert!(rest.contains("final telemetry"), "{rest}");
    assert!(rest.contains("server.requests"), "{rest}");
    assert!(rest.contains("cache.hit"), "{rest}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `query --all-sensors` fans out over a transect root; the result
/// listing (everything below the timing header) must be byte-identical
/// whatever `--threads` is — the CLI face of the parallel-fan-out
/// determinism guarantee.
#[test]
fn all_sensors_query_is_thread_count_invariant() {
    let dir = tmp("transect");
    let root = dir.join("transect");

    // Build a three-sensor transect through the ordinary single-sensor
    // commands: each `sensor-<k>/` directory is a complete index, which
    // is exactly the layout `--all-sensors` discovers.
    for k in 0..3u32 {
        let csv = dir.join(format!("s{k}.csv"));
        let o = run(&[
            "generate",
            "--csv",
            csv.to_str().unwrap(),
            "--days",
            "5",
            "--sensor",
            &k.to_string(),
            "--seed",
            &(100 + k).to_string(),
        ]);
        assert!(o.status.success(), "{o:?}");
        let o = run(&[
            "ingest",
            "--index",
            root.join(format!("sensor-{k}")).to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
            "--no-smooth",
        ]);
        assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    }

    for plan in ["scan", "index"] {
        let mut outputs = Vec::new();
        for threads in ["1", "8"] {
            let o = run(&[
                "query",
                "--index",
                root.to_str().unwrap(),
                "--all-sensors",
                "--threads",
                threads,
                "--kind",
                "drop",
                "--v",
                "-2",
                "--t-hours",
                "1",
                "--plan",
                plan,
                "--limit",
                "100000",
            ]);
            assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
            let text = stdout(&o);
            assert!(
                text.contains("across 3 sensors"),
                "missing fan-out header: {text}"
            );
            // Drop the first line: it carries wall time and thread count.
            let body: String = text.lines().skip(1).collect::<Vec<_>>().join("\n");
            assert!(body.contains("sensor 0:"), "{text}");
            outputs.push(body);
        }
        assert_eq!(
            outputs[0], outputs[1],
            "plan {plan}: results differ between --threads 1 and --threads 8"
        );
    }

    // Both plans agree on the total period count per sensor.
    std::fs::remove_dir_all(&dir).ok();
}

/// The self-observation surface through the binary: `serve` runs the
/// sampler, `alerts` and `top` read it back over HTTP, and
/// `stats --series` runs the same sampler offline.
#[test]
fn observability_subcommands_round_trip() {
    use std::io::BufRead;

    let (dir, _csv, idx) = build_ten_day_index("observe");

    // stats --series runs the sampler offline over a probe query.
    let o = run(&["stats", "--index", idx.to_str().unwrap(), "--series"]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = stdout(&o);
    assert!(text.contains("sampled series"), "{text}");
    assert!(text.contains("sampler.ticks.rate"), "{text}");
    let o = run(&[
        "stats",
        "--index",
        idx.to_str().unwrap(),
        "--series",
        "--json",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let doc = obs::json::Json::parse(stdout(&o).trim()).expect("stats --series --json parses");
    let series = doc.get("series").unwrap().as_array().unwrap();
    assert!(
        series
            .iter()
            .any(|s| { s.get("name").and_then(|v| v.as_str()) == Some("pool.resident_pages") }),
        "sampled series must include the resident-pages gauge"
    );

    // Serve with a fast sampler, then read the observability routes back
    // through the dedicated subcommands.
    let mut child = Command::new(bin())
        .args([
            "serve",
            "--index",
            idx.to_str().unwrap(),
            "--port",
            "0",
            "--threads",
            "2",
            "--sample-ms",
            "50",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn segdiff serve");
    let mut child_out = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    child_out.read_line(&mut banner).unwrap();
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();
    let url = format!("http://{addr}");

    // Give the rings content and the sampler a few periods.
    let query = r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#;
    for _ in 0..3 {
        let (status, body) = http_once(&addr, "POST", "/query", Some(query));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"trace_id\":"), "{body}");
    }
    std::thread::sleep(std::time::Duration::from_millis(300));

    // segdiff alerts: lists the standing rules; clean run, no firing of
    // the latency rule.
    let o = run(&["alerts", "--url", &url]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = stdout(&o);
    assert!(text.contains("standing rules"), "{text}");
    assert!(text.contains("query-latency-jump"), "{text}");
    assert!(text.contains("query-rate-drop"), "{text}");
    let o = run(&["alerts", "--url", &url, "--json"]);
    assert!(o.status.success());
    let doc = obs::json::Json::parse(stdout(&o).trim()).expect("alerts --json parses");
    assert!(doc.get("rules").is_some(), "{doc:?}");

    // segdiff top: two frames and exit.
    let o = run(&[
        "top",
        "--url",
        &url,
        "--interval-ms",
        "50",
        "--iterations",
        "2",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = stdout(&o);
    assert!(text.contains("segdiff top"), "{text}");
    assert!(text.contains("frame 2"), "{text}");
    assert!(text.contains("qps"), "{text}");
    assert!(text.contains("alerts fired:"), "{text}");

    let (status, _) = http_once(&addr, "POST", "/shutdown", None);
    assert_eq!(status, 200);
    let exit = child.wait().expect("serve exits");
    assert!(exit.success(), "serve exited with {exit:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let o = run(&["frobnicate"]);
    assert_eq!(o.status.code(), Some(2));
    let o = run(&[
        "query",
        "--index",
        "/nonexistent",
        "--kind",
        "drop",
        "--v",
        "-3",
        "--t-hours",
        "1",
    ]);
    assert_eq!(o.status.code(), Some(1));
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(err.contains("error:"), "{err}");
}
