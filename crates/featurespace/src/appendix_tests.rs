//! Case-by-case verification of the Appendix: for each of the six slope
//! cases we build a concrete segment pair, confirm the classification, and
//! check that the extracted drop/jump boundaries use exactly the corners
//! the paper lists in Table 2 (including the sub-cases that degrade to
//! fewer corners).

use crate::{extract_boundary, Parallelogram, QueryRegion, SearchKind, SlopeCase};
use segmentation::Segment;

fn classify(cd: &Segment, ab: &Segment) -> SlopeCase {
    SlopeCase::classify(cd.slope(), ab.slope())
}

/// Case 1: k_CD >= 0, k_AB <= 0.
fn case1() -> (Segment, Segment) {
    (
        Segment::new(0.0, 0.0, 10.0, 2.0),   // rising
        Segment::new(15.0, 1.0, 25.0, -2.0), // falling
    )
}

/// Case 2: k_CD >= 0, k_AB >= k_CD.
fn case2() -> (Segment, Segment) {
    (
        Segment::new(0.0, 0.0, 10.0, 1.0),  // slope 0.1
        Segment::new(15.0, 0.0, 25.0, 5.0), // slope 0.5
    )
}

/// Case 3: k_CD >= 0, 0 < k_AB < k_CD.
fn case3() -> (Segment, Segment) {
    (
        Segment::new(0.0, 0.0, 10.0, 5.0),  // slope 0.5
        Segment::new(15.0, 0.0, 25.0, 1.0), // slope 0.1
    )
}

/// Case 4: k_CD < 0, k_AB >= 0.
fn case4() -> (Segment, Segment) {
    (
        Segment::new(0.0, 3.0, 10.0, 0.0),  // falling
        Segment::new(15.0, 1.0, 25.0, 4.0), // rising
    )
}

/// Case 5: k_CD < 0, k_AB <= k_CD.
fn case5() -> (Segment, Segment) {
    (
        Segment::new(0.0, 3.0, 10.0, 2.0),   // slope -0.1
        Segment::new(15.0, 2.0, 25.0, -3.0), // slope -0.5
    )
}

/// Case 6: k_CD < 0, k_CD < k_AB < 0.
fn case6() -> (Segment, Segment) {
    (
        Segment::new(0.0, 5.0, 10.0, 0.0),  // slope -0.5
        Segment::new(15.0, 2.0, 25.0, 1.0), // slope -0.1
    )
}

#[test]
fn classifications_are_correct() {
    assert_eq!(classify(&case1().0, &case1().1), SlopeCase::C1);
    assert_eq!(classify(&case2().0, &case2().1), SlopeCase::C2);
    assert_eq!(classify(&case3().0, &case3().1), SlopeCase::C3);
    assert_eq!(classify(&case4().0, &case4().1), SlopeCase::C4);
    assert_eq!(classify(&case5().0, &case5().1), SlopeCase::C5);
    assert_eq!(classify(&case6().0, &case6().1), SlopeCase::C6);
}

#[test]
fn case1_corners_per_table2() {
    let (cd, ab) = case1();
    let p = Parallelogram::from_pair(&cd, &ab);
    let drop = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
    assert_eq!(drop.corners(), &[p.bc, p.ac], "drop: BC, AC");
    let jump = extract_boundary(&cd, &ab, 0.0, SearchKind::Jump).unwrap();
    assert_eq!(jump.corners(), &[p.bc, p.bd], "jump: BC, BD");
}

#[test]
fn case2_corners_per_table2() {
    let (cd, ab) = case2();
    let p = Parallelogram::from_pair(&cd, &ab);
    // Drop: single corner BC (pruned unless BC can dip to zero; here
    // bc.dv = 0 - 1 = -1 <= 0, so stored).
    let drop = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
    assert_eq!(drop.corners(), &[p.bc], "drop: BC");
    // Jump I: AC denotes a jump (ac.dv = 5 - 1 = 4 >= 0): BC, AC, AD.
    assert!(p.ac.dv >= 0.0);
    let jump = extract_boundary(&cd, &ab, 0.0, SearchKind::Jump).unwrap();
    assert_eq!(jump.corners(), &[p.bc, p.ac, p.ad], "jump I: BC, AC, AD");
}

#[test]
fn case2_jump_ii_degrades() {
    // Push AB far below CD so AC is a (strict) drop but AD still a jump.
    let cd = Segment::new(0.0, 0.0, 10.0, 1.0);
    let ab = Segment::new(15.0, -8.0, 25.0, 0.5); // slope 0.85 >= 0.1: case 2
    let p = Parallelogram::from_pair(&cd, &ab);
    assert!(p.ac.dv < 0.0 && p.ad.dv > 0.0);
    let jump = extract_boundary(&cd, &ab, 0.0, SearchKind::Jump).unwrap();
    assert_eq!(jump.corners(), &[p.ac, p.ad], "jump II: AC, AD");
}

#[test]
fn case3_corners_per_table2() {
    let (cd, ab) = case3();
    let p = Parallelogram::from_pair(&cd, &ab);
    let drop = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
    assert_eq!(drop.corners(), &[p.bc], "drop: BC");
    // Jump I with BD in place of AC (bd.dv = 0 - 0 = 0 >= 0).
    let jump = extract_boundary(&cd, &ab, 0.0, SearchKind::Jump).unwrap();
    assert_eq!(jump.corners(), &[p.bc, p.bd, p.ad], "jump I: BC, BD, AD");
}

#[test]
fn case4_corners_per_table2() {
    let (cd, ab) = case4();
    let p = Parallelogram::from_pair(&cd, &ab);
    let drop = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
    assert_eq!(drop.corners(), &[p.bc, p.bd], "drop: BC, BD");
    let jump = extract_boundary(&cd, &ab, 0.0, SearchKind::Jump).unwrap();
    assert_eq!(jump.corners(), &[p.bc, p.ac], "jump: BC, AC");
}

#[test]
fn case5_corners_per_table2() {
    let (cd, ab) = case5();
    let p = Parallelogram::from_pair(&cd, &ab);
    // Drop I: ac.dv = -3 - 2 = -5 <= 0: BC, AC, AD.
    assert!(p.ac.dv <= 0.0);
    let drop = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
    assert_eq!(drop.corners(), &[p.bc, p.ac, p.ad], "drop I: BC, AC, AD");
    // Jump: single corner BC (bc.dv = 2 - 2 = 0; prune needs + eps > 0, so
    // at eps = 0 it is pruned — check with a small eps instead).
    let jump = extract_boundary(&cd, &ab, 0.1, SearchKind::Jump).unwrap();
    assert_eq!(jump.len(), 1, "jump: BC only");
    assert_eq!(jump.corners()[0].dt, p.bc.dt);
}

#[test]
fn case5_drop_ii_degrades() {
    // Lift AB so AC becomes a jump while AD stays a drop.
    let cd = Segment::new(0.0, 3.0, 10.0, 2.0); // slope -0.1
    let ab = Segment::new(15.0, 9.0, 25.0, 2.5); // slope -0.65 <= -0.1: case 5
    let p = Parallelogram::from_pair(&cd, &ab);
    assert!(p.ac.dv > 0.0 && p.ad.dv < 0.0);
    let drop = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
    assert_eq!(drop.corners(), &[p.ac, p.ad], "drop II: AC, AD");
}

#[test]
fn case6_corners_per_table2() {
    let (cd, ab) = case6();
    let p = Parallelogram::from_pair(&cd, &ab);
    // Drop I with BD in place of AC: bd.dv = 2 - 5 = -3 <= 0.
    assert!(p.bd.dv <= 0.0);
    let drop = extract_boundary(&cd, &ab, 0.0, SearchKind::Drop).unwrap();
    assert_eq!(drop.corners(), &[p.bc, p.bd, p.ad], "drop I: BC, BD, AD");
    let jump = extract_boundary(&cd, &ab, 0.1, SearchKind::Jump).unwrap();
    assert_eq!(jump.len(), 1, "jump: BC only");
}

#[test]
fn boundaries_face_the_right_way() {
    // For every case the drop boundary must be the *lower-left frontier*:
    // no sampled point of the parallelogram may lie strictly below-left of
    // every boundary corner's reach. We verify operationally: any region
    // that contains a sampled parallelogram point must intersect the
    // boundary (this is the per-case version of the global proptest).
    let pairs = [case1(), case2(), case3(), case4(), case5(), case6()];
    for (cd, ab) in &pairs {
        for kind in [SearchKind::Drop, SearchKind::Jump] {
            for i in 0..=6 {
                for j in 0..=6 {
                    let tc = cd.t_start + cd.duration() * i as f64 / 6.0;
                    let tb = ab.t_start + ab.duration() * j as f64 / 6.0;
                    let dt = tb - tc;
                    let dv = ab.value_at(tb) - cd.value_at(tc);
                    if dt <= 0.0 {
                        continue;
                    }
                    // Nudge the thresholds so the sampled point — which
                    // lies exactly on the parallelogram boundary — sits
                    // strictly inside the region despite float rounding.
                    let region = match kind {
                        SearchKind::Drop if dv < -1e-6 => QueryRegion::drop(dt + 1e-9, dv + 1e-9),
                        SearchKind::Jump if dv > 1e-6 => QueryRegion::jump(dt + 1e-9, dv - 1e-9),
                        _ => continue,
                    };
                    let b = extract_boundary(cd, ab, 0.0, kind).unwrap_or_else(|| {
                        panic!("pruned a matching pair in {:?}", classify(cd, ab))
                    });
                    assert!(
                        b.intersects(&region),
                        "case {:?} {kind:?}: boundary missed sampled point ({dt}, {dv})",
                        classify(cd, ab)
                    );
                }
            }
        }
    }
}
