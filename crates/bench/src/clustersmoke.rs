//! CI gate for the sharded serving tier (DESIGN.md §5i).
//!
//! The smoke builds a small transect, partitions its sensors with the
//! same consistent-hash ring `segdiff router` uses, and launches the
//! real deployment shape as separate OS processes: one `segdiff serve`
//! per shard, one warm replica tailing shard 0's WAL, and a
//! `segdiff router` in front. It then asserts the tentpole claims:
//!
//! 1. **Byte identity** — the router's `results` array for a
//!    scatter–gathered query equals, byte for byte, the answer of a
//!    single in-process server over the whole transect.
//! 2. **Tail latency** — a closed-loop load run through the router
//!    stays under the `ci/serving-guard.json` p99 bound.
//! 3. **Failover** — SIGKILL of shard 0's primary degrades nothing:
//!    reads fail over to the warm replica (the time to the first
//!    successful retry is recorded), and the answers still match.
//! 4. **Blast radius** — SIGKILL of a replica-less shard degrades only
//!    that shard's sensors: queries touching them get a structured 503
//!    naming exactly those sensors, queries avoiding them still 200.
//!
//! Separate processes are the point: `kill(2)` on a real primary is the
//! failure the router must survive, and no in-process harness can fake
//! the half-open sockets it leaves behind.

use crate::harness::scratch_dir;
use obs::json::Json;
use router::Ring;
use segdiff::{SegDiffConfig, TransectIndex};
use segdiff_server::loadgen::{self, fetch, query_mix};
use segdiff_server::{Engine, LoadgenConfig, Server, ServerConfig};
use sensorgen::{generate_sensor, CadTransectConfig};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything the `clustersmoke` binary parses.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Path to the `segdiff` binary to spawn shards and the router from.
    pub segdiff: PathBuf,
    /// Artifact directory (shard/replica/router logs, `summary.json`).
    pub out: Option<PathBuf>,
    /// Shard count.
    pub shards: usize,
    /// Sensors in the generated transect.
    pub sensors: u32,
    /// Days of data per sensor.
    pub days: u32,
    /// Router listens on `base_port`; shard `i` on `base_port + 1 + i`;
    /// the replica on `base_port + 30`.
    pub base_port: u16,
    /// Load phase duration.
    pub duration: Duration,
    /// Router health-probe interval.
    pub health_interval_ms: u64,
    /// Optional guard file with a `max_p99_ms` bound for the load phase.
    pub guard: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            segdiff: PathBuf::from("./target/release/segdiff"),
            out: None,
            shards: 4,
            sensors: 12,
            days: 3,
            base_port: 7700,
            duration: Duration::from_secs(5),
            health_interval_ms: 200,
            guard: None,
        }
    }
}

/// What one smoke run measured; `failures` empty means PASS.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// Sensor ids owned by each shard (ring assignment).
    pub buckets: Vec<Vec<u32>>,
    /// Router endpoint used for all client traffic.
    pub router_host: String,
    /// Completed 2xx requests in the load phase.
    pub ok: u64,
    /// Non-2xx plus transport errors in the load phase.
    pub load_failures: u64,
    /// Load-phase throughput.
    pub qps: f64,
    /// Load-phase p99 latency, milliseconds.
    pub p99_ms: f64,
    /// Wall time from SIGKILL of shard 0's primary to the first
    /// successful read through the replica.
    pub failover_ms: u64,
    /// `unavailable_sensors` reported after the replica-less shard died.
    pub unavailable: Vec<u64>,
    /// Every failed assertion, in order.
    pub failures: Vec<String>,
}

/// A spawned cluster member, killed on drop so a failed run never
/// leaves orphans behind.
struct Proc {
    name: String,
    child: Child,
}

impl Proc {
    fn kill(&mut self) {
        // SIGKILL: teardown mirrors the fault the smoke injects.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Builds the transect dataset all shards are carved from.
fn build_transect(root: &Path, sensors: u32, days: u32) -> Result<(), String> {
    let cfg = CadTransectConfig::default()
        .with_days(days)
        .with_sensors(sensors)
        .clean();
    let mut t = TransectIndex::create(root, SegDiffConfig::default(), sensors)
        .map_err(|e| format!("create transect: {e}"))?;
    for k in 0..sensors {
        t.ingest_series(k, &generate_sensor(&cfg, k, 7))
            .map_err(|e| format!("ingest sensor {k}: {e}"))?;
    }
    t.finish_all().map_err(|e| format!("finish: {e}"))?;
    t.build_indexes_all()
        .map_err(|e| format!("build indexes: {e}"))?;
    Ok(())
}

/// Recursive copy (the per-sensor stores are a handful of small files).
/// Every shard process gets a private copy of its sensors so no two
/// pagestore instances ever share a file.
fn copy_dir(from: &Path, to: &Path) -> Result<(), String> {
    std::fs::create_dir_all(to).map_err(|e| format!("mkdir {}: {e}", to.display()))?;
    let entries = std::fs::read_dir(from).map_err(|e| format!("read {}: {e}", from.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_dir(&src, &dst)?;
        } else {
            std::fs::copy(&src, &dst).map_err(|e| format!("copy {}: {e}", src.display()))?;
        }
    }
    Ok(())
}

/// Spawns one `segdiff` subcommand with stdout+stderr into `log`.
fn spawn_segdiff(binary: &Path, name: &str, args: &[String], log: &Path) -> Result<Proc, String> {
    let out = std::fs::File::create(log).map_err(|e| format!("create {}: {e}", log.display()))?;
    let err = out
        .try_clone()
        .map_err(|e| format!("clone log handle: {e}"))?;
    let child = Command::new(binary)
        .args(args)
        .stdin(Stdio::null())
        .stdout(out)
        .stderr(err)
        .spawn()
        .map_err(|e| format!("spawn {name} ({}): {e}", binary.display()))?;
    Ok(Proc {
        name: name.to_string(),
        child,
    })
}

/// Polls `f` every 50 ms until it yields, or fails after `deadline`.
fn await_until<T>(
    deadline: Duration,
    what: &str,
    mut f: impl FnMut() -> Option<T>,
) -> Result<T, String> {
    let t0 = Instant::now();
    loop {
        if let Some(v) = f() {
            return Ok(v);
        }
        if t0.elapsed() > deadline {
            return Err(format!("timed out after {deadline:?} waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// `true` once `host` answers `GET /healthz` with 200.
fn is_healthy(host: &str) -> bool {
    matches!(fetch(host, "GET", "/healthz", None), Ok((200, _)))
}

/// POSTs `body` to `/query`, returning `(status, parsed)`.
fn post_query(host: &str, body: &str) -> Result<(u16, Json), String> {
    let (status, text) = fetch(host, "POST", "/query", Some(body))?;
    let doc = Json::parse(&text).map_err(|e| format!("bad /query response {text:?}: {e}"))?;
    Ok((status, doc))
}

/// The canonical probe body, optionally restricted to `sensors`.
fn probe_body(sensors: Option<&[u32]>) -> String {
    match sensors {
        None => r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#.to_string(),
        Some(ids) => {
            let csv: Vec<String> = ids.iter().map(ToString::to_string).collect();
            format!(
                r#"{{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index","sensors":[{}]}}"#,
                csv.join(",")
            )
        }
    }
}

/// The `results` array of a 200 answer, re-serialized compactly. Both
/// sides of every byte-identity check go through this, so equal strings
/// mean the parsed values round-trip to the same bytes.
fn results_bytes(host: &str, body: &str) -> Result<String, String> {
    let (status, doc) = post_query(host, body)?;
    if status != 200 {
        return Err(format!("POST /query returned {status}: {doc}"));
    }
    Ok(doc
        .get("results")
        .map(Json::to_string_compact)
        .unwrap_or_default())
}

/// Runs the whole smoke. `Err` is an infrastructure failure (nothing
/// could be measured); assertion failures land in `outcome.failures`.
pub fn run_clustersmoke(cfg: &ClusterConfig) -> Result<ClusterOutcome, String> {
    let dir = scratch_dir("clustersmoke");
    std::fs::remove_dir_all(&dir).ok();
    let root = dir.join("transect");
    eprintln!(
        "clustersmoke: building {} sensors x {} days under {}",
        cfg.sensors,
        cfg.days,
        root.display()
    );
    build_transect(&root, cfg.sensors, cfg.days)?;

    let ids: Vec<u32> = (0..cfg.sensors).collect();
    let ring = Ring::new(cfg.shards);
    let buckets = ring.partition(&ids);
    for (shard, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            return Err(format!(
                "shard {shard} owns no sensors; raise --sensors or lower --shards"
            ));
        }
    }

    let logs = cfg.out.clone().unwrap_or_else(|| dir.join("logs"));
    std::fs::create_dir_all(&logs).map_err(|e| format!("mkdir {}: {e}", logs.display()))?;

    // The single-process reference: an in-process server over the whole
    // transect. Every byte-identity check compares against it.
    let reference = Server::bind(
        "127.0.0.1:0",
        Engine::transect(
            Arc::new(TransectIndex::open(&root, 4096).map_err(|e| e.to_string())?),
            4,
        ),
        ServerConfig::default(),
    )
    .map_err(|e| format!("bind reference server: {e}"))?;
    let ref_host = reference.local_addr().to_string();
    let ref_flag = reference.shutdown_flag();
    let ref_handle = std::thread::spawn(move || reference.run());

    // One private store copy + one `segdiff serve` process per shard.
    let host_of = |port: u16| format!("127.0.0.1:{port}");
    let mut procs: Vec<Proc> = Vec::new();
    let mut shard_hosts = Vec::new();
    for (shard, bucket) in buckets.iter().enumerate() {
        let shard_root = dir.join(format!("shard-{shard}"));
        for &sensor in bucket {
            copy_dir(
                &root.join(format!("sensor-{sensor}")),
                &shard_root.join(format!("sensor-{sensor}")),
            )?;
        }
        let port = cfg.base_port + 1 + shard as u16;
        let csv: Vec<String> = bucket.iter().map(ToString::to_string).collect();
        let args = vec![
            "serve".to_string(),
            "--index".to_string(),
            shard_root.display().to_string(),
            "--all-sensors".to_string(),
            "--sensors".to_string(),
            csv.join(","),
            "--port".to_string(),
            port.to_string(),
            "--threads".to_string(),
            "4".to_string(),
        ];
        procs.push(spawn_segdiff(
            &cfg.segdiff,
            &format!("shard-{shard}"),
            &args,
            &logs.join(format!("shard-{shard}.log")),
        )?);
        shard_hosts.push(host_of(port));
    }
    for host in &shard_hosts {
        let host = host.clone();
        await_until(Duration::from_secs(30), &format!("shard at {host}"), || {
            is_healthy(&host).then_some(())
        })?;
    }

    // Warm replica of shard 0: bootstraps a snapshot over HTTP, then
    // tails the primary's WAL.
    let replica_port = cfg.base_port + 30;
    let replica_host = host_of(replica_port);
    let replica_args = vec![
        "serve".to_string(),
        "--index".to_string(),
        dir.join("replica-0").display().to_string(),
        "--replica-of".to_string(),
        format!("http://{}", shard_hosts[0]),
        "--port".to_string(),
        replica_port.to_string(),
        "--poll-ms".to_string(),
        "100".to_string(),
    ];
    procs.push(spawn_segdiff(
        &cfg.segdiff,
        "replica-0",
        &replica_args,
        &logs.join("replica-0.log"),
    )?);
    await_until(Duration::from_secs(30), "replica of shard 0", || {
        is_healthy(&replica_host).then_some(())
    })?;

    // The router over all shards, replica attached to shard 0.
    let router_host = host_of(cfg.base_port);
    let mut router_args = vec![
        "router".to_string(),
        "--port".to_string(),
        cfg.base_port.to_string(),
        "--health-interval-ms".to_string(),
        cfg.health_interval_ms.to_string(),
    ];
    for (shard, host) in shard_hosts.iter().enumerate() {
        router_args.push("--shard".to_string());
        if shard == 0 {
            router_args.push(format!("{host},{replica_host}"));
        } else {
            router_args.push(host.clone());
        }
    }
    procs.push(spawn_segdiff(
        &cfg.segdiff,
        "router",
        &router_args,
        &logs.join("router.log"),
    )?);
    {
        let router_host = router_host.clone();
        await_until(Duration::from_secs(30), "router status ok", move || {
            let (status, body) = fetch(&router_host, "GET", "/healthz", None).ok()?;
            let doc = Json::parse(&body).ok()?;
            (status == 200 && doc.get("status").and_then(Json::as_str) == Some("ok")).then_some(())
        })?;
    }

    let mut failures = Vec::new();
    let mut check = |name: &str, ok: bool, detail: String| {
        if ok {
            eprintln!("clustersmoke: ok: {name}");
        } else {
            eprintln!("clustersmoke: FAIL: {name}: {detail}");
            failures.push(format!("{name}: {detail}"));
        }
    };

    // 1. Byte identity, full fan-out and per-shard subsets.
    let want = results_bytes(&ref_host, &probe_body(None))?;
    let got = results_bytes(&router_host, &probe_body(None))?;
    check(
        "scatter-gather bytes == single-process bytes",
        want == got,
        format!("reference {} bytes, router {} bytes", want.len(), got.len()),
    );
    for (shard, bucket) in buckets.iter().enumerate() {
        let body = probe_body(Some(bucket));
        let want = results_bytes(&ref_host, &body)?;
        let got = results_bytes(&router_host, &body)?;
        check(
            &format!("shard {shard} subset bytes match"),
            want == got,
            format!("reference {} bytes, router {} bytes", want.len(), got.len()),
        );
    }

    // 2. Load through the router under the serving p99 guard.
    let report = loadgen::run(&LoadgenConfig {
        host: router_host.clone(),
        concurrency: 8,
        duration: cfg.duration,
        bodies: query_mix("drop", -2.0, 1.0),
    })?;
    let p99_ms = report.latency.p99 as f64 / 1e6;
    check(
        "load phase completed cleanly",
        report.ok > 0 && report.errors == 0 && report.non_2xx == 0,
        format!(
            "{} ok, {} non-2xx, {} errors",
            report.ok, report.non_2xx, report.errors
        ),
    );
    if let Some(guard_path) = &cfg.guard {
        let text = std::fs::read_to_string(guard_path)
            .map_err(|e| format!("guard file {}: {e}", guard_path.display()))?;
        let max_p99_ms = Json::parse(&text)
            .map_err(|e| format!("guard file: {e}"))?
            .get("max_p99_ms")
            .and_then(Json::as_f64)
            .ok_or("guard file needs a numeric max_p99_ms field")?;
        check(
            "router p99 within guard",
            p99_ms <= max_p99_ms,
            format!("p99 {p99_ms:.2} ms vs bound {max_p99_ms:.2} ms"),
        );
    }

    // 3. Kill shard 0's primary: reads must fail over to the replica
    //    and the answers must still match the reference.
    procs[0].kill();
    eprintln!(
        "clustersmoke: killed {} (primary of shard 0)",
        procs[0].name
    );
    let body0 = probe_body(Some(&buckets[0]));
    let killed_at = Instant::now();
    let after_failover = {
        let router_host = router_host.clone();
        let body0 = body0.clone();
        await_until(
            Duration::from_secs(10),
            "failover to shard 0's replica",
            move || match post_query(&router_host, &body0) {
                Ok((200, doc)) => Some(doc.get("results").map(Json::to_string_compact)),
                _ => None,
            },
        )?
    };
    let failover_ms = killed_at.elapsed().as_millis() as u64;
    let want0 = results_bytes(&ref_host, &body0)?;
    check(
        "replica answers shard 0 byte-identically",
        after_failover.as_deref() == Some(want0.as_str()),
        format!(
            "reference {} bytes, replica answer {} bytes",
            want0.len(),
            after_failover.map_or(0, |s| s.len())
        ),
    );
    // Sooner is fine (request-path failure triggers an immediate
    // re-probe); much later than two probe intervals plus transport
    // slack means the state machine is stuck.
    check(
        "failover within two health-check intervals",
        failover_ms <= 2 * cfg.health_interval_ms + 1_000,
        format!(
            "took {failover_ms} ms (interval {} ms)",
            cfg.health_interval_ms
        ),
    );

    // 4. Kill a replica-less shard: its sensors 503 with exact blast
    //    radius, every other shard keeps answering.
    procs[1].kill();
    eprintln!("clustersmoke: killed {} (no replica)", procs[1].name);
    let body1 = probe_body(Some(&buckets[1]));
    let unavailable = {
        let router_host = router_host.clone();
        await_until(
            Duration::from_secs(10),
            "structured 503 for the dead shard",
            move || match post_query(&router_host, &body1) {
                Ok((503, doc)) => Some(
                    doc.get("unavailable_sensors")
                        .and_then(Json::as_array)
                        .map(|a| a.iter().filter_map(Json::as_u64).collect::<Vec<u64>>())
                        .unwrap_or_default(),
                ),
                _ => None,
            },
        )?
    };
    let want_unavailable: Vec<u64> = buckets[1].iter().map(|&s| u64::from(s)).collect();
    check(
        "503 names exactly the dead shard's sensors",
        unavailable == want_unavailable,
        format!("got {unavailable:?}, want {want_unavailable:?}"),
    );
    // A full fan-out query needs shard 1, so it degrades too — with the
    // same sensor list, nothing more.
    match post_query(&router_host, &probe_body(None))? {
        (503, doc) => {
            let got: Vec<u64> = doc
                .get("unavailable_sensors")
                .and_then(Json::as_array)
                .map(|a| a.iter().filter_map(Json::as_u64).collect())
                .unwrap_or_default();
            check(
                "full fan-out degrades with the same blast radius",
                got == want_unavailable,
                format!("got {got:?}, want {want_unavailable:?}"),
            );
        }
        (status, doc) => check(
            "full fan-out degrades with the same blast radius",
            false,
            format!("got {status}: {doc}"),
        ),
    }
    // Queries that avoid the dead shard still answer byte-identically.
    let survivors: Vec<u32> = buckets
        .iter()
        .enumerate()
        .filter(|&(shard, _)| shard != 1)
        .flat_map(|(_, b)| b.iter().copied())
        .collect();
    let body_rest = probe_body(Some(&survivors));
    let want_rest = results_bytes(&ref_host, &body_rest)?;
    let got_rest = results_bytes(&router_host, &body_rest)?;
    check(
        "surviving shards still answer byte-identically",
        want_rest == got_rest,
        format!(
            "reference {} bytes, router {} bytes",
            want_rest.len(),
            got_rest.len()
        ),
    );

    // Teardown. Children die via Drop; the reference drains cleanly.
    drop(procs);
    ref_flag.store(true, std::sync::atomic::Ordering::Release);
    match ref_handle.join() {
        Ok(r) => r.map_err(|e| format!("reference server: {e}"))?,
        Err(_) => return Err("reference server thread panicked".to_string()),
    }
    std::fs::remove_dir_all(dir.join("transect")).ok();

    Ok(ClusterOutcome {
        buckets,
        router_host,
        ok: report.ok,
        load_failures: report.non_2xx + report.errors,
        qps: report.qps(),
        p99_ms,
        failover_ms,
        unavailable,
        failures,
    })
}

/// Renders the verdict CI uploads as `summary.json`.
pub fn summary_json(outcome: &ClusterOutcome) -> Json {
    Json::obj([
        ("pass", Json::Bool(outcome.failures.is_empty())),
        ("shards", Json::from(outcome.buckets.len() as u64)),
        (
            "assignment",
            Json::Array(
                outcome
                    .buckets
                    .iter()
                    .map(|b| Json::Array(b.iter().map(|&s| Json::from(u64::from(s))).collect()))
                    .collect(),
            ),
        ),
        ("load_ok", Json::from(outcome.ok)),
        ("load_failures", Json::from(outcome.load_failures)),
        ("qps", Json::from(outcome.qps)),
        ("p99_ms", Json::from(outcome.p99_ms)),
        ("failover_ms", Json::from(outcome.failover_ms)),
        (
            "unavailable_sensors",
            Json::Array(outcome.unavailable.iter().map(|&s| Json::from(s)).collect()),
        ),
        (
            "failures",
            Json::Array(
                outcome
                    .failures
                    .iter()
                    .map(|f| Json::Str(f.clone()))
                    .collect(),
            ),
        ),
    ])
}

/// Writes `summary.json` under `dir`.
pub fn write_summary(dir: &Path, summary: &Json) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let mut f = std::fs::File::create(dir.join("summary.json"))
        .map_err(|e| format!("create summary.json: {e}"))?;
    writeln!(f, "{summary}").map_err(|e| format!("write summary.json: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The default smoke topology must give every shard work — this is
    /// the same deterministic ring the router and launcher build, so a
    /// green test here means the CI job cannot die on an empty bucket.
    #[test]
    fn default_assignment_fills_every_shard() {
        let cfg = ClusterConfig::default();
        let ids: Vec<u32> = (0..cfg.sensors).collect();
        let buckets = Ring::new(cfg.shards).partition(&ids);
        assert_eq!(buckets.len(), cfg.shards);
        assert_eq!(
            buckets.iter().map(Vec::len).sum::<usize>(),
            cfg.sensors as usize
        );
        for (shard, bucket) in buckets.iter().enumerate() {
            assert!(!bucket.is_empty(), "shard {shard} owns no sensors");
        }
    }

    #[test]
    fn probe_bodies_parse_as_query_specs() {
        use segdiff_server::QuerySpec;
        let spec = QuerySpec::from_json(&probe_body(None)).expect("full body");
        assert!(spec.sensors.is_empty());
        let spec = QuerySpec::from_json(&probe_body(Some(&[3, 5]))).expect("subset body");
        assert_eq!(spec.sensors, vec![3, 5]);
    }

    #[test]
    fn summary_round_trips() {
        let outcome = ClusterOutcome {
            buckets: vec![vec![0, 2], vec![1]],
            router_host: "127.0.0.1:7700".to_string(),
            ok: 100,
            load_failures: 0,
            qps: 50.0,
            p99_ms: 12.5,
            failover_ms: 180,
            unavailable: vec![1],
            failures: Vec::new(),
        };
        let doc = summary_json(&outcome);
        assert_eq!(doc.get("pass"), Some(&Json::Bool(true)));
        let parsed = Json::parse(&doc.to_string_compact()).expect("round trip");
        assert_eq!(parsed.get("failover_ms").and_then(Json::as_u64), Some(180));
    }
}
