//! Configuration of a [`crate::SegDiffIndex`].

use sensorgen::HOUR;

/// Parameters of the SegDiff framework.
///
/// The defaults match the paper's experimental defaults (§6): `ε = 0.2`
/// degree Celsius, `w = 8` hours.
#[derive(Debug, Clone)]
pub struct SegDiffConfig {
    /// User error tolerance `ε >= 0` (Definition 2). Segmentation keeps the
    /// approximation within `ε/2` of the data; query results are then exact
    /// up to `2ε` (Theorem 1).
    pub epsilon: f64,
    /// Window width `w` in seconds: the longest time span any future query
    /// may use (`T <= w`).
    pub window: f64,
    /// Buffer-pool capacity in 4 KiB pages.
    pub pool_pages: usize,
    /// Entry bound of the epoch-tagged query result cache.
    pub cache_entries: usize,
}

impl Default for SegDiffConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.2,
            window: 8.0 * HOUR,
            pool_pages: 4096, // 16 MiB
            cache_entries: 256,
        }
    }
}

impl SegDiffConfig {
    /// Sets the error tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be >= 0"
        );
        self.epsilon = epsilon;
        self
    }

    /// Sets the window width in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `window` is positive and finite.
    pub fn with_window(mut self, window: f64) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive"
        );
        self.window = window;
        self
    }

    /// Sets the buffer-pool size in pages.
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Sets the result-cache entry bound (min 1).
    pub fn with_cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SegDiffConfig::default();
        assert_eq!(c.epsilon, 0.2);
        assert_eq!(c.window, 8.0 * 3600.0);
    }

    #[test]
    fn builders() {
        let c = SegDiffConfig::default()
            .with_epsilon(0.4)
            .with_window(3600.0)
            .with_pool_pages(64);
        assert_eq!(c.epsilon, 0.4);
        assert_eq!(c.window, 3600.0);
        assert_eq!(c.pool_pages, 64);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn negative_epsilon_rejected() {
        SegDiffConfig::default().with_epsilon(-0.1);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        SegDiffConfig::default().with_window(0.0);
    }
}
