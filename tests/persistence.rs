//! Durability: indexes survive process restarts (reopen) and ingestion
//! resumes across the restart without losing events near the boundary.

use segdiff_repro::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("segdiff-persist-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn walk(n: usize, seed: u64) -> TimeSeries {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = 5.0;
    (0..n)
        .map(|i| {
            v += (rng.random::<f64>() - 0.5) * 2.0;
            (i as f64 * 300.0, v)
        })
        .collect()
}

#[test]
fn segdiff_reopen_answers_identically() {
    let dir = tmpdir("seg-reopen");
    let series = walk(500, 3);
    let region = QueryRegion::drop(1.0 * HOUR, -1.5);
    let before = {
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        idx.query(&region, QueryPlan::SeqScan).unwrap().0
    };
    let idx = SegDiffIndex::open(&dir, 1024).unwrap();
    let (scan, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
    let (indexed, _) = idx.query(&region, QueryPlan::Index).unwrap();
    assert_eq!(before, scan);
    assert_eq!(before, indexed);
    // Stats (histograms, counts) survive too.
    let s = idx.stats();
    assert_eq!(s.n_observations, 500);
    assert!(s.n_segments > 0);
    assert_eq!(s.corner_hist().total(), s.n_rows);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn segdiff_resumed_ingest_preserves_completeness() {
    // Ingest the first half, finish, reopen, ingest the second half.
    // Theorem 1's completeness must hold over the whole series, including
    // events that straddle the restart.
    let dir = tmpdir("seg-resume");
    let series = walk(600, 17);
    let half = series.len() / 2;
    {
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        for i in 0..half {
            let (t, v) = series.get(i);
            idx.push(t, v).unwrap();
        }
        idx.finish().unwrap();
    }
    let mut idx = SegDiffIndex::open(&dir, 1024).unwrap();
    for i in half..series.len() {
        let (t, v) = series.get(i);
        idx.push(t, v).unwrap();
    }
    idx.finish().unwrap();

    let region = QueryRegion::drop(1.0 * HOUR, -1.5);
    let events = oracle::true_events(&series, &region);
    assert!(!events.is_empty());
    let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
    assert_eq!(
        oracle::find_missed_event(&events, &results),
        None,
        "an event was lost across the restart"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exh_reopen_and_resume() {
    let dir = tmpdir("exh-resume");
    let series = walk(400, 5);
    let half = series.len() / 2;
    {
        let mut exh = ExhIndex::create(&dir, 4.0 * HOUR, 512).unwrap();
        for i in 0..half {
            let (t, v) = series.get(i);
            exh.push(t, v).unwrap();
        }
        exh.finish().unwrap();
    }
    let mut exh = ExhIndex::open(&dir, 512).unwrap();
    for i in half..series.len() {
        let (t, v) = series.get(i);
        exh.push(t, v).unwrap();
    }
    exh.finish().unwrap();

    // Exh must remain *exactly* the brute force — including the pairs that
    // straddle the restart, which the persisted window tail provides.
    let region = QueryRegion::drop(1.0 * HOUR, -1.0);
    let want = oracle::true_events(&series, &region);
    let (events, _) = exh.query(&region, QueryPlan::SeqScan).unwrap();
    assert_eq!(events.len(), want.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopen_missing_directory_fails_cleanly() {
    let dir = tmpdir("nope");
    assert!(SegDiffIndex::open(&dir, 128).is_err());
    assert!(ExhIndex::open(&dir, 128).is_err());
}
