//! Exploratory analysis over search results.
//!
//! The paper's motivation is an *exploratory tool* (§1): biologists pose
//! queries with different thresholds and study where and when events
//! occur. This module summarizes result sets the way that exploration
//! needs: events per day, the hour-of-day profile (CAD events cluster in
//! the early morning), the seasonal profile, and depth statistics over
//! refined events.

use crate::refine::RefinedEvent;
use crate::result::SegmentPair;
use sensorgen::{DAY, HOUR};

/// Summary statistics of a result set.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSummary {
    /// Number of result periods.
    pub periods: usize,
    /// Result periods merged into disjoint time intervals (overlapping
    /// pairs describe the same physical episode).
    pub episodes: usize,
    /// Events per day of covered time.
    pub rate_per_day: f64,
    /// Histogram of episode start hour (local, 24 bins).
    pub hour_histogram: [u32; 24],
    /// Histogram of episode start month-of-year (12 bins, month 0 = the
    /// recording origin's month).
    pub month_histogram: [u32; 12],
}

/// Merges overlapping result periods into disjoint episodes, returning
/// `(start, end)` intervals ordered by time.
///
/// A period `((t_d, t_c), (t_b, t_a))` is treated as the interval
/// `[t_d, t_a]` — the paper's result semantics: the event begins somewhere
/// after `t_d` and ends by `t_a`.
pub fn merge_episodes(results: &[SegmentPair]) -> Vec<(f64, f64)> {
    let mut intervals: Vec<(f64, f64)> = results.iter().map(|p| (p.t_d, p.t_a)).collect();
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (s, e) in intervals {
        match out.last_mut() {
            Some((_, last_e)) if s <= *last_e => *last_e = last_e.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Builds an [`EventSummary`] from a result set. `time_span_days` is the
/// covered recording length used for the rate.
pub fn summarize(results: &[SegmentPair], time_span_days: f64) -> EventSummary {
    let episodes = merge_episodes(results);
    let mut hour_histogram = [0u32; 24];
    let mut month_histogram = [0u32; 12];
    for &(start, _) in &episodes {
        let hour = ((start % DAY) / HOUR) as usize % 24;
        hour_histogram[hour] += 1;
        let month = ((start / DAY / 30.44) as usize) % 12;
        month_histogram[month] += 1;
    }
    EventSummary {
        periods: results.len(),
        episodes: episodes.len(),
        rate_per_day: if time_span_days > 0.0 {
            episodes.len() as f64 / time_span_days
        } else {
            0.0
        },
        hour_histogram,
        month_histogram,
    }
}

/// Depth statistics over refined events (drops: the most negative change).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthStats {
    /// Number of events considered.
    pub count: usize,
    /// Mean change.
    pub mean: f64,
    /// Steepest (most extreme) change.
    pub extreme: f64,
    /// Median change.
    pub median: f64,
    /// Mean event duration in seconds.
    pub mean_duration: f64,
}

/// Computes depth statistics over refined events that met the threshold.
pub fn depth_stats(events: &[RefinedEvent]) -> Option<DepthStats> {
    let hits: Vec<&RefinedEvent> = events.iter().filter(|e| e.meets_threshold).collect();
    if hits.is_empty() {
        return None;
    }
    let mut dvs: Vec<f64> = hits.iter().map(|e| e.dv).collect();
    dvs.sort_by(f64::total_cmp);
    let n = dvs.len();
    let mean = dvs.iter().sum::<f64>() / n as f64;
    let extreme = if mean < 0.0 { dvs[0] } else { dvs[n - 1] };
    let mean_duration = hits.iter().map(|e| e.t2 - e.t1).sum::<f64>() / n as f64;
    Some(DepthStats {
        count: n,
        mean,
        extreme,
        median: dvs[n / 2],
        mean_duration,
    })
}

/// Renders a compact ASCII bar chart of a histogram (for CLI/examples).
pub fn ascii_histogram(bins: &[u32], labels: impl Fn(usize) -> String) -> String {
    let max = bins.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (i, &count) in bins.iter().enumerate() {
        let bar = "#".repeat((count as usize * 40).div_ceil(max as usize).min(40));
        out.push_str(&format!("{:>6} |{bar} {count}\n", labels(i)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(td: f64, ta: f64) -> SegmentPair {
        SegmentPair {
            t_d: td,
            t_c: td + 1.0,
            t_b: ta - 1.0,
            t_a: ta,
        }
    }

    #[test]
    fn episodes_merge_overlaps() {
        let results = vec![
            pair(0.0, 100.0),
            pair(50.0, 150.0),
            pair(140.0, 160.0),
            pair(1000.0, 1100.0),
        ];
        let eps = merge_episodes(&results);
        assert_eq!(eps, vec![(0.0, 160.0), (1000.0, 1100.0)]);
    }

    #[test]
    fn summary_counts_and_rate() {
        let results = vec![pair(0.0, 100.0), pair(2.0 * DAY, 2.0 * DAY + 50.0)];
        let s = summarize(&results, 4.0);
        assert_eq!(s.periods, 2);
        assert_eq!(s.episodes, 2);
        assert!((s.rate_per_day - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hour_histogram_buckets_early_morning() {
        // Episodes starting at 04:30 and 05:10 on different days.
        let results = vec![
            pair(4.5 * HOUR, 5.0 * HOUR),
            pair(DAY + 5.16 * HOUR, DAY + 6.0 * HOUR),
        ];
        let s = summarize(&results, 2.0);
        assert_eq!(s.hour_histogram[4], 1);
        assert_eq!(s.hour_histogram[5], 1);
        assert_eq!(s.hour_histogram.iter().sum::<u32>(), 2);
    }

    #[test]
    fn depth_stats_over_refined() {
        use crate::refine::RefinedEvent;
        let mk = |dv: f64, hit: bool| RefinedEvent {
            pair: pair(0.0, 10.0),
            t1: 0.0,
            t2: 600.0,
            dv,
            meets_threshold: hit,
        };
        let events = vec![
            mk(-3.0, true),
            mk(-5.0, true),
            mk(-4.0, true),
            mk(-1.0, false),
        ];
        let d = depth_stats(&events).unwrap();
        assert_eq!(d.count, 3);
        assert!((d.mean + 4.0).abs() < 1e-12);
        assert_eq!(d.extreme, -5.0);
        assert_eq!(d.median, -4.0);
        assert_eq!(d.mean_duration, 600.0);
        assert!(depth_stats(&[mk(-1.0, false)]).is_none());
    }

    #[test]
    fn ascii_histogram_renders() {
        let text = ascii_histogram(&[0, 2, 4], |i| format!("{i:02}h"));
        assert!(text.contains("00h |"));
        assert!(text.lines().count() == 3);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].matches('#').count() > lines[1].matches('#').count());
    }
}
