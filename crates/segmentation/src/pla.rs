//! A continuous piecewise-linear approximation.

use crate::Segment;
use sensorgen::TimeSeries;

/// A chain of contiguous [`Segment`]s: the end of each segment is the start
/// of the next. This is the function `f` of Definition 2.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PiecewiseLinear {
    segments: Vec<Segment>,
}

impl PiecewiseLinear {
    /// Builds a PLA from a chain of segments.
    ///
    /// # Panics
    ///
    /// Panics if consecutive segments are not contiguous (shared endpoint).
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        for w in segments.windows(2) {
            assert_eq!(
                (w[0].t_end, w[0].v_end),
                (w[1].t_start, w[1].v_start),
                "segments must be contiguous"
            );
        }
        Self { segments }
    }

    /// The segments in temporal order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Whether the approximation is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Evaluates `f(t)`, or `None` outside the covered time range.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        if self.segments.is_empty() {
            return None;
        }
        let first = &self.segments[0];
        let last = self.segments.last().unwrap();
        if t < first.t_start || t > last.t_end {
            return None;
        }
        // Binary search for the segment whose extent contains t.
        let i = self.segments.partition_point(|s| s.t_end < t);
        debug_assert!(i < self.segments.len());
        Some(self.segments[i].value_at(t))
    }

    /// Time extent `[start, end]`, or `None` when empty.
    pub fn time_extent(&self) -> Option<(f64, f64)> {
        match (self.segments.first(), self.segments.last()) {
            (Some(f), Some(l)) => Some((f.t_start, l.t_end)),
            _ => None,
        }
    }

    /// The largest `|f(t_i) - v_i|` over all observations of `series` that
    /// fall inside the approximation's extent. This is the quantity bounded
    /// by `ε/2` in Lemma 1.
    pub fn max_abs_error(&self, series: &TimeSeries) -> f64 {
        let mut worst = 0.0f64;
        for (t, v) in series.iter() {
            if let Some(f) = self.value_at(t) {
                worst = worst.max((f - v).abs());
            }
        }
        worst
    }

    /// The paper's compression rate `r`: "the number of observations
    /// represented by one data segment on average" (§5.2).
    pub fn compression_rate(&self, n_observations: usize) -> f64 {
        if self.segments.is_empty() {
            return 0.0;
        }
        n_observations as f64 / self.segments.len() as f64
    }
}

impl FromIterator<Segment> for PiecewiseLinear {
    fn from_iter<I: IntoIterator<Item = Segment>>(iter: I) -> Self {
        Self::from_segments(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pla() -> PiecewiseLinear {
        PiecewiseLinear::from_segments(vec![
            Segment::new(0.0, 0.0, 10.0, 5.0),
            Segment::new(10.0, 5.0, 30.0, 1.0),
        ])
    }

    #[test]
    fn value_at_covers_chain() {
        let p = pla();
        assert_eq!(p.value_at(0.0), Some(0.0));
        assert_eq!(p.value_at(5.0), Some(2.5));
        assert_eq!(p.value_at(10.0), Some(5.0));
        assert_eq!(p.value_at(20.0), Some(3.0));
        assert_eq!(p.value_at(30.0), Some(1.0));
        assert_eq!(p.value_at(-0.1), None);
        assert_eq!(p.value_at(30.1), None);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn rejects_gap() {
        PiecewiseLinear::from_segments(vec![
            Segment::new(0.0, 0.0, 10.0, 5.0),
            Segment::new(11.0, 5.0, 30.0, 1.0),
        ]);
    }

    #[test]
    fn max_abs_error_measures_deviation() {
        let p = pla();
        let series = TimeSeries::from_parts(vec![0.0, 5.0, 10.0, 20.0], vec![0.0, 3.0, 5.0, 2.5]);
        // Deviations: 0, 0.5, 0, 0.5 -> max 0.5.
        assert!((p.max_abs_error(&series) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compression_rate_is_points_per_segment() {
        let p = pla();
        assert_eq!(p.compression_rate(20), 10.0);
        assert_eq!(PiecewiseLinear::default().compression_rate(20), 0.0);
    }

    #[test]
    fn extent_and_counts() {
        let p = pla();
        assert_eq!(p.time_extent(), Some((0.0, 30.0)));
        assert_eq!(p.num_segments(), 2);
        assert!(!p.is_empty());
        assert!(PiecewiseLinear::default().is_empty());
    }
}
