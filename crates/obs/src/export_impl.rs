//! Snapshot exporters.
//!
//! An [`Exporter`] renders a [`MetricsSnapshot`] to a string. Two
//! implementations ship with the crate: [`TextExporter`] for humans and
//! [`JsonLinesExporter`] emitting one JSON object per metric, suitable
//! for piping into log collectors.

use crate::json_impl::Json;
use crate::metrics::MetricsSnapshot;

/// Renders a metrics snapshot to a string.
pub trait Exporter {
    /// Renders `snapshot`.
    fn export(&self, snapshot: &MetricsSnapshot) -> String;
}

/// Human-readable, aligned text output.
#[derive(Debug, Default, Clone, Copy)]
pub struct TextExporter;

impl Exporter for TextExporter {
    fn export(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        if !snapshot.counters.is_empty() {
            out.push_str("counters:\n");
            let width = snapshot.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &snapshot.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !snapshot.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = snapshot.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &snapshot.gauges {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !snapshot.histograms.is_empty() {
            out.push_str("histograms (nanos):\n");
            let width = snapshot
                .histograms
                .keys()
                .map(|k| k.len())
                .max()
                .unwrap_or(0);
            for (name, s) in &snapshot.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count={} min={} p50={} p90={} p99={} p999={} max={}\n",
                    s.count, s.min, s.p50, s.p90, s.p99, s.p999, s.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Line-delimited JSON: one object per metric, stable field order.
/// Every line carries the same `ts` (unix milliseconds at export time)
/// so scrapers can order samples across scrapes; metric names pass
/// through the JSON string writer, so a hostile name (quotes, control
/// characters, non-ASCII) can never break the line format.
///
/// Counters: `{"kind":"counter","name":...,"ts":...,"value":...}`.
/// Gauges: `{"kind":"gauge","name":...,"ts":...,"value":...}`.
/// Histograms: `{"kind":"histogram","name":...,"ts":...,"count":...,
/// "sum":...,"min":...,"p50":...,"p90":...,"p99":...,"p999":...,
/// "max":...}`.
#[derive(Debug, Default, Clone, Copy)]
pub struct JsonLinesExporter {
    /// When set, stamps every line with this timestamp instead of the
    /// current wall clock (deterministic output for tests).
    pub fixed_ts_ms: Option<u64>,
}

impl JsonLinesExporter {
    /// An exporter that stamps lines with `ts_ms` instead of "now".
    pub fn with_ts(ts_ms: u64) -> Self {
        JsonLinesExporter {
            fixed_ts_ms: Some(ts_ms),
        }
    }
}

impl Exporter for JsonLinesExporter {
    fn export(&self, snapshot: &MetricsSnapshot) -> String {
        let ts = self.fixed_ts_ms.unwrap_or_else(crate::unix_ms);
        let mut out = String::new();
        for (name, value) in &snapshot.counters {
            let j = Json::obj([
                ("kind", Json::from("counter")),
                ("name", Json::from(name.as_str())),
                ("ts", Json::from(ts)),
                ("value", Json::from(*value)),
            ]);
            out.push_str(&j.to_string_compact());
            out.push('\n');
        }
        for (name, value) in &snapshot.gauges {
            let j = Json::obj([
                ("kind", Json::from("gauge")),
                ("name", Json::from(name.as_str())),
                ("ts", Json::from(ts)),
                ("value", Json::from(*value)),
            ]);
            out.push_str(&j.to_string_compact());
            out.push('\n');
        }
        for (name, s) in &snapshot.histograms {
            let j = Json::obj([
                ("kind", Json::from("histogram")),
                ("name", Json::from(name.as_str())),
                ("ts", Json::from(ts)),
                ("count", Json::from(s.count)),
                ("sum", Json::from(s.sum)),
                ("min", Json::from(s.min)),
                ("p50", Json::from(s.p50)),
                ("p90", Json::from(s.p90)),
                ("p99", Json::from(s.p99)),
                ("p999", Json::from(s.p999)),
                ("max", Json::from(s.max)),
            ]);
            out.push_str(&j.to_string_compact());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("pool.hits").add(10);
        r.counter("pool.misses").add(3);
        r.histogram("span.query").record(1500);
        r.snapshot()
    }

    #[test]
    fn text_export_includes_gauges_and_tail_quantiles() {
        let r = MetricsRegistry::new();
        r.gauge("server.inflight").set(4);
        r.histogram("span.query").record(1500);
        let text = TextExporter.export(&r.snapshot());
        assert!(text.contains("gauges:"), "{text}");
        assert!(text.contains("server.inflight"), "{text}");
        assert!(text.contains("p999="), "{text}");
        assert!(text.contains("min="), "{text}");
    }

    #[test]
    fn jsonl_stamps_ts_and_exports_gauges() {
        let r = MetricsRegistry::new();
        r.counter("c").inc();
        r.gauge("g").set(-7);
        r.histogram("h").record(100);
        let out = JsonLinesExporter::with_ts(1234).export(&r.snapshot());
        let lines: Vec<Json> = out.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 3);
        for j in &lines {
            assert_eq!(j.get("ts").and_then(Json::as_u64), Some(1234));
        }
        let g = lines
            .iter()
            .find(|j| j.get("kind").and_then(Json::as_str) == Some("gauge"))
            .unwrap();
        assert_eq!(g.get("name").and_then(Json::as_str), Some("g"));
        assert_eq!(g.get("value"), Some(&Json::Int(-7)));
        let h = lines
            .iter()
            .find(|j| j.get("kind").and_then(Json::as_str) == Some("histogram"))
            .unwrap();
        assert_eq!(h.get("p999").and_then(Json::as_u64), Some(100));
        assert_eq!(h.get("min").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn jsonl_escapes_hostile_metric_names() {
        // Nothing in the system generates names like these, but the
        // exporter must not be the thing that breaks if one appears.
        let r = MetricsRegistry::new();
        let hostile = "evil\"name\\with\nnewline\tand\u{1}ctrl";
        r.counter(hostile).add(1);
        let out = JsonLinesExporter::with_ts(1).export(&r.snapshot());
        let lines: Vec<&str> = out.lines().collect();
        // The raw newline must be escaped, not emitted: exactly one line.
        assert_eq!(lines.len(), 1, "{out:?}");
        let j = Json::parse(lines[0]).expect("hostile name still parses");
        assert_eq!(j.get("name").and_then(Json::as_str), Some(hostile));
    }

    #[test]
    fn text_export_lists_everything() {
        let text = TextExporter.export(&sample());
        assert!(text.contains("pool.hits"));
        assert!(text.contains("10"));
        assert!(text.contains("span.query"));
        assert!(text.contains("count=1"));
    }

    #[test]
    fn text_export_empty() {
        let text = TextExporter.export(&MetricsSnapshot::default());
        assert!(text.contains("no metrics"));
    }

    #[test]
    fn jsonl_lines_parse_and_round_trip() {
        let out = JsonLinesExporter::default().export(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let j = Json::parse(line).expect("each line is valid JSON");
            assert!(j.get("kind").is_some());
            assert!(j.get("name").is_some());
        }
        let hits = lines
            .iter()
            .map(|l| Json::parse(l).unwrap())
            .find(|j| j.get("name").and_then(Json::as_str) == Some("pool.hits"))
            .unwrap();
        assert_eq!(hits.get("value").and_then(Json::as_u64), Some(10));
    }
}
