//! Points in feature space.

use std::ops::{Add, Sub};

/// A point in feature space: a time span `dt` and a value change `dv`.
///
/// The feature point of an event `((t', v'), (t'', v''))` with `t'' >= t'`
/// is `(Δt, Δv) = (t'' - t', v'' - v')` (paper §4.2; note the paper writes
/// `Δv_ij = v_i - v_j` with `t_i >= t_j`, i.e. *later minus earlier*).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FeaturePoint {
    /// Time span of the event (non-negative for all stored features).
    pub dt: f64,
    /// Value change over the span (negative for drops).
    pub dv: f64,
}

impl FeaturePoint {
    /// Creates a feature point.
    pub fn new(dt: f64, dv: f64) -> Self {
        Self { dt, dv }
    }

    /// The feature point of the pair *earlier* `(t1, v1)`, *later*
    /// `(t2, v2)`.
    pub fn of_pair(t1: f64, v1: f64, t2: f64, v2: f64) -> Self {
        Self {
            dt: t2 - t1,
            dv: v2 - v1,
        }
    }

    /// This point shifted vertically by `dy` (Lemma 4's ε shift).
    pub fn shifted(&self, dy: f64) -> Self {
        Self {
            dt: self.dt,
            dv: self.dv + dy,
        }
    }

    /// Euclidean distance to another feature point (used in tests).
    pub fn distance(&self, other: &FeaturePoint) -> f64 {
        ((self.dt - other.dt).powi(2) + (self.dv - other.dv).powi(2)).sqrt()
    }
}

impl Add for FeaturePoint {
    type Output = FeaturePoint;
    fn add(self, rhs: FeaturePoint) -> FeaturePoint {
        FeaturePoint::new(self.dt + rhs.dt, self.dv + rhs.dv)
    }
}

impl Sub for FeaturePoint {
    type Output = FeaturePoint;
    fn sub(self, rhs: FeaturePoint) -> FeaturePoint {
        FeaturePoint::new(self.dt - rhs.dt, self.dv - rhs.dv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_pair_is_later_minus_earlier() {
        let p = FeaturePoint::of_pair(10.0, 5.0, 40.0, 2.0);
        assert_eq!(p.dt, 30.0);
        assert_eq!(p.dv, -3.0); // a 3-unit drop
    }

    #[test]
    fn shift_moves_dv_only() {
        let p = FeaturePoint::new(10.0, -2.0).shifted(-0.5);
        assert_eq!(p, FeaturePoint::new(10.0, -2.5));
    }

    #[test]
    fn vector_arithmetic() {
        let a = FeaturePoint::new(1.0, 2.0);
        let b = FeaturePoint::new(0.5, -1.0);
        assert_eq!(a + b, FeaturePoint::new(1.5, 1.0));
        assert_eq!(a - b, FeaturePoint::new(0.5, 3.0));
    }

    #[test]
    fn distance_is_euclidean() {
        let a = FeaturePoint::new(0.0, 0.0);
        let b = FeaturePoint::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
    }
}
