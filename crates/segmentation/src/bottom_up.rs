//! Offline bottom-up segmentation (Keogh et al. 2001, §2.3).

use crate::{PiecewiseLinear, Segment};
use sensorgen::TimeSeries;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bottom-up segmentation with the same max-deviation-from-chord error
/// metric as [`crate::SlidingWindowSegmenter`].
///
/// Starts from the finest approximation (one segment per pair of adjacent
/// observations) and greedily merges the cheapest adjacent pair while the
/// merged chord keeps every covered observation within `ε/2`. Offline only —
/// the whole series must be available — but typically produces fewer
/// segments than the online sliding window for the same tolerance, which is
/// why the ablation experiments include it.
#[derive(Debug, Clone, Copy, Default)]
pub struct BottomUpSegmenter;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Cost(f64);

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A heap entry: (cost, left slot, left stamp, right slot, right stamp).
type MergeCandidate = Reverse<(Cost, usize, u32, usize, u32)>;

impl BottomUpSegmenter {
    /// Segments `series` with user tolerance `ε` (chord bound `ε/2`).
    pub fn segment(&self, series: &TimeSeries, epsilon: f64) -> PiecewiseLinear {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be >= 0"
        );
        let n = series.len();
        if n < 2 {
            return PiecewiseLinear::default();
        }
        let ts = series.times();
        let vs = series.values();
        let max_error = epsilon / 2.0;

        // Segment slots. Slot k initially covers points [k, k+1].
        let m = n - 1;
        let start: Vec<usize> = (0..m).collect();
        let mut end: Vec<usize> = (1..n).collect();
        let mut alive = vec![true; m];
        let mut stamp = vec![0u32; m];
        // Doubly linked list over slots; usize::MAX = none.
        const NONE: usize = usize::MAX;
        let mut prev: Vec<usize> = (0..m).map(|k| if k == 0 { NONE } else { k - 1 }).collect();
        let mut next: Vec<usize> = (0..m)
            .map(|k| if k + 1 == m { NONE } else { k + 1 })
            .collect();

        let merge_cost = |s: usize, e: usize| -> f64 {
            let (t0, v0) = (ts[s], vs[s]);
            let slope = (vs[e] - v0) / (ts[e] - t0);
            let mut worst = 0.0f64;
            for i in (s + 1)..e {
                worst = worst.max((v0 + slope * (ts[i] - t0) - vs[i]).abs());
            }
            worst
        };

        // Min-heap of merge candidates (left slot merged with its successor).
        let mut heap: BinaryHeap<MergeCandidate> = BinaryHeap::new();
        for k in 0..m.saturating_sub(1) {
            let c = merge_cost(start[k], end[k + 1]);
            heap.push(Reverse((Cost(c), k, 0, k + 1, 0)));
        }

        while let Some(Reverse((Cost(c), l, sl, r, sr))) = heap.pop() {
            if c > max_error {
                break; // min-heap: every remaining candidate is costlier
            }
            if !alive[l] || !alive[r] || stamp[l] != sl || stamp[r] != sr || next[l] != r {
                continue; // stale entry
            }
            // Merge r into l.
            end[l] = end[r];
            alive[r] = false;
            next[l] = next[r];
            if next[l] != NONE {
                prev[next[l]] = l;
            }
            stamp[l] += 1;
            if prev[l] != NONE {
                let p = prev[l];
                let c = merge_cost(start[p], end[l]);
                heap.push(Reverse((Cost(c), p, stamp[p], l, stamp[l])));
            }
            if next[l] != NONE {
                let nx = next[l];
                let c = merge_cost(start[l], end[nx]);
                heap.push(Reverse((Cost(c), l, stamp[l], nx, stamp[nx])));
            }
        }

        let mut segs = Vec::new();
        let mut k = 0;
        // Find the first alive slot (slot 0 always stays alive: merges fold
        // the right neighbour into the left slot).
        debug_assert!(alive[k]);
        loop {
            segs.push(Segment::new(
                ts[start[k]],
                vs[start[k]],
                ts[end[k]],
                vs[end[k]],
            ));
            if next[k] == NONE {
                break;
            }
            k = next[k];
        }
        PiecewiseLinear::from_segments(segs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment_series;

    fn noisy_series(n: usize, seed: u64) -> TimeSeries {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let t = i as f64 * 300.0;
                (t, (t / 9000.0).sin() * 5.0 + rng.random::<f64>() * 0.4)
            })
            .collect()
    }

    #[test]
    fn respects_error_bound() {
        let s = noisy_series(1500, 3);
        for &eps in &[0.1, 0.4, 1.0] {
            let pla = BottomUpSegmenter.segment(&s, eps);
            assert!(pla.max_abs_error(&s) <= eps / 2.0 + 1e-9);
        }
    }

    #[test]
    fn straight_line_merges_to_one() {
        let s: TimeSeries = (0..200).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let pla = BottomUpSegmenter.segment(&s, 0.2);
        assert_eq!(pla.num_segments(), 1);
    }

    #[test]
    fn covers_whole_extent_contiguously() {
        let s = noisy_series(700, 5);
        let pla = BottomUpSegmenter.segment(&s, 0.3);
        assert_eq!(
            pla.time_extent(),
            Some((s.start_time().unwrap(), s.end_time().unwrap()))
        );
    }

    #[test]
    fn no_worse_than_sliding_window() {
        let s = noisy_series(2000, 7);
        let bu = BottomUpSegmenter.segment(&s, 0.4).num_segments();
        let sw = segment_series(&s, 0.4).num_segments();
        // Bottom-up is the stronger offline heuristic; allow a little slack.
        assert!(
            bu as f64 <= sw as f64 * 1.2,
            "bottom-up {bu} vs sliding {sw}"
        );
    }

    #[test]
    fn tiny_inputs() {
        let empty = TimeSeries::new();
        assert!(BottomUpSegmenter.segment(&empty, 0.2).is_empty());
        let one: TimeSeries = [(0.0, 1.0)].into_iter().collect();
        assert!(BottomUpSegmenter.segment(&one, 0.2).is_empty());
        let two: TimeSeries = [(0.0, 1.0), (1.0, 2.0)].into_iter().collect();
        assert_eq!(BottomUpSegmenter.segment(&two, 0.2).num_segments(), 1);
    }

    #[test]
    fn zero_epsilon_merges_only_collinear_runs() {
        let s =
            TimeSeries::from_parts(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 1.0, 2.0, 1.0, 0.0]);
        let pla = BottomUpSegmenter.segment(&s, 0.0);
        assert_eq!(pla.num_segments(), 2);
        assert_eq!(pla.max_abs_error(&s), 0.0);
    }
}
