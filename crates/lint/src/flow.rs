//! The shared lexical control-flow walk: one pass over a function body
//! tracking live lock guards and reporting *events* — classified
//! acquisitions, call sites with the current held set, explicit drops —
//! to a [`Sink`]. Rule L3 (in-function lock order), L6 (interprocedural
//! lock order) and L7 (blocking-under-lock) are all sinks over this
//! walk, so they agree on the guard-lifetime model:
//!
//! * an *acquisition site* is a zero-argument `.lock()` / `.read()` /
//!   `.write()` call (the zero-argument requirement filters out
//!   `io::Read::read` and friends, which always take a buffer);
//! * `let g = <acquisition>;` — possibly chained through the
//!   guard-preserving adapters `unwrap` / `expect` / `unwrap_or_else`
//!   (the `std::sync` poisoning idiom) — lives until its enclosing
//!   block closes or `drop(g)` is seen;
//! * any other acquisition (chained into a method, passed to a call,
//!   match/if-let scrutinee) lives until the next `;` at the same brace
//!   depth, over-approximating Rust's temporary lifetime rules.
//!
//! Receiver paths that match a class in `ci/lock-order.toml` carry that
//! class; unmatched acquisitions are still tracked as anonymous guards
//! (they have no rank, but L7 cares that *something* is held).

use crate::config::LockOrder;
use crate::context::FileCtx;
use crate::lexer::TokKind;

/// A lock class resolved from the config, detached from its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassRef {
    /// Class name as declared in `order`.
    pub name: String,
    /// Position in the declared order (lower acquires first).
    pub rank: usize,
    /// Whether distinct instances may nest.
    pub reentrant: bool,
}

/// One live guard.
#[derive(Debug, Clone)]
pub struct Guard {
    /// The declared class, when the receiver path matched one.
    pub class: Option<ClassRef>,
    /// Receiver path of the acquisition (`self.shards[]`).
    pub path: String,
    /// `Some(name)` for `let name = …;` bindings (scope-lived),
    /// `None` for temporaries (statement-lived).
    pub binding: Option<String>,
    /// Brace depth at acquisition (relative to the function body).
    pub depth: usize,
    /// Acquisition line.
    pub line: u32,
}

impl Guard {
    /// `class-name` when classified, the receiver path otherwise.
    pub fn describe(&self) -> &str {
        match &self.class {
            Some(c) => &c.name,
            None => &self.path,
        }
    }
}

/// A source position inside the walked file.
#[derive(Debug, Clone, Copy)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// How a call names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallForm {
    /// `recv.name(…)` — receiver path available.
    Method,
    /// `Prefix::name(…)` — `prefix` is the last path segment before `::`.
    Path,
    /// `name(…)` with no qualifier.
    Bare,
}

/// Observer over one body walk. Default methods ignore everything, so
/// each rule implements only what it needs.
pub trait Sink {
    /// A *classified* acquisition, reported before its guard is pushed
    /// (`held` is the set live at that moment).
    fn acquire(&mut self, _site: Site, _class: &ClassRef, _path: &str, _held: &[Guard]) {}

    /// A call `name(…)`. For [`CallForm::Method`], `qualifier` is the
    /// receiver path (`None` when it is not a simple path); for
    /// [`CallForm::Path`], the `::` prefix segment. Acquisition
    /// primitives (`lock`/`read`/`write`) and `drop` are not reported.
    fn call(
        &mut self,
        _site: Site,
        _name: &str,
        _form: CallForm,
        _qualifier: Option<&str>,
        _held: &[Guard],
    ) {
    }
}

/// Walks every `fn` body in the file. Bodies are found exactly like the
/// original L3 scan: `fn` … first `{` before any `;`.
pub fn walk_file(ctx: &FileCtx, order: &LockOrder, sink: &mut dyn Sink) {
    let toks = &ctx.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text(ctx.src) == "fn" {
            let mut j = i + 1;
            let mut body = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct(b'{') => {
                        body = Some(j);
                        break;
                    }
                    TokKind::Punct(b';') => break,
                    _ => j += 1,
                }
            }
            if let (Some(open), Some(close)) = (body, body.and_then(|b| ctx.close_of(b))) {
                walk_body(ctx, order, open, close, sink);
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Walks one body range (token indices of the `{` … `}`), maintaining
/// the guard set and reporting events.
pub fn walk_body(ctx: &FileCtx, order: &LockOrder, open: usize, close: usize, sink: &mut dyn Sink) {
    let toks = &ctx.toks;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i <= close {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                // Block end drops let-bound guards created inside it
                // (and any temporary that leaked this far).
                guards.retain(|g| g.depth <= depth);
            }
            TokKind::Punct(b';') => {
                // Statement end drops temporaries at this depth.
                guards.retain(|g| g.binding.is_some() || g.depth != depth);
            }
            // drop(name) kills the named guard.
            TokKind::Ident
                if t.text(ctx.src) == "drop"
                    && toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct(b'('))
                    && toks.get(i + 2).map(|n| n.kind) == Some(TokKind::Ident)
                    && toks.get(i + 3).map(|n| n.kind) == Some(TokKind::Punct(b')')) =>
            {
                let name = toks[i + 2].text(ctx.src);
                guards.retain(|g| g.binding.as_deref() != Some(name));
            }
            // Acquisition primitive: zero-argument .lock()/.read()/.write().
            TokKind::Ident
                if matches!(t.text(ctx.src), "lock" | "read" | "write")
                    && i > 0
                    && toks[i - 1].kind == TokKind::Punct(b'.')
                    && toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct(b'('))
                    && toks.get(i + 2).map(|n| n.kind) == Some(TokKind::Punct(b')')) =>
            {
                if let Some(path) = receiver_path(ctx, i - 1) {
                    let site = Site {
                        line: t.line,
                        col: t.col,
                    };
                    let class = order.classify(&ctx.path, &path).map(|c| ClassRef {
                        name: c.name.clone(),
                        rank: c.rank,
                        reentrant: c.reentrant,
                    });
                    if let Some(class) = &class {
                        sink.acquire(site, class, &path, &guards);
                    }
                    guards.push(Guard {
                        class,
                        path,
                        binding: binding_of(ctx, i),
                        depth,
                        line: t.line,
                    });
                }
            }
            // Any other call: `name(`, `recv.name(`, `Prefix::name(`.
            // Keywords that can precede a `(` are not calls.
            TokKind::Ident
                if toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct(b'('))
                    && !matches!(
                        t.text(ctx.src),
                        "if" | "while"
                            | "match"
                            | "for"
                            | "return"
                            | "in"
                            | "loop"
                            | "let"
                            | "move"
                            | "else"
                            | "fn"
                    ) =>
            {
                let name = t.text(ctx.src);
                let site = Site {
                    line: t.line,
                    col: t.col,
                };
                let (form, qualifier) = if i > 0 && toks[i - 1].kind == TokKind::Punct(b'.') {
                    (CallForm::Method, receiver_path(ctx, i - 1))
                } else if i >= 2
                    && toks[i - 1].kind == TokKind::Punct(b':')
                    && toks[i - 2].kind == TokKind::Punct(b':')
                {
                    let prefix = toks
                        .get(i.wrapping_sub(3))
                        .filter(|p| p.kind == TokKind::Ident)
                        .map(|p| p.text(ctx.src).to_string());
                    (CallForm::Path, prefix)
                } else {
                    (CallForm::Bare, None)
                };
                sink.call(site, name, form, qualifier.as_deref(), &guards);
            }
            _ => {}
        }
        i += 1;
    }
}

/// Reconstructs the receiver path left of the `.` at token `dot`:
/// identifiers and field accesses, with index expressions collapsed to
/// `[]`. Returns `None` when the receiver is not a simple path (e.g. a
/// call result).
pub fn receiver_path(ctx: &FileCtx, dot: usize) -> Option<String> {
    let toks = &ctx.toks;
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot; // points at the `.`
    loop {
        if i == 0 {
            break;
        }
        let prev = &toks[i - 1];
        match prev.kind {
            TokKind::Ident => {
                parts.push(prev.text(ctx.src).to_string());
                i -= 1;
                // A further `.` continues the path.
                if i > 0 && toks[i - 1].kind == TokKind::Punct(b'.') {
                    i -= 1;
                    continue;
                }
                break;
            }
            TokKind::Punct(b']') => {
                // Collapse the index expression: scan back to the
                // matching `[`.
                let mut depth = 1usize;
                let mut j = i - 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match toks[j].kind {
                        TokKind::Punct(b']') => depth += 1,
                        TokKind::Punct(b'[') => depth -= 1,
                        _ => {}
                    }
                }
                if depth != 0 {
                    return None;
                }
                parts.push("[]".to_string());
                i = j;
            }
            _ => break,
        }
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    // Join, attaching `[]` to the preceding segment.
    let mut path = String::new();
    for p in parts {
        if p == "[]" {
            path.push_str("[]");
        } else {
            if !path.is_empty() {
                path.push('.');
            }
            path.push_str(&p);
        }
    }
    Some(path)
}

/// `Some(name)` when the acquisition at token `i` (the `lock` ident) is
/// the right-hand side of a `let name = …;` statement, allowing a chain
/// of guard-preserving adapters (`unwrap`, `expect`, `unwrap_or_else`)
/// between the `()` and the `;` — the `std::sync` poisoning idiom
/// `let g = m.lock().unwrap_or_else(|e| e.into_inner());` binds a
/// guard. Any other chaining (`.len()`, `.clone()`, …) makes the guard
/// a statement-lived temporary.
fn binding_of(ctx: &FileCtx, i: usize) -> Option<String> {
    let toks = &ctx.toks;
    // Walk the chain after `lock ( )`.
    let mut j = i + 3;
    loop {
        match toks.get(j).map(|t| t.kind) {
            Some(TokKind::Punct(b';')) => break,
            Some(TokKind::Punct(b'.')) => {
                let adapter = toks.get(j + 1)?;
                if adapter.kind != TokKind::Ident
                    || !matches!(
                        adapter.text(ctx.src),
                        "unwrap" | "expect" | "unwrap_or_else"
                    )
                    || toks.get(j + 2).map(|t| t.kind) != Some(TokKind::Punct(b'('))
                {
                    return None;
                }
                // Skip the adapter's balanced argument list.
                let mut depth = 0usize;
                let mut k = j + 2;
                loop {
                    match toks.get(k).map(|t| t.kind) {
                        Some(TokKind::Punct(b'(')) => depth += 1,
                        Some(TokKind::Punct(b')')) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        None => return None,
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
            }
            _ => return None,
        }
    }
    // Scan back to the statement start: the nearest `;`, `{` or `}`.
    let mut j = i;
    while j > 0
        && !matches!(
            toks[j - 1].kind,
            TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}')
        )
    {
        j -= 1;
    }
    // Expect `let [mut] name =`.
    if toks.get(j).map(|t| (t.kind, t.text(ctx.src))) != Some((TokKind::Ident, "let")) {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k).map(|t| (t.kind, t.text(ctx.src))) == Some((TokKind::Ident, "mut")) {
        k += 1;
    }
    let name = toks.get(k)?;
    if name.kind == TokKind::Ident && toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Punct(b'='))
    {
        Some(name.text(ctx.src).to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LockOrder;

    const ORDER: &str = r#"
order = ["files", "shard"]

[[class]]
name = "files"
paths = ["*.files"]

[[class]]
name = "shard"
paths = ["*.shards[]"]
"#;

    #[derive(Default)]
    struct Trace {
        acquires: Vec<(String, usize)>,
        calls: Vec<(String, usize, Vec<String>)>,
    }

    impl Sink for Trace {
        fn acquire(&mut self, _site: Site, class: &ClassRef, _path: &str, held: &[Guard]) {
            self.acquires.push((class.name.clone(), held.len()));
        }
        fn call(
            &mut self,
            _site: Site,
            name: &str,
            _form: CallForm,
            _qualifier: Option<&str>,
            held: &[Guard],
        ) {
            self.calls.push((
                name.to_string(),
                held.len(),
                held.iter().map(|g| g.describe().to_string()).collect(),
            ));
        }
    }

    fn walk(src: &str) -> Trace {
        let order = LockOrder::parse(ORDER).unwrap();
        let ctx = FileCtx::new("crates/pagestore/src/buffer.rs", src);
        let mut t = Trace::default();
        walk_file(&ctx, &order, &mut t);
        t
    }

    #[test]
    fn calls_see_held_guards() {
        let src = r#"
fn f(&self) {
    let files = self.files.read();
    self.helper(1);
    drop(files);
    self.other();
}
"#;
        let t = walk(src);
        assert_eq!(t.calls.len(), 2);
        assert_eq!(t.calls[0], ("helper".into(), 1, vec!["files".into()]));
        assert_eq!(t.calls[1], ("other".into(), 0, vec![]));
    }

    #[test]
    fn poison_adapter_chain_still_binds() {
        // std::sync idiom: the unwrap_or_else chain preserves the guard.
        let src = "fn f(&self) {\n let g = self.files.read().unwrap_or_else(|e| e.into_inner());\n self.helper();\n}\n";
        let t = walk(src);
        assert_eq!(t.calls.last().unwrap().1, 1, "guard must outlive the `;`");
        // A non-adapter chain is a temporary: dead before the call.
        let src = "fn f(&self) {\n let n = self.files.read().len();\n self.helper();\n}\n";
        let t = walk(src);
        assert_eq!(t.calls.last().unwrap().1, 0);
    }

    #[test]
    fn unclassified_guards_are_anonymous_but_held() {
        let src = "fn f(&self) {\n let g = self.registry.lock();\n self.helper();\n}\n";
        let t = walk(src);
        assert_eq!(t.calls[0].2, vec!["self.registry".to_string()]);
    }

    #[test]
    fn acquire_events_fire_for_classified_only() {
        let src = "fn f(&self) {\n let a = self.files.read();\n let b = self.shards[i].lock();\n let c = self.misc.lock();\n}\n";
        let t = walk(src);
        assert_eq!(
            t.acquires,
            vec![("files".to_string(), 0), ("shard".to_string(), 1)]
        );
    }
}
