//! Append-only heap files of fixed-width `f64` rows.

use crate::buffer::BufferPool;
use crate::error::Result;
use crate::page::{self, PageBuf};
use crate::pagefile::FileId;
use crate::zonemap::ZoneMap;
use crate::{StoreError, PAGE_SIZE};
use std::sync::Arc;

/// Identifies a row: the data page number in the high bits, the slot within
/// the page in the low 16 bits.
pub type RowId = u64;

const MAGIC: u32 = 0x5344_4850; // "SDHP"
const PAGE_HDR: usize = 8; // u16 row count + padding
const META_PAGE: u32 = 0;

#[inline]
fn rid(page: u32, slot: u16) -> RowId {
    ((page as u64) << 16) | slot as u64
}

#[inline]
fn rid_parts(r: RowId) -> (u32, u16) {
    ((r >> 16) as u32, (r & 0xFFFF) as u16)
}

/// An append-only table file of rows with a fixed number of `f64` columns.
///
/// Page 0 holds metadata (magic, column count, row count); data pages
/// follow. All I/O goes through the shared [`BufferPool`].
pub struct HeapFile {
    pool: Arc<BufferPool>,
    fid: FileId,
    ncols: usize,
    rows_per_page: usize,
    nrows: u64,
    /// Last data page and its row count, for O(1) appends.
    tail: Option<(u32, u16)>,
    /// Per-page min/max column summaries, when available. Maintained
    /// incrementally on insert; `None` after opening a heap whose sidecar
    /// was missing or stale (rebuild with [`HeapFile::rebuild_zones`]).
    zones: Option<ZoneMap>,
}

/// Page-skip accounting returned by [`HeapFile::scan_blocks`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneScanStats {
    /// Data pages whose rows were decoded and visited.
    pub pages_scanned: u64,
    /// Data pages skipped because their zone failed the filter.
    pub pages_pruned: u64,
}

impl HeapFile {
    /// Creates an empty heap in the (already registered, freshly created)
    /// file `fid`.
    pub fn create(pool: Arc<BufferPool>, fid: FileId, ncols: usize) -> Result<Self> {
        assert!(
            ncols > 0 && ncols * 8 <= PAGE_SIZE - PAGE_HDR,
            "bad column count"
        );
        let meta = pool.allocate_page(fid)?;
        debug_assert_eq!(meta, META_PAGE);
        let h = Self {
            pool,
            fid,
            ncols,
            rows_per_page: (PAGE_SIZE - PAGE_HDR) / (ncols * 8),
            nrows: 0,
            tail: None,
            zones: Some(ZoneMap::new(ncols)),
        };
        h.write_meta()?;
        Ok(h)
    }

    /// Opens an existing heap in file `fid`.
    pub fn open(pool: Arc<BufferPool>, fid: FileId) -> Result<Self> {
        let (magic, ncols, nrows) = pool.with_page(fid, META_PAGE, |b| {
            (
                page::get_u32(b, 0),
                page::get_u16(b, 4) as usize,
                page::get_u64(b, 8),
            )
        })?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt("heap file has bad magic".into()));
        }
        let rows_per_page = (PAGE_SIZE - PAGE_HDR) / (ncols * 8);
        let tail = if nrows == 0 {
            None
        } else {
            let full_pages = (nrows as usize) / rows_per_page;
            let rem = (nrows as usize) % rows_per_page;
            if rem == 0 {
                Some((full_pages as u32, rows_per_page as u16))
            } else {
                Some((full_pages as u32 + 1, rem as u16))
            }
        };
        let zones = ZoneMap::load(&pool.file_path(fid), ncols, nrows);
        Ok(Self {
            pool,
            fid,
            ncols,
            rows_per_page,
            nrows,
            tail,
            zones,
        })
    }

    fn write_meta(&self) -> Result<()> {
        self.pool.with_page_mut(self.fid, META_PAGE, |b| {
            page::put_u32(b, 0, MAGIC);
            page::put_u16(b, 4, self.ncols as u16);
            page::put_u64(b, 8, self.nrows);
        })
    }

    /// Persists the row count to the meta page, and the zone-map sidecar
    /// when one is maintained.
    pub fn sync_meta(&self) -> Result<()> {
        self.write_meta()?;
        if let Some(z) = &self.zones {
            z.save(&self.pool.file_path(self.fid))?;
        }
        Ok(())
    }

    /// Number of columns per row.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u64 {
        self.nrows
    }

    /// Bytes used on disk (meta page included).
    pub fn size_bytes(&self) -> u64 {
        self.pool.file_size_bytes(self.fid)
    }

    /// Bytes of raw row payload (rows x columns x 8).
    pub fn payload_bytes(&self) -> u64 {
        self.nrows * self.ncols as u64 * 8
    }

    /// Appends a row; returns its [`RowId`].
    ///
    /// Rows are kept physically contiguous: a new page is always the one
    /// right after the logical tail, even when a crash left the file
    /// extended further (pages allocated whose rows never became durable).
    /// WAL recovery's logical truncation and the scan order both rely on
    /// page `p` holding exactly rows `(p-1)*rows_per_page..`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != ncols`.
    pub fn insert(&mut self, row: &[f64]) -> Result<RowId> {
        assert_eq!(row.len(), self.ncols, "row arity mismatch");
        let (pid, slot) = match self.tail {
            Some((pid, n)) if (n as usize) < self.rows_per_page => (pid, n),
            _ => {
                let next = self.tail.map_or(1, |(pid, _)| pid + 1);
                let pid = if next < self.pool.file_pages(self.fid) {
                    next // reuse a leftover page from an interrupted extension
                } else {
                    self.pool.allocate_page(self.fid)?
                };
                (pid, 0)
            }
        };
        let off = PAGE_HDR + slot as usize * self.ncols * 8;
        self.pool.with_page_mut(self.fid, pid, |b| {
            if slot == 0 {
                // First row of the page: clear any stale bytes a reused
                // leftover page may carry.
                *b = [0u8; PAGE_SIZE];
            }
            for (i, &v) in row.iter().enumerate() {
                page::put_f64(b, off + i * 8, v);
            }
            page::put_u16(b, 0, slot + 1);
        })?;
        self.tail = Some((pid, slot + 1));
        self.nrows += 1;
        if let Some(z) = &mut self.zones {
            z.observe(pid, row);
        }
        Ok(rid(pid, slot))
    }

    /// Reads the row `r` into `out` (resized to the column count).
    pub fn fetch(&self, r: RowId, out: &mut Vec<f64>) -> Result<()> {
        let (pid, slot) = rid_parts(r);
        out.resize(self.ncols, 0.0);
        let off = PAGE_HDR + slot as usize * self.ncols * 8;
        self.pool.with_page(self.fid, pid, |b| {
            let n = page::get_u16(b, 0);
            if slot >= n {
                return Err(StoreError::Corrupt(format!(
                    "row {r:#x}: slot {slot} >= page rows {n}"
                )));
            }
            for (i, o) in out.iter_mut().enumerate() {
                *o = page::get_f64(b, off + i * 8);
            }
            Ok(())
        })?
    }

    /// Scans all rows in storage order. The visitor receives the row id and
    /// the decoded columns; returning `false` stops the scan early.
    ///
    /// Pages are copied out of the pool before decoding, so the visitor may
    /// freely access other tables.
    pub fn scan(&self, mut visit: impl FnMut(RowId, &[f64]) -> bool) -> Result<()> {
        let npages = self.pool.file_pages(self.fid);
        let mut buf = PageBuf::zeroed();
        let mut row = vec![0.0f64; self.ncols];
        for pid in 1..npages {
            self.pool.read_page_into(self.fid, pid, &mut buf)?;
            let b = buf.bytes();
            let n = page::get_u16(b, 0) as usize;
            let mut off = PAGE_HDR;
            for slot in 0..n {
                for (i, r) in row.iter_mut().enumerate() {
                    *r = page::get_f64(b, off + i * 8);
                }
                if !visit(rid(pid, slot as u16), &row) {
                    return Ok(());
                }
                off += self.ncols * 8;
            }
        }
        Ok(())
    }

    /// Whether a zone map is currently maintained.
    pub fn has_zones(&self) -> bool {
        self.zones.is_some()
    }

    /// Rebuilds the zone map from a full scan (idempotent; a heap that
    /// already maintains one is left untouched). Needed after opening a
    /// heap whose sidecar was missing or stale — e.g. created before zone
    /// maps existed, or truncated by WAL recovery.
    pub fn rebuild_zones(&mut self) -> Result<()> {
        if self.zones.is_some() {
            return Ok(());
        }
        obs::global().counter("zonemap.builds").inc();
        let mut z = ZoneMap::new(self.ncols);
        let npages = self.pool.file_pages(self.fid);
        let mut buf = PageBuf::zeroed();
        let mut row = vec![0.0f64; self.ncols];
        let mut remaining = self.nrows;
        'pages: for pid in 1..npages {
            self.pool.read_page_into(self.fid, pid, &mut buf)?;
            let b = buf.bytes();
            let n = page::get_u16(b, 0) as usize;
            let mut off = PAGE_HDR;
            for _slot in 0..n {
                if remaining == 0 {
                    break 'pages;
                }
                for (i, r) in row.iter_mut().enumerate() {
                    *r = page::get_f64(b, off + i * 8);
                }
                z.observe(pid, &row);
                remaining -= 1;
                off += self.ncols * 8;
            }
        }
        self.zones = Some(z);
        Ok(())
    }

    /// Drops the zone map and deletes its sidecar, forcing subsequent
    /// scans down the unpruned path (used by tests and ablations).
    pub fn drop_zones(&mut self) {
        self.zones = None;
        std::fs::remove_file(ZoneMap::sidecar_path(&self.pool.file_path(self.fid))).ok();
    }

    /// Scans rows a page at a time, skipping pages whose zone summary
    /// fails `filter` (called with the page's per-column `(mins, maxs)`;
    /// pages without zone coverage are always visited). The visitor
    /// receives the page's rows as one row-major block of
    /// `n * ncols` decoded columns; returning `false` stops the scan.
    ///
    /// Skipped pages are counted into `zonemap.pages_pruned` and the
    /// returned [`ZoneScanStats`]. The filter must be *conservative* —
    /// return `true` whenever any row in the bounds could match — for
    /// pruning to be lossless.
    pub fn scan_blocks(
        &self,
        mut filter: impl FnMut(&[f64], &[f64]) -> bool,
        mut visit: impl FnMut(&[f64], usize) -> bool,
    ) -> Result<ZoneScanStats> {
        let npages = self.pool.file_pages(self.fid);
        let mut buf = PageBuf::zeroed();
        let mut block = Vec::new();
        let mut stats = ZoneScanStats::default();
        for pid in 1..npages {
            if let Some((mins, maxs)) = self.zones.as_ref().and_then(|z| z.page_bounds(pid)) {
                if !filter(mins, maxs) {
                    stats.pages_pruned += 1;
                    continue;
                }
            }
            stats.pages_scanned += 1;
            self.pool.read_page_into(self.fid, pid, &mut buf)?;
            let b = buf.bytes();
            let n = page::get_u16(b, 0) as usize;
            block.clear();
            block.reserve(n * self.ncols);
            let mut off = PAGE_HDR;
            for _ in 0..n * self.ncols {
                block.push(page::get_f64(b, off));
                off += 8;
            }
            if !visit(&block, n) {
                break;
            }
        }
        if stats.pages_pruned > 0 {
            obs::global()
                .counter("zonemap.pages_pruned")
                .add(stats.pages_pruned);
        }
        Ok(stats)
    }

    /// Fetches many rows with one page read per distinct page. `rids`
    /// must be sorted (ascending row id — which is page-major order);
    /// consecutive ids on the same page decode from a single buffered
    /// page copy. The visitor receives each row id with its decoded
    /// columns.
    ///
    /// # Panics
    ///
    /// Debug-asserts the ids are sorted.
    pub fn fetch_many(
        &self,
        rids: &[RowId],
        mut visit: impl FnMut(RowId, &[f64]) -> bool,
    ) -> Result<()> {
        debug_assert!(rids.windows(2).all(|w| w[0] <= w[1]), "rids must be sorted");
        let mut buf = PageBuf::zeroed();
        let mut row = vec![0.0f64; self.ncols];
        let mut loaded: Option<u32> = None;
        for &r in rids {
            let (pid, slot) = rid_parts(r);
            if loaded != Some(pid) {
                self.pool.read_page_into(self.fid, pid, &mut buf)?;
                loaded = Some(pid);
            }
            let b = buf.bytes();
            let n = page::get_u16(b, 0);
            if slot >= n {
                return Err(StoreError::Corrupt(format!(
                    "row {r:#x}: slot {slot} >= page rows {n}"
                )));
            }
            let off = PAGE_HDR + slot as usize * self.ncols * 8;
            for (i, o) in row.iter_mut().enumerate() {
                *o = page::get_f64(b, off + i * 8);
            }
            if !visit(r, &row) {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagefile::PageFile;
    use std::path::PathBuf;

    fn setup(name: &str, ncols: usize) -> (Arc<BufferPool>, HeapFile, PathBuf) {
        let p = std::env::temp_dir().join(format!("pagestore-heap-{}-{name}", std::process::id()));
        let pool = Arc::new(BufferPool::new(64));
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        let heap = HeapFile::create(pool.clone(), fid, ncols).unwrap();
        (pool, heap, p)
    }

    #[test]
    fn insert_fetch_roundtrip() {
        let (_pool, mut h, p) = setup("roundtrip", 3);
        let r1 = h.insert(&[1.0, 2.0, 3.0]).unwrap();
        let r2 = h.insert(&[-4.0, 5.5, 0.0]).unwrap();
        let mut out = Vec::new();
        h.fetch(r1, &mut out).unwrap();
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
        h.fetch(r2, &mut out).unwrap();
        assert_eq!(out, vec![-4.0, 5.5, 0.0]);
        assert_eq!(h.num_rows(), 2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn scan_visits_all_rows_in_order() {
        let (_pool, mut h, p) = setup("scan", 2);
        let n = 5000; // spans many pages
        for i in 0..n {
            h.insert(&[i as f64, -(i as f64)]).unwrap();
        }
        let mut count = 0usize;
        h.scan(|_rid, row| {
            assert_eq!(row[0], count as f64);
            assert_eq!(row[1], -(count as f64));
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, n);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn scan_early_exit() {
        let (_pool, mut h, p) = setup("early", 1);
        for i in 0..100 {
            h.insert(&[i as f64]).unwrap();
        }
        let mut seen = 0;
        h.scan(|_, _| {
            seen += 1;
            seen < 10
        })
        .unwrap();
        assert_eq!(seen, 10);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn reopen_preserves_rows() {
        let p = std::env::temp_dir().join(format!("pagestore-heap-{}-reopen", std::process::id()));
        {
            let pool = Arc::new(BufferPool::new(64));
            let fid = pool.register_file(PageFile::create(&p).unwrap());
            let mut h = HeapFile::create(pool.clone(), fid, 2).unwrap();
            for i in 0..1000 {
                h.insert(&[i as f64, 2.0 * i as f64]).unwrap();
            }
            h.sync_meta().unwrap();
            pool.flush_all().unwrap();
        }
        let pool = Arc::new(BufferPool::new(64));
        let fid = pool.register_file(PageFile::open(&p).unwrap());
        let mut h = HeapFile::open(pool, fid).unwrap();
        assert_eq!(h.num_rows(), 1000);
        // Appends continue where the tail left off.
        h.insert(&[1000.0, 2000.0]).unwrap();
        let mut count = 0;
        h.scan(|_, row| {
            assert_eq!(row[1], 2.0 * row[0]);
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 1001);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn reopen_with_leftover_pages_appends_contiguously() {
        // A crash can leave the file extended past the logical tail:
        // pages were allocated (and one even dirtied) but the rows they
        // held never became durable. Reopening must append into those
        // leftover pages — zeroed — so rows stay physically contiguous;
        // WAL recovery's logical truncation would otherwise chop off
        // rows that ended up past a gap of empty pages.
        let p = std::env::temp_dir().join(format!("pagestore-heap-{}-gap", std::process::id()));
        std::fs::remove_file(&p).ok();
        {
            let pool = Arc::new(BufferPool::new(64));
            let fid = pool.register_file(PageFile::create(&p).unwrap());
            let mut h = HeapFile::create(pool.clone(), fid, 1).unwrap();
            for i in 0..511 {
                h.insert(&[i as f64]).unwrap(); // fills data page 1 exactly
            }
            h.sync_meta().unwrap();
            // Crash remnant: two more pages allocated, one full of stale
            // bytes, with no surviving rows (meta still says 511).
            let g1 = pool.allocate_page(fid).unwrap();
            pool.allocate_page(fid).unwrap();
            pool.with_page_mut(fid, g1, |b| b.fill(0xAB)).unwrap();
            pool.flush_all().unwrap();
        }
        let pool = Arc::new(BufferPool::new(64));
        let fid = pool.register_file(PageFile::open(&p).unwrap());
        let mut h = HeapFile::open(pool.clone(), fid).unwrap();
        assert_eq!(h.num_rows(), 511);
        let r = h.insert(&[511.0]).unwrap();
        assert_eq!(r >> 16, 2, "insert must reuse the first leftover page");
        assert_eq!(pool.file_pages(fid), 4, "no page appended past the gap");
        let stale = pool
            .with_page(fid, 2, |b| b[PAGE_HDR + 8..].iter().any(|&x| x != 0))
            .unwrap();
        assert!(!stale, "reused page must be zeroed beyond its rows");
        let mut seen = 0u64;
        h.scan(|_, row| {
            assert_eq!(row[0], seen as f64);
            seen += 1;
            true
        })
        .unwrap();
        assert_eq!(seen, 512);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn payload_and_disk_sizes() {
        let (_pool, mut h, p) = setup("sizes", 4);
        for _ in 0..100 {
            h.insert(&[0.0; 4]).unwrap();
        }
        assert_eq!(h.payload_bytes(), 100 * 4 * 8);
        assert!(h.size_bytes() >= h.payload_bytes());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let (_pool, mut h, _p) = setup("arity", 2);
        let _ = h.insert(&[1.0]);
    }

    #[test]
    fn rid_packing_roundtrip() {
        for &(p, s) in &[(0u32, 0u16), (1, 0), (77, 511), (u32::MAX, u16::MAX)] {
            assert_eq!(rid_parts(rid(p, s)), (p, s));
        }
    }
}
