//! Consistent-hash ring mapping sensor ids onto shards.
//!
//! The ring is a pure function of the shard count: every party that
//! knows `num_shards` — the `segdiff cluster` launcher partitioning a
//! transect into per-shard stores, the router scattering queries, a
//! test checking placement — computes the identical assignment with no
//! coordination and no persisted ring state. Each shard contributes
//! [`VNODES_PER_SHARD`] virtual points hashed from a stable label; a
//! sensor id hashes to a point on the circle and belongs to the first
//! shard point at or after it (wrapping), the textbook consistent-hash
//! construction. Virtual nodes keep the per-shard load within a few
//! percent of even, and adding a shard moves only the sensors whose arc
//! the new points claim.

/// Virtual points each shard places on the ring. 64 keeps the maximum
/// over-assignment under ~10% for small clusters while the ring stays
/// tiny (a 16-shard ring is 1024 points).
pub const VNODES_PER_SHARD: usize = 64;

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty uniform for ring
/// placement (we need spread, not adversarial collision resistance).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// splitmix64 finalizer. FNV-1a alone avalanches poorly on short,
/// sequential inputs (consecutive 4-byte sensor ids land on clustered
/// points and skew the arcs badly); one multiply-xorshift round after
/// it restores uniform spread.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A point on the ring circle for an arbitrary label.
fn point(bytes: &[u8]) -> u64 {
    mix64(fnv1a(bytes))
}

/// The sorted ring of `(point, shard)` pairs.
#[derive(Debug, Clone)]
pub struct Ring {
    points: Vec<(u64, u32)>,
    num_shards: usize,
}

impl Ring {
    /// Builds the canonical ring for `num_shards` shards (ids
    /// `0..num_shards`).
    pub fn new(num_shards: usize) -> Ring {
        let mut points = Vec::with_capacity(num_shards * VNODES_PER_SHARD);
        for shard in 0..num_shards {
            for vnode in 0..VNODES_PER_SHARD {
                let label = format!("shard-{shard}-vnode-{vnode}");
                points.push((point(label.as_bytes()), shard as u32));
            }
        }
        // Ties broken by shard id so the assignment stays deterministic
        // even in the astronomically unlikely 64-bit collision.
        points.sort_unstable();
        Ring { points, num_shards }
    }

    /// Number of shards this ring distributes over.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `sensor`: clockwise successor of the sensor's
    /// hash point.
    pub fn shard_for(&self, sensor: u32) -> u32 {
        let h = point(&sensor.to_le_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[idx % self.points.len()].1
    }

    /// Partitions `sensors` into one bucket per shard (buckets keep the
    /// input order; callers pass sorted ids and get sorted buckets).
    pub fn partition(&self, sensors: &[u32]) -> Vec<Vec<u32>> {
        let mut buckets = vec![Vec::new(); self.num_shards];
        for &sensor in sensors {
            buckets[self.shard_for(sensor) as usize].push(sensor);
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic() {
        let a = Ring::new(4);
        let b = Ring::new(4);
        for sensor in 0..500 {
            assert_eq!(a.shard_for(sensor), b.shard_for(sensor));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new(1);
        for sensor in 0..100 {
            assert_eq!(ring.shard_for(sensor), 0);
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let ring = Ring::new(4);
        let sensors: Vec<u32> = (0..1000).collect();
        let buckets = ring.partition(&sensors);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 1000);
        for (shard, bucket) in buckets.iter().enumerate() {
            // Perfectly even would be 250; vnodes keep it in the same
            // ballpark. The exact split is pinned by determinism anyway.
            assert!(
                (100..500).contains(&bucket.len()),
                "shard {shard} got {} of 1000 sensors",
                bucket.len()
            );
            assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "buckets stay sorted"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_a_minority() {
        let four = Ring::new(4);
        let five = Ring::new(5);
        let moved = (0u32..1000)
            .filter(|&s| {
                let old = four.shard_for(s);
                let new = five.shard_for(s);
                new != old && new != 4
            })
            .count();
        // Consistent hashing: sensors either stay put or move to the
        // new shard; cross-moves between surviving shards are rare.
        assert!(
            moved < 100,
            "{moved} of 1000 sensors changed surviving shards"
        );
    }
}
