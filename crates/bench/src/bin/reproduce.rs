//! Regenerates the paper's tables and figures on the synthetic workload.
//!
//! ```sh
//! cargo run --release -p segdiff-bench --bin reproduce -- all
//! cargo run --release -p segdiff-bench --bin reproduce -- table3 table5
//! cargo run --release -p segdiff-bench --bin reproduce -- all --days 60 --out report.md
//! ```
//!
//! Experiments: `table3 table4 table5 table6 table7 fig7_11 fig12_13
//! fig14_15 fig16_24 serving durability scaling all`, plus `bigcorpus`
//! (larger-than-RAM columnar smoke; runs only when named explicitly,
//! never under `all`). Flags: `--days N` (subset size), `--full-days N`
//! (scalability run), `--queries N` (random-query count), `--repeats N`,
//! `--tiny` (smoke-test scale), `--out PATH` (write markdown). The
//! `scaling` experiment also honours `--record-baseline` (write
//! `BENCH_query.json`), `--baseline PATH` (compare against a recorded
//! file, default `BENCH_query.json`) and `--guard PATH` (fail when the
//! index-plan p99 exceeds the guard's `max_p99_ms`, mirroring
//! `loadgen --guard`). `bigcorpus` shares `--guard` and adds
//! `--metrics-out PATH` (write the run's counter delta as a JSON
//! artifact; CI asserts `zonemap.extents_pruned > 0` from it).

use segdiff_bench::experiments::{self, EpsSweep, RandomQueryPoint, ScalePoint, WPoint};
use segdiff_bench::harness::with_registry_delta;
use segdiff_bench::{Report, Scale};
use std::collections::BTreeSet;
use std::path::PathBuf;

struct Args {
    experiments: BTreeSet<String>,
    scale: Scale,
    queries: usize,
    out: Option<PathBuf>,
    baseline: PathBuf,
    record_baseline: bool,
    guard: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

const KNOWN: [&str; 14] = [
    "all",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig7_11",
    "fig12_13",
    "fig14_15",
    "fig16_24",
    "serving",
    "durability",
    "scaling",
    "bigcorpus",
];

fn parse_args() -> Args {
    let mut args = Args {
        experiments: BTreeSet::new(),
        scale: Scale::default(),
        queries: 30,
        out: None,
        baseline: PathBuf::from("BENCH_query.json"),
        record_baseline: false,
        guard: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--days" => {
                args.scale.subset_days = it.next().and_then(|v| v.parse().ok()).expect("--days N")
            }
            "--full-days" => {
                args.scale.full_days = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--full-days N")
            }
            "--repeats" => {
                args.scale.repeats = it.next().and_then(|v| v.parse().ok()).expect("--repeats N")
            }
            "--queries" => {
                args.queries = it.next().and_then(|v| v.parse().ok()).expect("--queries N")
            }
            "--tiny" => args.scale = Scale::tiny(),
            "--out" => args.out = Some(PathBuf::from(it.next().expect("--out PATH"))),
            "--baseline" => args.baseline = PathBuf::from(it.next().expect("--baseline PATH")),
            "--record-baseline" => args.record_baseline = true,
            "--guard" => args.guard = Some(PathBuf::from(it.next().expect("--guard PATH"))),
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(it.next().expect("--metrics-out PATH")))
            }
            name if !name.starts_with('-') => {
                if !KNOWN.contains(&name) {
                    eprintln!("unknown experiment {name}; known: {KNOWN:?}");
                    std::process::exit(2);
                }
                args.experiments.insert(name.to_string());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.experiments.is_empty() {
        args.experiments.insert("all".to_string());
    }
    args
}

fn main() {
    let args = parse_args();
    let want = |name: &str| -> bool {
        args.experiments.contains("all") || args.experiments.contains(name)
    };
    let mut report = Report::new();
    report.para(&format!(
        "# SegDiff reproduction run\n\nsubset: {} days, full: {} days, repeats: {}, seed: {}",
        args.scale.subset_days, args.scale.full_days, args.scale.repeats, args.scale.seed
    ));

    let needs_eps = ["table3", "table4", "table5", "table6", "fig7_11"]
        .iter()
        .any(|e| want(e));
    let mut eps_sweep: Option<EpsSweep> = None;
    let mut eps_metrics = None;
    if needs_eps {
        eprintln!("[reproduce] running epsilon sweep ...");
        let (sweep, delta) = with_registry_delta(|| experiments::run_eps_sweep(&args.scale));
        eps_sweep = Some(sweep);
        eps_metrics = Some(delta);
    }
    if let Some(sweep) = &eps_sweep {
        if want("table3") {
            experiments::table3(sweep, &mut report);
        }
        if want("table4") {
            experiments::table4(sweep, &mut report);
        }
        if want("table5") {
            experiments::table5(sweep, &mut report);
        }
        if want("table6") {
            experiments::table6(sweep, &mut report);
        }
        if want("fig7_11") {
            experiments::figs7_to_11(sweep, &mut report);
        }
        if let Some(delta) = &eps_metrics {
            report.metrics("Telemetry: epsilon sweep", delta);
        }
    }

    if want("table7") || want("fig12_13") {
        eprintln!("[reproduce] running window sweep ...");
        let (points, delta): (Vec<WPoint>, _) =
            with_registry_delta(|| experiments::run_w_sweep(&args.scale));
        experiments::table7_figs12_13(&points, &mut report);
        report.metrics("Telemetry: window sweep", &delta);
    }

    if want("fig14_15") {
        eprintln!("[reproduce] running scalability experiment ...");
        let (points, delta): (Vec<ScalePoint>, _) =
            with_registry_delta(|| experiments::run_scaling(&args.scale));
        experiments::figs14_15(&points, &mut report);
        report.metrics("Telemetry: scalability", &delta);
    }

    if want("fig16_24") {
        eprintln!(
            "[reproduce] running random-query study ({} queries) ...",
            args.queries
        );
        let (points, delta): (Vec<RandomQueryPoint>, _) =
            with_registry_delta(|| experiments::run_random_queries(&args.scale, args.queries));
        experiments::figs16_24(&points, &mut report);
        report.metrics("Telemetry: random queries", &delta);
    }

    if want("serving") {
        eprintln!("[reproduce] running serving benchmark ...");
        // Short points at --tiny scale so smoke runs stay fast; real runs
        // get long enough windows for stable qps.
        let per_point = if args.scale.subset_days <= 2 {
            std::time::Duration::from_millis(500)
        } else {
            std::time::Duration::from_secs(3)
        };
        let (points, delta) = with_registry_delta(|| {
            segdiff_bench::serving::run_serving(&args.scale, &[1, 8], per_point)
        });
        segdiff_bench::serving::serving_report(&points, &mut report);
        report.metrics("Telemetry: serving", &delta);
    }

    if want("scaling") {
        eprintln!("[reproduce] running query-scaling benchmark ...");
        let (points, delta) =
            with_registry_delta(|| segdiff_bench::scaling::run_query_scaling(&args.scale, &[1, 8]));
        if args.record_baseline {
            let json = segdiff_bench::scaling::baseline_json(&args.scale, &points);
            std::fs::write(&args.baseline, json).expect("write baseline");
            eprintln!("[reproduce] recorded baseline {}", args.baseline.display());
        }
        let baseline = segdiff_bench::scaling::load_baseline(&args.baseline);
        segdiff_bench::scaling::scaling_report(&points, baseline.as_deref(), &mut report);
        report.metrics("Telemetry: query scaling", &delta);
        if let Some(guard) = &args.guard {
            if let Err(msg) = segdiff_bench::scaling::check_guard(&points, guard) {
                eprintln!("[reproduce] query guard FAILED: {msg}");
                std::process::exit(1);
            }
            eprintln!("[reproduce] query guard OK ({})", guard.display());
        }
    }

    // Explicit-only: a larger-than-RAM run is too slow for `all`.
    if args.experiments.contains("bigcorpus") {
        eprintln!("[reproduce] running big-corpus columnar smoke ...");
        let result = segdiff_bench::bigcorpus::run_bigcorpus(&args.scale);
        segdiff_bench::bigcorpus::bigcorpus_report(&result, &mut report);
        report.metrics("Telemetry: big corpus", &result.metrics);
        if let Some(path) = &args.metrics_out {
            std::fs::write(path, segdiff_bench::bigcorpus::metrics_json(&result))
                .expect("write metrics artifact");
            eprintln!("[reproduce] wrote metrics artifact {}", path.display());
        }
        if result.extents_pruned == 0 {
            eprintln!("[reproduce] big-corpus FAILED: zonemap.extents_pruned == 0");
            std::process::exit(1);
        }
        if let Some(guard) = &args.guard {
            if let Err(msg) = segdiff_bench::scaling::check_guard(&result.points, guard) {
                eprintln!("[reproduce] big-corpus guard FAILED: {msg}");
                std::process::exit(1);
            }
            eprintln!("[reproduce] big-corpus guard OK ({})", guard.display());
        }
    }

    if want("durability") {
        eprintln!("[reproduce] running durability experiment ...");
        let (result, delta) = with_registry_delta(|| experiments::run_durability(&args.scale));
        experiments::durability_report(&result, &mut report);
        report.metrics("Telemetry: durability", &delta);
    }

    if let Some(path) = &args.out {
        report.save(path).expect("write report");
        eprintln!("[reproduce] wrote {}", path.display());
    }
}
