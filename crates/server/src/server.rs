//! The multi-threaded HTTP server: accept loop, worker pool, shutdown.
//!
//! Architecture: one non-blocking accept loop (the thread that calls
//! [`Server::run`]) feeds accepted connections into a bounded
//! [`BoundedQueue`]; a fixed pool of worker threads pops connections and
//! serves keep-alive request streams off them. When the queue is full
//! the acceptor answers `503` inline — bounded memory under overload,
//! the textbook load-shedding move. Workers yield a connection back to
//! the queue after [`YIELD_AFTER`] consecutive requests whenever other
//! connections are waiting, so hot keep-alive clients cannot starve the
//! rest even with a single worker thread.
//!
//! Shutdown is cooperative: setting the shared flag (SIGINT/SIGTERM via
//! [`crate::signal`], or `POST /shutdown`) stops the acceptor, which
//! closes the queue; workers drain already-queued connections, finish
//! the request in flight, and exit. `run` returns only after every
//! worker has joined, so the caller can flush and print a final metrics
//! snapshot knowing no query is still executing.

use crate::http::{finish_chunks, read_request, write_chunk, write_chunked_head};
use crate::http::{HttpError, Request, Response};
use crate::observer::{Observability, Observer};
use crate::queue::{BoundedQueue, PushError};
use crate::service::{check_query_params, parse_u64_param, Engine, Service, ShardRole};
use obs::json::Json;
use obs::Counter;
use segdiff::alerts::AlertRuleSet;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests (min 1).
    pub threads: usize,
    /// Accepted connections waiting for a worker before `503`s start.
    pub queue_depth: usize,
    /// Per-connection read timeout; idle keep-alive connections are
    /// closed after this long, which also bounds shutdown latency.
    pub read_timeout: Duration,
    /// How often the self-observation thread scrapes the metrics
    /// registry into the series store and evaluates alert rules.
    pub sample_period: Duration,
    /// Ring capacity (points per series) of the sampled history.
    pub series_capacity: usize,
    /// Requests at least this slow are retained in the tail-sampled
    /// slow-trace ring regardless of how much fast traffic follows.
    pub slow_trace: Duration,
    /// Standing drop/jump alert rules evaluated over the sampled
    /// series (defaults mirror `ci/alert-rules.toml`).
    pub alert_rules: AlertRuleSet,
    /// Whether this process serves as a shard primary or a warm replica
    /// (reported by `/healthz`; replicas skip the drain-time flush
    /// because the tail thread owns their durability).
    pub role: ShardRole,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 8,
            queue_depth: 64,
            read_timeout: Duration::from_millis(1000),
            sample_period: Duration::from_millis(500),
            series_capacity: obs::series::DEFAULT_SERIES_CAPACITY,
            slow_trace: Duration::from_millis(25),
            alert_rules: AlertRuleSet::defaults(),
            role: ShardRole::Primary,
        }
    }
}

/// A bound-but-not-yet-running query server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares the service over `engine` — an `Arc<SegDiffIndex>`, an
    /// `Arc<TransectIndex>`, or an explicit [`Engine`]. No thread is
    /// spawned until [`Server::run`].
    pub fn bind(addr: &str, engine: impl Into<Engine>, config: ServerConfig) -> io::Result<Server> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let observability = Arc::new(Observability::new(
            config.series_capacity,
            config.alert_rules.clone(),
            config.slow_trace,
        ));
        let mut service = Service::with_observability(engine, Arc::clone(&shutdown), observability);
        service.set_role(config.role);
        let service = Arc::new(service);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            service,
            shutdown,
            config,
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that makes the server drain and stop when set.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The service behind this server — e.g. to reach the standing-query
    /// registry (`service().observability().subs`) so a live ingest path
    /// can push committed features into it.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Runs the accept loop on the calling thread until shutdown, then
    /// drains and joins the workers.
    pub fn run(self) -> io::Result<()> {
        let registry = obs::global();
        let accepted = registry.counter("server.accepted");
        let rejected = registry.counter("server.rejected");
        let requeued = registry.counter("server.requeued");
        let queue_depth = registry.gauge("server.queue_depth");
        let queue: Arc<BoundedQueue<TcpStream>> =
            Arc::new(BoundedQueue::new(self.config.queue_depth));
        // The self-observation thread: samples every registered metric
        // into the series store and runs the standing drop/jump rules
        // over the fresh points, for as long as the server serves.
        let observer = Observer::start(self.service.observability(), self.config.sample_period);

        let mut workers = Vec::new();
        for i in 0..self.config.threads.max(1) {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            let requeued = Arc::clone(&requeued);
            let timeout = self.config.read_timeout;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("segdiff-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            handle_connection(
                                &service, stream, &queue, &requeued, &shutdown, timeout,
                            );
                        }
                    })?,
            );
        }

        while !self.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accepted.inc();
                    match queue.try_push(stream) {
                        Ok(()) => {}
                        Err(PushError::Full(stream)) | Err(PushError::Closed(stream)) => {
                            rejected.inc();
                            shed(stream);
                        }
                    }
                    queue_depth.set(queue.len() as i64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    queue_depth.set(queue.len() as i64);
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    obs::warn!("accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }

        obs::info!(
            "draining: {} request(s) in flight",
            self.service.in_flight()
        );
        queue.close();
        for w in workers {
            let _ = w.join();
        }
        // Every query has finished; make the store durable before telling
        // the caller the drain is complete. With WAL on this checkpoints
        // and truncates the log, so the next open is clean. Replicas
        // skip it: the tail thread may still be appending shipped
        // frames, and a checkpoint here would race it — replica state is
        // disposable (rebuilt from the primary) so durability is the
        // tail loop's job.
        if self.service.role() == ShardRole::Primary {
            let flush_start = std::time::Instant::now();
            self.service
                .engine()
                .flush()
                .map_err(|e| io::Error::other(format!("flush on drain failed: {e}")))?;
            registry
                .histogram("server.flush_ms")
                .record(flush_start.elapsed().as_millis().min(u64::MAX as u128) as u64);
            obs::info!(
                "drained and flushed in {:.1} ms",
                flush_start.elapsed().as_secs_f64() * 1e3
            );
        }
        observer.stop();
        queue_depth.set(0);
        Ok(())
    }
}

/// Answers `503` on a connection the queue refused.
fn shed(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = Response::error(503, "server overloaded, try again")
        .with_close()
        .write_to(&mut stream);
}

/// How many requests one connection may be served in a row while other
/// connections wait in the queue. A keep-alive client with a hot request
/// loop would otherwise monopolize its worker indefinitely — with
/// `--threads 1` and N clients, N-1 of them would starve for the whole
/// run. After a burst the connection goes to the back of the queue and
/// the worker picks up the next waiter, so a single worker round-robins.
const YIELD_AFTER: u32 = 32;

/// Serves a keep-alive request stream until close, error, or shutdown.
///
/// Fairness: after [`YIELD_AFTER`] requests, if other connections are
/// waiting in `queue`, the connection is pushed to the back of the queue
/// (counted in `server.requeued`) and this call returns so the worker can
/// serve a waiter. The re-queue is skipped when the client has already
/// pipelined bytes into the read buffer — those would be lost with the
/// `BufReader` — or when the queue filled up in the meantime.
fn handle_connection(
    service: &Service,
    stream: TcpStream,
    queue: &BoundedQueue<TcpStream>,
    requeued: &Counter,
    shutdown: &AtomicBool,
    timeout: Duration,
) {
    // Accepted sockets are blocking on Linux regardless of the listener's
    // non-blocking flag, but make it explicit rather than rely on that.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut served: u32 = 0;
    loop {
        let outcome = match read_request(&mut reader) {
            Ok(req) => {
                // A live-feed request takes over the socket: the
                // response is an open-ended chunked stream, so the
                // connection never re-enters the keep-alive loop.
                if let Some(sub_id) = Service::stream_target(&req) {
                    serve_stream(service, &mut writer, &req, shutdown, sub_id);
                    return;
                }
                let mut resp = service.handle(&req);
                // The request in flight finishes; the connection does not
                // outlive a shutdown.
                if !req.keep_alive() || shutdown.load(Ordering::Acquire) {
                    resp.close = true;
                }
                let close = resp.close;
                if resp.write_to(&mut writer).is_err() || close {
                    None
                } else {
                    Some(())
                }
            }
            Err(HttpError::Closed) => None,
            Err(HttpError::TooLarge) => {
                let _ = Response::error(413, "request too large")
                    .with_close()
                    .write_to(&mut writer);
                None
            }
            Err(HttpError::Malformed(m)) => {
                let _ = Response::error(400, m).with_close().write_to(&mut writer);
                None
            }
            // Timeouts land here. A timed-out read may have consumed a
            // partial request, so the stream cannot be resynchronized —
            // drop the connection and let the client reconnect.
            Err(HttpError::Io(_)) => None,
        };
        if outcome.is_none() {
            return;
        }
        served += 1;
        if served >= YIELD_AFTER
            && !queue.is_empty()
            && reader.buffer().is_empty()
            && !shutdown.load(Ordering::Acquire)
        {
            match queue.try_push(reader.into_inner()) {
                Ok(()) => {
                    requeued.inc();
                    return;
                }
                // The queue filled between the is_empty check and the
                // push; keep serving this connection rather than drop it.
                Err(PushError::Full(stream)) => {
                    reader = BufReader::new(stream);
                    served = 0;
                }
                // Shutdown began; the connection does not outlive it.
                Err(PushError::Closed(_)) => return,
            }
        }
    }
}

/// How often the live feed polls the registry for fresh notifications.
const STREAM_POLL: Duration = Duration::from_millis(25);

/// Idle live-feed connections get a heartbeat line this often, so a
/// silent sensor still produces traffic and a dead client is detected
/// by the write failing.
const STREAM_HEARTBEAT: Duration = Duration::from_millis(1000);

/// `GET /subscribe/<id>/stream` — the chunked live notification feed.
///
/// Writes one NDJSON line per notification as chunks on a
/// `Transfer-Encoding: chunked` response, starting from `?after=`
/// (default: only notifications published from now on). The stream ends
/// cleanly (zero-length chunk) on server shutdown, on unsubscribe, or
/// after `?max=` notifications; it ends abruptly when the client goes
/// away and a write fails. The worker thread is occupied for the
/// stream's lifetime — live feeds are for watchers, not for fan-out;
/// polling `GET /notifications` scales to many consumers.
fn serve_stream(
    service: &Service,
    w: &mut TcpStream,
    req: &Request,
    shutdown: &AtomicBool,
    sub_id: u64,
) {
    let registry = Arc::clone(&service.observability().subs);
    if let Err(e) = check_query_params(req, &["after", "max"]) {
        let _ = Response::error(400, e).with_close().write_to(w);
        return;
    }
    let Some(sub) = registry.subscription(sub_id) else {
        let _ = Response::error(404, format!("no subscription {sub_id}"))
            .with_close()
            .write_to(w);
        return;
    };
    // Default to "from now": everything already published is the
    // polling cursor's job; the live feed is about what happens next.
    let mut cursor = match parse_u64_param(req, "after", registry.last_seq(sub_id).unwrap_or(0)) {
        Ok(n) => n,
        Err(e) => {
            let _ = Response::error(400, e).with_close().write_to(w);
            return;
        }
    };
    let max = match parse_u64_param(req, "max", 0) {
        Ok(n) => n, // 0 = unbounded
        Err(e) => {
            let _ = Response::error(400, e).with_close().write_to(w);
            return;
        }
    };
    if write_chunked_head(w, 200, "application/x-ndjson").is_err() {
        return;
    }
    // First line: what the stream is serving and where it starts, so a
    // client can resume over `GET /notifications` after a disconnect.
    let hello = Json::obj([("stream", sub.to_json()), ("after", Json::from(cursor))]);
    if write_chunk(w, format!("{}\n", hello.to_string_compact()).as_bytes()).is_err() {
        return;
    }
    let mut delivered = 0u64;
    let mut last_write = std::time::Instant::now();
    loop {
        if shutdown.load(Ordering::Acquire) {
            let _ = finish_chunks(w);
            return;
        }
        let Some((batch, next)) = registry.since(sub_id, cursor, 256) else {
            // Unsubscribed mid-stream: end cleanly.
            let _ = finish_chunks(w);
            return;
        };
        cursor = next;
        for n in &batch {
            if write_chunk(
                w,
                format!("{}\n", n.to_json().to_string_compact()).as_bytes(),
            )
            .is_err()
            {
                return;
            }
            last_write = std::time::Instant::now();
            delivered += 1;
            if max > 0 && delivered >= max {
                let _ = finish_chunks(w);
                return;
            }
        }
        if batch.is_empty() && last_write.elapsed() >= STREAM_HEARTBEAT {
            let beat = Json::obj([("heartbeat", Json::from(obs::unix_ms()))]);
            if write_chunk(w, format!("{}\n", beat.to_string_compact()).as_bytes()).is_err() {
                return;
            }
            last_write = std::time::Instant::now();
        }
        std::thread::sleep(STREAM_POLL);
    }
}

/// Process-wide SIGINT/SIGTERM latch, installed without any external
/// crate via the C `signal(2)` entry point (libc is already linked by
/// std). The handler only stores to an atomic, which is async-signal
/// safe; the serving loop polls [`signal::triggered`].
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Routes SIGINT and SIGTERM to the latch. Idempotent.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        // SAFETY: libc `signal` is called with valid signal numbers and
        // a handler that is an `extern "C" fn(i32)` whose body only
        // performs an atomic store — async-signal-safe, no allocation,
        // no locks, no Rust unwinding across the FFI boundary.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// No-op off unix: `POST /shutdown` remains the only trigger.
    #[cfg(not(unix))]
    pub fn install() {}

    /// Whether a shutdown signal has arrived.
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }

    /// Clears the latch (tests only).
    #[doc(hidden)]
    pub fn reset() {
        TRIGGERED.store(false, Ordering::SeqCst);
    }
}
