//! Table 3 counterpart: segmentation throughput and compression across the
//! paper's error tolerances, for all three segmentation algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segdiff_bench::default_series;
use segmentation::Segmenter;
use std::hint::black_box;
use std::time::Duration;

fn bench_segmentation(c: &mut Criterion) {
    let series = default_series(10, 1);
    let mut group = c.benchmark_group("table3/segment");
    group.sample_size(20);
    for eps in [0.1, 0.2, 0.4, 0.8, 1.0] {
        group.bench_with_input(BenchmarkId::new("sliding", eps), &eps, |b, &eps| {
            b.iter(|| {
                let pla = segmentation::segment_series(black_box(&series), eps);
                black_box(pla.num_segments())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table3/ablation");
    group.sample_size(10);
    for alg in Segmenter::all() {
        group.bench_with_input(BenchmarkId::new(alg.name(), 0.2), &alg, |b, alg| {
            b.iter(|| black_box(alg.segment(black_box(&series), 0.2).num_segments()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_segmentation
}
criterion_main!(benches);
