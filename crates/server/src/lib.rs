#![warn(missing_docs)]

//! **segdiff-server** — a concurrent HTTP query service over a SegDiff
//! index, built entirely on `std::net` (zero external dependencies).
//!
//! The paper evaluates SegDiff as an offline index; this crate turns it
//! into the online artifact a deployment would actually run: many
//! clients searching one shared index at once. The pieces:
//!
//! * [`http`] — minimal HTTP/1.1 framing (requests, responses,
//!   keep-alive, `Content-Length` bodies), shared by server and client;
//! * [`queue`] — the bounded accept queue between the non-blocking
//!   accept loop and the worker pool (`503` load-shedding when full);
//! * [`routes`] — the route registry: every `(method, path)` the
//!   service answers, checked in as data, enforced against the
//!   dispatch table and the README by `segdiff-lint` rule L8;
//! * [`service`] — the routes: `POST /query`, `GET /metrics`,
//!   `GET /healthz`, `GET /series`, `GET /alerts`,
//!   `GET /debug/traces`, `POST /shutdown`, plus the standing-query
//!   surface: `POST /subscribe`, `GET /subscribe`,
//!   `GET /notifications?sub=&after=`, `DELETE /subscribe/<id>`, and
//!   the chunked live feed `GET /subscribe/<id>/stream`;
//! * [`observer`] — self-observation: the background thread sampling
//!   every registered metric into ring-buffered time series and feeding
//!   them through the paper's own drop/jump detection as standing
//!   alert rules;
//! * [`server`] — the worker pool, graceful drain on shutdown, and the
//!   SIGINT/SIGTERM latch ([`server::signal`]);
//! * [`loadgen`] — a closed-loop load generator with persistent
//!   connections, used by `segdiff loadgen` and the bench harness.
//!
//! Concurrent reads are safe because [`segdiff::SegDiffIndex::query`]
//! and `query_cached` take `&self`: the buffer pool is striped into
//! lock shards and the table internals are reader/writer-locked, so
//! worker threads genuinely execute in parallel. Repeated queries are
//! answered from the epoch-tagged result cache (`cache.*` counters).

pub mod http;
pub mod loadgen;
pub mod observer;
pub mod queue;
pub mod replica;
pub mod routes;
pub mod server;
pub mod service;
pub mod ship;

pub use http::{Request, Response};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use observer::{Observability, Observer};
pub use queue::BoundedQueue;
pub use replica::{Replica, ReplicaConfig};
pub use server::{Server, ServerConfig};
pub use service::{Engine, EngineCell, QuerySpec, Service, ShardRole, SubscribeSpec};

#[cfg(test)]
mod e2e_tests {
    use super::loadgen::{fetch, query_mix};
    use super::*;
    use obs::json::Json;
    use segdiff::{QueryPlan, SegDiffConfig, SegDiffIndex};
    use sensorgen::{generate_sensor, CadTransectConfig};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("segdiff-server-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn build_index(dir: &std::path::Path) -> Arc<SegDiffIndex> {
        let series = generate_sensor(&CadTransectConfig::default().with_days(5).clean(), 12, 7);
        let mut idx = SegDiffIndex::create(dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        Arc::new(idx)
    }

    fn start_server(
        idx: Arc<SegDiffIndex>,
        threads: usize,
    ) -> (String, std::thread::JoinHandle<()>) {
        let server = Server::bind(
            "127.0.0.1:0",
            idx,
            ServerConfig {
                threads,
                queue_depth: 32,
                read_timeout: Duration::from_millis(250),
                sample_period: Duration::from_millis(50),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let host = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (host, handle)
    }

    #[test]
    fn serves_queries_matching_offline_results() {
        let dir = TempDir::new("e2e");
        let idx = build_index(&dir.0);
        let (expected, _) = idx
            .query(
                &featurespace::QueryRegion::drop(3600.0, -2.0),
                QueryPlan::Index,
            )
            .unwrap();
        let (host, handle) = start_server(Arc::clone(&idx), 4);

        let (status, body) = fetch(&host, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let health = Json::parse(&body).unwrap();
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

        let query = r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#;
        let (status, body) = fetch(&host, "POST", "/query", Some(query)).unwrap();
        assert_eq!(status, 200, "body: {body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("cached"), Some(&Json::Bool(false)));
        let results = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), expected.len());
        for (got, want) in results.iter().zip(expected.iter()) {
            assert_eq!(got.get("t_d").unwrap().as_f64().unwrap(), want.t_d);
            assert_eq!(got.get("t_a").unwrap().as_f64().unwrap(), want.t_a);
        }

        // Same query again: answered from the epoch-tagged cache.
        let (_, body) = fetch(&host, "POST", "/query", Some(query)).unwrap();
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            doc.get("count").unwrap().as_u64().unwrap(),
            expected.len() as u64
        );

        // Traced query carries a span tree.
        let traced = r#"{"kind":"drop","v":-2.5,"t_hours":1.0,"plan":"scan","trace":true}"#;
        let (_, body) = fetch(&host, "POST", "/query", Some(traced)).unwrap();
        let doc = Json::parse(&body).unwrap();
        assert!(doc.get("trace").is_some(), "missing trace: {body}");

        // Bad input is a 400, not a worker panic.
        let (status, _) = fetch(
            &host,
            "POST",
            "/query",
            Some(r#"{"kind":"drop","v":2.0,"t_hours":1.0}"#),
        )
        .unwrap();
        assert_eq!(status, 400);
        let (status, _) = fetch(&host, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);

        // Metrics dump includes server and cache counters.
        let (status, text) = fetch(&host, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(text.contains("server.requests"), "metrics: {text}");
        assert!(text.contains("cache."), "metrics: {text}");

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    /// The transect engine serves the parallel fan-out path: a `/query`
    /// answer equals the offline `query_all` results concatenated in
    /// sensor order, whatever the pool size.
    #[test]
    fn serves_transect_fan_out_matching_offline_results() {
        use segdiff::TransectIndex;

        let dir = TempDir::new("transect");
        let cfg = CadTransectConfig::default()
            .with_days(3)
            .with_sensors(3)
            .clean();
        let mut t = TransectIndex::create(&dir.0, SegDiffConfig::default(), 3).unwrap();
        for k in 0..3 {
            t.ingest_series(k, &generate_sensor(&cfg, k, 7)).unwrap();
        }
        t.finish_all().unwrap();
        t.build_indexes_all().unwrap();
        let t = Arc::new(t);

        let region = featurespace::QueryRegion::drop(3600.0, -2.0);
        let (offline, _) = t.query_all(&region, QueryPlan::Index).unwrap();
        let expected: Vec<_> = offline.into_iter().flatten().collect();

        let server = Server::bind(
            "127.0.0.1:0",
            Engine::transect(Arc::clone(&t), 2),
            ServerConfig {
                threads: 4,
                queue_depth: 32,
                read_timeout: Duration::from_millis(250),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let host = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let (status, body) = fetch(&host, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let health = Json::parse(&body).unwrap();
        assert_eq!(health.get("sensors").and_then(Json::as_u64), Some(3));

        let query = r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#;
        let (status, body) = fetch(&host, "POST", "/query", Some(query)).unwrap();
        assert_eq!(status, 200, "body: {body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("sensors").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("cached"), Some(&Json::Bool(false)));
        let results = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), expected.len());
        for (got, want) in results.iter().zip(expected.iter()) {
            assert_eq!(got.get("t_d").unwrap().as_f64().unwrap(), want.t_d);
            assert_eq!(got.get("t_a").unwrap().as_f64().unwrap(), want.t_a);
        }

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    /// The self-observation surface end to end: `/query` responses carry
    /// trace ids, `/debug/traces` retains the finished requests,
    /// `/series` serves the sampled metric history, `/alerts` lists the
    /// standing rules, and `/metrics?format=json` stamps every line with
    /// a `ts` field.
    #[test]
    fn observability_routes_serve_series_alerts_and_traces() {
        let dir = TempDir::new("observe");
        let idx = build_index(&dir.0);
        let (host, handle) = start_server(idx, 2);

        // A couple of queries to give the rings and series content.
        let query = r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#;
        let mut trace_ids = Vec::new();
        for _ in 0..3 {
            let (status, body) = fetch(&host, "POST", "/query", Some(query)).unwrap();
            assert_eq!(status, 200, "body: {body}");
            let doc = Json::parse(&body).unwrap();
            let id = doc.get("trace_id").and_then(Json::as_u64).unwrap();
            assert!(id > 0, "trace_id must be assigned: {body}");
            trace_ids.push(id);
        }
        assert!(
            trace_ids.windows(2).all(|w| w[0] != w[1]),
            "trace ids must be unique: {trace_ids:?}"
        );

        // The trace ring has the queries, newest first, with their ids.
        let (status, body) = fetch(&host, "GET", "/debug/traces?n=50", None).unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        let traces = doc.get("traces").unwrap().as_array().unwrap();
        for id in &trace_ids {
            assert!(
                traces
                    .iter()
                    .any(|t| t.get("trace_id").and_then(Json::as_u64) == Some(*id)),
                "trace {id} missing from ring: {body}"
            );
        }
        // Full dump parses too and query traces carry span trees.
        let (status, body) = fetch(&host, "GET", "/debug/traces?n=50&full=1", None).unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert!(
            doc.get("traces")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .any(
                    |t| t.get("name").and_then(Json::as_str) == Some("POST /query")
                        && t.get("trace").is_some()
                ),
            "query trace must include its span tree: {body}"
        );
        // The slow ring answers (possibly empty) and bad params are 400s.
        let (status, _) = fetch(&host, "GET", "/debug/traces?ring=slow", None).unwrap();
        assert_eq!(status, 200);
        let (status, _) = fetch(&host, "GET", "/debug/traces?ring=fast", None).unwrap();
        assert_eq!(status, 400);
        let (status, _) = fetch(&host, "GET", "/debug/traces?n=0", None).unwrap();
        assert_eq!(status, 400);

        // The sampler (50ms period here) publishes derived series.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let (status, body) = fetch(&host, "GET", "/series", None).unwrap();
            assert_eq!(status, 200);
            let doc = Json::parse(&body).unwrap();
            let names: Vec<String> = doc
                .get("series")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .filter_map(|j| j.as_str().map(str::to_string))
                .collect();
            if names.iter().any(|n| n == "server.requests.rate")
                && names.iter().any(|n| n == "server.inflight")
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler never published request series: {names:?}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        let (status, body) = fetch(
            &host,
            "GET",
            "/series?name=server.requests.rate&window=1h",
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert!(
            doc.get("count").and_then(Json::as_u64).unwrap() >= 1,
            "windowed series must have points: {body}"
        );
        let (status, _) = fetch(&host, "GET", "/series?name=no.such.series", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = fetch(&host, "GET", "/series?name=x&window=soon", None).unwrap();
        assert_eq!(status, 400);

        // The standing rules are served; the clean run fired nothing...
        let (status, body) = fetch(&host, "GET", "/alerts", None).unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        let rules = doc.get("rules").unwrap().as_array().unwrap();
        assert!(
            rules
                .iter()
                .any(|r| r.get("name").and_then(Json::as_str) == Some("query-latency-jump")),
            "default rules must be listed: {body}"
        );
        // ...from the latency-jump rule (the rate rule can legitimately
        // see the load stopping, so only the jump rule is asserted).
        assert!(
            !doc.get("alerts")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .any(|a| a.get("rule").and_then(Json::as_str) == Some("query-latency-jump")),
            "no latency alert on a clean baseline: {body}"
        );

        // Satellite: every JSON metrics line is stamped with `ts`.
        let (status, text) = fetch(&host, "GET", "/metrics?format=json", None).unwrap();
        assert_eq!(status, 200);
        let mut saw_gauge = false;
        for line in text.lines() {
            let j = Json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            assert!(
                j.get("ts").and_then(Json::as_u64).unwrap() > 0,
                "line missing ts: {line}"
            );
            if j.get("kind").and_then(Json::as_str) == Some("gauge") {
                saw_gauge = true;
            }
        }
        assert!(saw_gauge, "gauges must be exported: {text}");
        assert!(text.contains("server.inflight"), "{text}");
        assert!(text.contains("pool.resident_pages"), "{text}");

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    #[test]
    fn loadgen_closed_loop_round_trips() {
        let dir = TempDir::new("loadgen");
        let idx = build_index(&dir.0);
        let (host, handle) = start_server(idx, 4);

        let report = loadgen::run(&LoadgenConfig {
            host: host.clone(),
            concurrency: 4,
            duration: Duration::from_millis(600),
            bodies: query_mix("drop", -2.0, 1.0),
        })
        .unwrap();
        assert!(report.ok > 0, "no successful requests: {report:?}");
        assert_eq!(report.non_2xx, 0, "{report:?}");
        assert_eq!(report.errors, 0, "{report:?}");
        assert!(report.latency.count == report.ok);
        assert!(report.latency.p50 <= report.latency.p99);

        // The mix repeats queries, so the server cache must have hits.
        let (_, text) = fetch(&host, "GET", "/metrics?format=json", None).unwrap();
        let hits: u64 = text
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .filter(|j| j.get("name").and_then(Json::as_str) == Some("cache.hit"))
            .filter_map(|j| j.get("value").and_then(Json::as_u64))
            .sum();
        assert!(hits > 0, "expected cache hits after repeated queries");

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    /// With ONE worker thread, a hot keep-alive client must not starve a
    /// second connection: after `YIELD_AFTER` consecutive requests the
    /// worker re-queues the hot connection and serves the waiter.
    #[test]
    fn single_worker_round_robins_hot_connections() {
        use super::http::{read_response, write_request};
        use std::io::BufReader;
        use std::net::TcpStream;

        let dir = TempDir::new("fair");
        let idx = build_index(&dir.0);
        let (host, handle) = start_server(idx, 1);

        // Connection A claims the only worker with a first request.
        let mut a = TcpStream::connect(&host).unwrap();
        a.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut a_reader = BufReader::new(a.try_clone().unwrap());
        write_request(&mut a, "GET", "/healthz", &host, None).unwrap();
        let (status, _) = read_response(&mut a_reader).unwrap();
        assert_eq!(status, 200);

        // Connection B sends a request and then waits in the queue.
        let mut b = TcpStream::connect(&host).unwrap();
        b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut b_reader = BufReader::new(b.try_clone().unwrap());
        write_request(&mut b, "GET", "/healthz", &host, None).unwrap();

        // A stays hot well past the yield threshold. The worker must
        // re-queue A at some point in this loop and answer B; A's own
        // requests still all complete (the pending one is served when the
        // worker rotates back).
        for _ in 0..80 {
            write_request(&mut a, "GET", "/healthz", &host, None).unwrap();
            let (status, _) = read_response(&mut a_reader).unwrap();
            assert_eq!(status, 200);
        }
        let (status, _) = read_response(&mut b_reader).unwrap();
        assert_eq!(status, 200);

        drop((a, b));
        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    /// The standing-query surface end to end: register over HTTP, attach
    /// a live ingest to the server's registry, ingest a planted drop,
    /// and receive it through both delivery paths — the durable polling
    /// cursor and the chunked live stream — then unsubscribe.
    #[test]
    fn standing_queries_subscribe_ingest_poll_and_stream() {
        use super::http::{read_chunk, read_chunked_head, write_request};
        use std::io::BufReader;
        use std::net::TcpStream;

        let dir = TempDir::new("subs");
        let live_dir = TempDir::new("subs-live");
        let idx = build_index(&dir.0);
        let server = Server::bind(
            "127.0.0.1:0",
            idx,
            ServerConfig {
                threads: 4,
                queue_depth: 32,
                read_timeout: Duration::from_millis(250),
                sample_period: Duration::from_millis(50),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let host = server.local_addr().to_string();
        let subs = Arc::clone(&server.service().observability().subs);
        let handle = std::thread::spawn(move || server.run().unwrap());

        // Register: the response echoes the stored subscription with id.
        let body = r#"{"label":"deep","kind":"drop","v":-3.0,"t_hours":1.0,"sensors":[7]}"#;
        let (status, resp) = fetch(&host, "POST", "/subscribe", Some(body)).unwrap();
        assert_eq!(status, 200, "body: {resp}");
        let doc = Json::parse(&resp).unwrap();
        let sub_id = doc.get("id").and_then(Json::as_u64).unwrap();
        assert_eq!(doc.get("label").and_then(Json::as_str), Some("deep"));

        // It shows up in the listing.
        let (status, resp) = fetch(&host, "GET", "/subscribe", None).unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(1));

        // Before any ingest: the cursor exists but is empty.
        let path = format!("/notifications?sub={sub_id}&after=0");
        let (status, resp) = fetch(&host, "GET", &path, None).unwrap();
        assert_eq!(status, 200, "body: {resp}");
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(0));

        // A live ingest path shares the server's registry: a second
        // index (sensor 7) pushes committed features into it.
        let mut live = SegDiffIndex::create(&live_dir.0, SegDiffConfig::default()).unwrap();
        live.attach_subscriptions(Arc::clone(&subs), 7);
        let mut series = sensorgen::TimeSeries::new();
        let mut v = 10.0;
        for i in 0..200 {
            let t = i as f64 * 300.0;
            if (80..86).contains(&i) {
                v -= 4.0 / 6.0; // a planted 4-degree drop over 30 min
            }
            series.push(t, v);
        }
        live.ingest_series(&series).unwrap();
        live.finish().unwrap();

        // The polling cursor delivers the planted drop.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let (first_seq, next_after) = loop {
            let (status, resp) = fetch(&host, "GET", &path, None).unwrap();
            assert_eq!(status, 200, "body: {resp}");
            let doc = Json::parse(&resp).unwrap();
            let notifications = doc.get("notifications").unwrap().as_array().unwrap();
            if let Some(n) = notifications.iter().find(|n| {
                n.get("t_d").and_then(Json::as_f64).unwrap() <= 25_800.0
                    && n.get("t_a").and_then(Json::as_f64).unwrap() >= 24_000.0
            }) {
                assert_eq!(n.get("sensor").and_then(Json::as_u64), Some(7));
                assert_eq!(n.get("kind").and_then(Json::as_str), Some("drop"));
                assert!(n.get("committed_ms").and_then(Json::as_u64).unwrap() > 0);
                break (
                    n.get("seq").and_then(Json::as_u64).unwrap(),
                    doc.get("next_after").and_then(Json::as_u64).unwrap(),
                );
            }
            assert!(
                std::time::Instant::now() < deadline,
                "planted drop never arrived: {resp}"
            );
            std::thread::sleep(Duration::from_millis(25));
        };
        assert!(first_seq >= 1 && next_after >= first_seq);

        // Resuming past the cursor returns nothing new (exactly once).
        let (status, resp) = fetch(
            &host,
            "GET",
            &format!("/notifications?sub={sub_id}&after={next_after}"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(0), "{resp}");

        // The live stream replays from seq 0 and terminates after max=1:
        // hello line first, then the notification as an NDJSON chunk.
        let stream = TcpStream::connect(&host).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_request(
            &mut writer,
            "GET",
            &format!("/subscribe/{sub_id}/stream?after=0&max=1"),
            &host,
            None,
        )
        .unwrap();
        let (status, headers) = read_chunked_head(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert!(headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v == "chunked"));
        let hello = read_chunk(&mut reader).unwrap().unwrap();
        let hello = Json::parse(std::str::from_utf8(&hello).unwrap().trim()).unwrap();
        assert!(hello.get("stream").is_some(), "hello line: {hello:?}");
        let mut lines = Vec::new();
        while let Some(chunk) = read_chunk(&mut reader).unwrap() {
            let text = String::from_utf8(chunk).unwrap();
            lines.extend(text.lines().map(Json::parse).map(Result::unwrap));
        }
        assert!(
            lines
                .iter()
                .any(|l| l.get("seq").and_then(Json::as_u64) == Some(first_seq)),
            "stream must replay the notification: {lines:?}"
        );

        // Streaming an unknown subscription is an ordinary 404.
        let (status, resp) = fetch(&host, "GET", "/subscribe/999/stream", None).unwrap();
        assert_eq!(status, 404, "body: {resp}");

        // Unsubscribe; the cursor and the id are gone.
        let (status, _) = fetch(&host, "DELETE", &format!("/subscribe/{sub_id}"), None).unwrap();
        assert_eq!(status, 200);
        let (status, _) = fetch(&host, "GET", &path, None).unwrap();
        assert_eq!(status, 404);

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    /// The PR 6 audit satellite: malformed or unknown query parameters
    /// are structured JSON 400 bodies on every route, old and new.
    #[test]
    fn malformed_query_params_are_structured_400s_everywhere() {
        let dir = TempDir::new("params");
        let idx = build_index(&dir.0);
        let (host, handle) = start_server(idx, 2);

        let bad = [
            ("GET", "/metrics?format=xml"),
            ("GET", "/metrics?fmt=json"),
            ("GET", "/healthz?verbose=1"),
            ("GET", "/series?nam=x"),
            ("GET", "/series?name"), // pair without '='
            ("GET", "/alerts?after=soon"),
            ("GET", "/alerts?since=0"),
            ("GET", "/debug/traces?full=2"),
            ("GET", "/debug/traces?ring=fast"),
            ("GET", "/debug/traces?count=5"),
            ("GET", "/notifications"), // missing sub
            ("GET", "/notifications?sub=xyz"),
            ("GET", "/notifications?sub=1&max=0"),
            ("GET", "/notifications?sub=1&page=2"),
            ("GET", "/subscribe?x=1"),
            ("DELETE", "/subscribe/xyz"),
        ];
        for (method, target) in bad {
            let (status, body) = fetch(&host, method, target, None).unwrap();
            assert_eq!(status, 400, "{method} {target}: {body}");
            let doc = Json::parse(&body)
                .unwrap_or_else(|e| panic!("{method} {target}: non-JSON 400 body {body:?}: {e}"));
            assert!(
                doc.get("error").and_then(Json::as_str).is_some(),
                "{method} {target}: 400 body must carry an error field: {body}"
            );
        }
        // Bad subscription bodies too.
        let (status, body) = fetch(
            &host,
            "POST",
            "/subscribe",
            Some(r#"{"kind":"drop","v":2.0,"t_hours":1.0}"#),
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(Json::parse(&body).unwrap().get("error").is_some());

        // And the unknowns stay 404 with an error body.
        for target in ["/notifications?sub=999", "/subscribe/999"] {
            let (status, body) = fetch(&host, "GET", target, None).unwrap();
            assert_eq!(status, 404, "{target}: {body}");
            assert!(Json::parse(&body).unwrap().get("error").is_some());
        }

        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_flag_drains_and_stops() {
        let dir = TempDir::new("drain");
        let idx = build_index(&dir.0);
        let server = Server::bind("127.0.0.1:0", idx, ServerConfig::default()).unwrap();
        let host = server.local_addr().to_string();
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let (status, _) = fetch(&host, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        flag.store(true, Ordering::Release);
        handle.join().unwrap();
        // The listener is gone: new connections are refused.
        assert!(fetch(&host, "GET", "/healthz", None).is_err());
    }

    #[test]
    fn post_shutdown_leaves_store_durable() {
        let dir = TempDir::new("durable");
        let idx = build_index(&dir.0);
        let (expected, _) = idx
            .query(
                &featurespace::QueryRegion::drop(3600.0, -2.0),
                QueryPlan::Index,
            )
            .unwrap();
        let (host, handle) = start_server(idx, 2);
        // The WAL's counter family is part of the exported metrics.
        let (status, body) = fetch(&host, "GET", "/metrics?format=json", None).unwrap();
        assert_eq!(status, 200);
        for name in ["wal.appends", "wal.bytes", "wal.checkpoints"] {
            assert!(
                body.contains(&format!("\"{name}\"")),
                "GET /metrics must export {name}: {body}"
            );
        }
        let before = obs::global().histogram("server.flush_ms").count();
        let (status, _) = fetch(&host, "POST", "/shutdown", None).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
        // The drain ended in a flush: its duration was recorded...
        assert_eq!(
            obs::global().histogram("server.flush_ms").count(),
            before + 1,
            "drain must record server.flush_ms"
        );
        // ...and the store on disk is complete: a fresh process sees a
        // cleanly shut-down index that answers the same query.
        let reopened = SegDiffIndex::open(&dir.0, 4096).unwrap();
        assert!(
            reopened.recovery_report().unwrap().clean,
            "drain flush must leave a clean WAL"
        );
        reopened.verify_consistency().unwrap();
        let (results, _) = reopened
            .query(
                &featurespace::QueryRegion::drop(3600.0, -2.0),
                QueryPlan::Index,
            )
            .unwrap();
        assert_eq!(results, expected, "reopened store must answer identically");
    }

    /// The replication loop end to end over real HTTP: a replica
    /// bootstraps from a live primary, serves byte-identical `/query`
    /// answers with role `"replica"` and an `applied_lsn`, and — after
    /// the primary drains, ingests more data offline, and rebinds on
    /// the same port — tails (or resyncs past) the new WAL history
    /// until it matches the restarted primary again.
    #[test]
    fn replica_bootstraps_tails_and_serves() {
        use segdiff::TransectIndex;
        use sensorgen::TimeSeries;

        let prim = TempDir::new("replica-prim");
        let rep = TempDir::new("replica-rep");
        let cfg = CadTransectConfig::default()
            .with_days(3)
            .with_sensors(2)
            .clean();
        let series0 = generate_sensor(&cfg, 0, 7);
        let series1 = generate_sensor(&cfg, 1, 7);
        let half = series0.len() / 2;

        // Round one: sensor 0 has only the first half of its series;
        // the rest arrives after the primary restart below.
        let mut t = TransectIndex::create(&prim.0, SegDiffConfig::default(), 2).unwrap();
        t.ingest_series(0, &series0.prefix(half)).unwrap();
        t.ingest_series(1, &series1).unwrap();
        t.finish_all().unwrap();
        t.build_indexes_all().unwrap();

        let config = ServerConfig {
            threads: 2,
            queue_depth: 32,
            read_timeout: Duration::from_millis(250),
            ..ServerConfig::default()
        };
        let server = Server::bind(
            "127.0.0.1:0",
            Engine::transect(Arc::new(t), 2),
            config.clone(),
        )
        .unwrap();
        let primary_host = server.local_addr().to_string();
        let primary_flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let query = r#"{"kind":"drop","v":-2.0,"t_hours":1.0,"plan":"index"}"#;
        let results_of = |host: &str| -> String {
            let (status, body) = fetch(host, "POST", "/query", Some(query)).unwrap();
            assert_eq!(status, 200, "body: {body}");
            let doc = Json::parse(&body).unwrap();
            doc.get("results").unwrap().to_string_compact()
        };
        let reference = results_of(&primary_host);
        assert_ne!(reference, "[]", "the CAD tides must produce drop results");

        let mut replica = Replica::bootstrap(ReplicaConfig {
            primary: primary_host.clone(),
            root: rep.0.clone(),
            threads: 2,
            ..ReplicaConfig::default()
        })
        .unwrap();
        assert_eq!(replica.sensor_ids(), vec![0, 1]);

        let rep_server = Server::bind(
            "127.0.0.1:0",
            replica.engine(),
            ServerConfig {
                role: ShardRole::Replica,
                ..config.clone()
            },
        )
        .unwrap();
        let replica_host = rep_server.local_addr().to_string();
        let rep_handle = std::thread::spawn(move || rep_server.run().unwrap());

        let (status, body) = fetch(&replica_host, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        let health = Json::parse(&body).unwrap();
        assert_eq!(health.get("role").and_then(Json::as_str), Some("replica"));
        assert!(
            health.get("applied_lsn").and_then(Json::as_u64).is_some(),
            "replica /healthz must report applied_lsn: {body}"
        );
        assert_eq!(health.get("sensors").and_then(Json::as_u64), Some(2));
        assert_eq!(
            results_of(&replica_host),
            reference,
            "bootstrapped replica must answer byte-identically"
        );

        // Restart the primary with new data: drain (via the flag, so no
        // server-side close leaves the port in TIME_WAIT), ingest the
        // second half of sensor 0 offline, rebind on the same port.
        primary_flag.store(true, Ordering::Release);
        handle.join().unwrap();
        let mut t = TransectIndex::open(&prim.0, 4096).unwrap();
        let rest = TimeSeries::from_parts(
            series0.times()[half..].to_vec(),
            series0.values()[half..].to_vec(),
        );
        t.ingest_series(0, &rest).unwrap();
        t.finish_all().unwrap();
        t.build_indexes_all().unwrap();
        let t = Arc::new(t);
        let server = {
            let mut attempt = 0;
            loop {
                match Server::bind(
                    &primary_host,
                    Engine::transect(Arc::clone(&t), 2),
                    config.clone(),
                ) {
                    Ok(server) => break server,
                    Err(e) if attempt < 40 => {
                        attempt += 1;
                        std::thread::sleep(Duration::from_millis(50));
                        let _ = e;
                    }
                    Err(e) => panic!("rebind {primary_host}: {e}"),
                }
            }
        };
        let handle = std::thread::spawn(move || server.run().unwrap());
        let updated = results_of(&primary_host);
        assert_ne!(updated, reference, "the second half must change the answer");

        // The replica's cursor points at pre-restart history: each round
        // either tails the new frames or, when the restart checkpointed
        // past the cursor, falls back to a full resync of the sensor.
        let mut caught_up = false;
        for _ in 0..50 {
            replica.round().unwrap();
            if results_of(&replica_host) == updated {
                caught_up = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(caught_up, "replica must converge on the restarted primary");

        for host in [&primary_host, &replica_host] {
            let (status, _) = fetch(host, "POST", "/shutdown", None).unwrap();
            assert_eq!(status, 200);
        }
        handle.join().unwrap();
        rep_handle.join().unwrap();
    }
}
