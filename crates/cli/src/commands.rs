//! Command implementations.

use crate::args::Command;
use featurespace::QueryRegion;
use obs::export::Exporter;
use obs::json::Json;
use segdiff::refine::refine_results;
use segdiff::{QueryPlan, SegDiffConfig, SegDiffIndex, TransectIndex};
use sensorgen::{
    generate_sensor, read_csv, smooth::RobustSmoother, write_csv, CadTransectConfig, HOUR,
};
use std::error::Error;
use std::path::Path;

type Anyhow = Box<dyn Error>;

/// Runs one parsed command.
pub fn run(cmd: Command) -> Result<(), Anyhow> {
    match cmd {
        Command::Generate {
            csv,
            days,
            sensor,
            seed,
            raw,
        } => generate(&csv, days, sensor, seed, raw),
        Command::Ingest {
            index,
            csv,
            epsilon,
            window_hours,
            no_smooth,
        } => ingest(&index, &csv, epsilon, window_hours, no_smooth),
        Command::Query {
            index,
            kind,
            v,
            t_hours,
            plan,
            refine,
            limit,
            trace,
            all_sensors,
            threads,
        } => {
            if all_sensors {
                query_all_sensors(&index, &kind, v, t_hours, &plan, limit, threads)
            } else {
                query(
                    &index,
                    &kind,
                    v,
                    t_hours,
                    &plan,
                    refine.as_deref(),
                    limit,
                    trace,
                )
            }
        }
        Command::Stats {
            index,
            json,
            series,
        } => stats(&index, json, series),
        Command::Recover { index, json } => recover(&index, json),
        Command::Metrics { index, json } => metrics(&index, json),
        Command::Sql { index, statement } => sql(&index, &statement),
        Command::Serve {
            index,
            port,
            threads,
            queue_depth,
            all_sensors,
            sensors,
            replica_of,
            poll_ms,
            json,
            sample_ms,
            slow_ms,
            alert_rules,
        } => serve(ServeOpts {
            index,
            port,
            threads,
            queue_depth,
            all_sensors,
            sensors,
            replica_of,
            poll_ms,
            json,
            sample_ms,
            slow_ms,
            alert_rules,
        }),
        Command::Router {
            port,
            threads,
            queue_depth,
            shards,
            health_interval_ms,
            json,
        } => router(
            port,
            threads,
            queue_depth,
            &shards,
            health_interval_ms,
            json,
        ),
        Command::Cluster {
            index,
            shards,
            print_plan,
            port,
            threads,
            json,
        } => cluster(&index, shards, print_plan, port, threads, json),
        Command::Loadgen {
            url,
            concurrency,
            duration_secs,
            kind,
            v,
            t_hours,
            guard,
        } => loadgen(
            &url,
            concurrency,
            duration_secs,
            &kind,
            v,
            t_hours,
            guard.as_deref(),
        ),
        Command::Alerts {
            url,
            json,
            follow,
            after,
            interval_ms,
            iterations,
        } => {
            if follow {
                alerts_follow(&url, after, interval_ms, iterations)
            } else {
                alerts(&url, json)
            }
        }
        Command::Top {
            url,
            interval_ms,
            iterations,
        } => top(&url, interval_ms, iterations),
        Command::Subscribe {
            url,
            list,
            delete,
            kind,
            v,
            t_hours,
            label,
            sensors,
            json,
        } => subscribe(
            &url, list, delete, &kind, v, t_hours, &label, &sensors, json,
        ),
        Command::Watch {
            url,
            sub,
            after,
            interval_ms,
            iterations,
            json,
        } => watch(&url, sub, after, interval_ms, iterations, json),
    }
}

fn generate(csv: &Path, days: u32, sensor: u32, seed: u64, raw: bool) -> Result<(), Anyhow> {
    let cfg = CadTransectConfig::default().with_days(days);
    let mut series = generate_sensor(&cfg, sensor, seed);
    obs::debug!("generated {} raw observations (seed {seed})", series.len());
    if !raw {
        series = RobustSmoother::default().smooth(&series);
        obs::debug!("smoothed to {} observations", series.len());
    }
    write_csv(csv, &series)?;
    println!(
        "wrote {} observations ({} days, sensor {sensor}) to {}",
        series.len(),
        days,
        csv.display()
    );
    Ok(())
}

fn open_or_create(index: &Path, epsilon: f64, window_hours: f64) -> Result<SegDiffIndex, Anyhow> {
    if index.join("segdiff.meta").exists() {
        obs::info!("resuming existing index at {}", index.display());
        Ok(SegDiffIndex::open(index, 4096)?)
    } else {
        obs::info!(
            "creating index at {} (epsilon {epsilon}, window {window_hours} h)",
            index.display()
        );
        let cfg = SegDiffConfig::default()
            .with_epsilon(epsilon)
            .with_window(window_hours * HOUR);
        Ok(SegDiffIndex::create(index, cfg)?)
    }
}

fn ingest(
    index: &Path,
    csv: &Path,
    epsilon: f64,
    window_hours: f64,
    no_smooth: bool,
) -> Result<(), Anyhow> {
    let mut series = read_csv(csv)?;
    if !no_smooth {
        series = RobustSmoother::default().smooth(&series);
    }
    let mut idx = open_or_create(index, epsilon, window_hours)?;
    let before = idx.stats().n_observations;
    idx.ingest_series(&series)?;
    idx.finish()?;
    idx.build_indexes()?;
    let s = idx.stats();
    println!(
        "ingested {} observations (total {}), {} segments (r = {:.2}), {} feature rows",
        s.n_observations - before,
        s.n_observations,
        s.n_segments,
        s.compression_rate(),
        s.n_rows
    );
    Ok(())
}

/// Renders one span of the query trace, `EXPLAIN ANALYZE`-style.
fn print_trace_node(node: &obs::TraceNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let mut attrs = String::new();
    for (k, v) in &node.attrs {
        let rendered = match v {
            Json::Str(s) => s.clone(),
            other => other.to_string_compact(),
        };
        attrs.push_str(&format!("  {k}={rendered}"));
    }
    println!(
        "{indent}-> {}  wall={:.3}ms{attrs}",
        node.name,
        node.wall_nanos as f64 / 1e6
    );
    for child in &node.children {
        print_trace_node(child, depth + 1);
    }
}

#[allow(clippy::too_many_arguments)]
fn query(
    index: &Path,
    kind: &str,
    v: f64,
    t_hours: f64,
    plan: &str,
    refine: Option<&Path>,
    limit: usize,
    trace: bool,
) -> Result<(), Anyhow> {
    let idx = SegDiffIndex::open(index, 4096)?;
    let region = match kind {
        "drop" => QueryRegion::drop(t_hours * HOUR, v),
        _ => QueryRegion::jump(t_hours * HOUR, v),
    };
    let plan = if plan == "index" {
        QueryPlan::Index
    } else {
        QueryPlan::SeqScan
    };
    if trace {
        obs::trace_begin();
    }
    let (results, qstats) = idx.query(&region, plan)?;
    println!(
        "{} periods ({} rows examined, {:.2} ms)",
        results.len(),
        qstats.rows_considered,
        qstats.wall_seconds * 1e3
    );
    if trace {
        if let Some(node) = obs::trace_take() {
            println!();
            print_trace_node(&node, 0);
        }
        // The phase deltas tile the query: summing them must reproduce
        // the pool's total delta. Print both so it can be checked.
        let mut phases = pagestore::PoolStats::default();
        for p in &qstats.phases {
            phases = phases.merged(&p.io);
        }
        let consistent = phases == qstats.io;
        println!(
            "io: phases {}r+{}w ({} hit, {} miss) vs query total {}r+{}w ({} hit, {} miss) => {}",
            phases.physical_reads,
            phases.physical_writes,
            phases.hits,
            phases.misses,
            qstats.io.physical_reads,
            qstats.io.physical_writes,
            qstats.io.hits,
            qstats.io.misses,
            if consistent { "consistent" } else { "MISMATCH" },
        );
        println!();
    }
    for p in results.iter().take(limit) {
        println!(
            "start in [{:.1}, {:.1}]  end in [{:.1}, {:.1}]{}",
            p.t_d,
            p.t_c,
            p.t_b,
            p.t_a,
            if p.is_self_pair() {
                "  (single segment)"
            } else {
                ""
            }
        );
    }
    if results.len() > limit {
        println!("... and {} more (raise --limit)", results.len() - limit);
    }
    if let Some(raw_csv) = refine {
        let series = read_csv(raw_csv)?;
        let refined = refine_results(&series, &results, &region, 24);
        let exact = refined.iter().filter(|e| e.meets_threshold).count();
        println!(
            "\nrefined against {}: {exact}/{} meet the threshold exactly",
            raw_csv.display(),
            refined.len()
        );
        for e in refined.iter().filter(|e| e.meets_threshold).take(limit) {
            println!(
                "event at t = {:.1} .. {:.1}: change {:.3}",
                e.t1, e.t2, e.dv
            );
        }
    }
    Ok(())
}

/// `segdiff query --all-sensors`: fan one query out over every
/// `sensor-<k>/` index under the transect root on a pool of `threads`
/// workers. Results are printed in sensor order, so the output below the
/// timing header is byte-identical for every `--threads` value.
fn query_all_sensors(
    root: &Path,
    kind: &str,
    v: f64,
    t_hours: f64,
    plan: &str,
    limit: usize,
    threads: usize,
) -> Result<(), Anyhow> {
    let transect = TransectIndex::open(root, 4096)?;
    let region = match kind {
        "drop" => QueryRegion::drop(t_hours * HOUR, v),
        _ => QueryRegion::jump(t_hours * HOUR, v),
    };
    let plan = if plan == "index" {
        QueryPlan::Index
    } else {
        QueryPlan::SeqScan
    };
    let (per_sensor, qstats) = transect.query_all_with_threads(&region, plan, threads)?;
    let total: usize = per_sensor.iter().map(Vec::len).sum();
    println!(
        "{total} periods across {} sensors ({} rows examined, {:.2} ms, {threads} thread{})",
        transect.num_sensors(),
        qstats.rows_considered,
        qstats.wall_seconds * 1e3,
        if threads == 1 { "" } else { "s" },
    );
    let mut printed = 0usize;
    for (k, per) in per_sensor.iter().enumerate() {
        println!("sensor {k}: {} periods", per.len());
        for p in per {
            if printed >= limit {
                continue;
            }
            printed += 1;
            println!(
                "  start in [{:.1}, {:.1}]  end in [{:.1}, {:.1}]{}",
                p.t_d,
                p.t_c,
                p.t_b,
                p.t_a,
                if p.is_self_pair() {
                    "  (single segment)"
                } else {
                    ""
                }
            );
        }
    }
    if total > limit {
        println!("... and {} more (raise --limit)", total - limit);
    }
    Ok(())
}

/// `segdiff stats --series`: runs the self-observation sampler over a
/// probe query offline — tick, probe, tick — so the same derived series
/// a running server publishes on `GET /series` (counter rates, interval
/// quantiles, gauges) can be inspected without a server.
fn sampled_series(idx: &SegDiffIndex) -> Result<obs::series::SeriesStore, Anyhow> {
    let store = obs::series::SeriesStore::new(obs::series::DEFAULT_SERIES_CAPACITY);
    let mut sampler = obs::series::SamplerState::new();
    let w = idx.config().window;
    sampler.tick(obs::global(), &store, obs::unix_ms());
    for region in [QueryRegion::drop(w, -0.1), QueryRegion::jump(w, 0.1)] {
        let _ = idx.query(&region, QueryPlan::SeqScan)?;
        let _ = idx.query(&region, QueryPlan::Index);
    }
    // The sampler derives rates and interval quantiles from deltas
    // between ticks, so the clock must advance between them.
    std::thread::sleep(std::time::Duration::from_millis(25));
    sampler.tick(obs::global(), &store, obs::unix_ms());
    Ok(store)
}

fn stats(index: &Path, json: bool, series: bool) -> Result<(), Anyhow> {
    let idx = SegDiffIndex::open(index, 4096)?;
    let s = idx.stats();
    let hist = s.corner_hist();
    let sampled = if series {
        Some(sampled_series(&idx)?)
    } else {
        None
    };
    if json {
        let mut doc = Json::obj([
            ("observations", Json::from(s.n_observations)),
            ("segments", Json::from(s.n_segments)),
            ("compression_rate", Json::from(s.compression_rate())),
            ("feature_rows", Json::from(s.n_rows)),
            ("feature_payload_bytes", Json::from(s.feature_payload_bytes)),
            ("paper_feature_bytes", Json::from(s.paper_feature_bytes)),
            ("heap_bytes", Json::from(s.heap_bytes)),
            ("index_bytes", Json::from(s.index_bytes)),
            ("disk_bytes", Json::from(s.disk_bytes())),
            (
                "corner_hist",
                Json::obj([
                    ("one", Json::from(hist.counts[0])),
                    ("two", Json::from(hist.counts[1])),
                    ("three", Json::from(hist.counts[2])),
                    ("effective", Json::from(hist.effective_corners())),
                ]),
            ),
            (
                "config",
                Json::obj([
                    ("epsilon", Json::from(idx.config().epsilon)),
                    ("window_hours", Json::from(idx.config().window / HOUR)),
                ]),
            ),
            (
                "durability",
                Json::obj([
                    ("wal", Json::Bool(idx.last_checkpoint_lsn().is_some())),
                    (
                        "last_checkpoint_lsn",
                        idx.last_checkpoint_lsn().map_or(Json::Null, Json::from),
                    ),
                    (
                        "recovered",
                        Json::Bool(idx.recovery_report().is_some_and(|r| !r.clean)),
                    ),
                ]),
            ),
        ]);
        if let (Some(store), Json::Object(fields)) = (&sampled, &mut doc) {
            let series_json: Vec<Json> = store
                .names()
                .iter()
                .map(|name| {
                    let last = store.last(name);
                    Json::obj([
                        ("name", Json::from(name.as_str())),
                        ("points", Json::from(store.since(name, 0).len() as u64)),
                        ("last", last.map_or(Json::Null, |p| Json::Float(p.value))),
                    ])
                })
                .collect();
            fields.push(("series".to_string(), Json::Array(series_json)));
        }
        println!("{doc}");
        return Ok(());
    }
    println!("observations:    {}", s.n_observations);
    println!(
        "segments:        {} (r = {:.2})",
        s.n_segments,
        s.compression_rate()
    );
    println!("feature rows:    {}", s.n_rows);
    println!(
        "feature bytes:   {} ({} under the paper's c2 accounting)",
        s.feature_payload_bytes, s.paper_feature_bytes
    );
    println!("heap bytes:      {}", s.heap_bytes);
    println!("index bytes:     {}", s.index_bytes);
    println!(
        "corner cases:    {:.1}% / {:.1}% / {:.1}% (effective {:.2})",
        hist.percent(1),
        hist.percent(2),
        hist.percent(3),
        hist.effective_corners()
    );
    println!(
        "config:          epsilon {}, window {:.1} h",
        idx.config().epsilon,
        idx.config().window / HOUR
    );
    match idx.last_checkpoint_lsn() {
        Some(lsn) => println!(
            "durability:      WAL on, last checkpoint LSN {lsn}{}",
            if idx.recovery_report().is_some_and(|r| !r.clean) {
                " (this open replayed the log)"
            } else {
                ""
            }
        ),
        None => println!("durability:      WAL off"),
    }
    if let Some(store) = &sampled {
        println!("sampled series (probe query, one interval):");
        for name in store.names() {
            let last = store
                .last(&name)
                .map_or("-".to_string(), |p| format!("{:.3}", p.value));
            println!("  {name:<40} {last}");
        }
    }
    Ok(())
}

/// `segdiff recover`: an fsck for index directories. Opening the index
/// runs WAL recovery if the last shutdown was unclean; this then verifies
/// the restored index against its own invariants and reports what
/// recovery did. Exits non-zero if verification fails.
fn recover(index: &Path, json: bool) -> Result<(), Anyhow> {
    let idx = SegDiffIndex::open(index, 4096)?;
    let report = idx.recovery_report().cloned();
    // A crash during index building can leave later B+trees uncreated
    // (the catalog only names finished ones); complete the set so query
    // --plan index works again. Idempotent when nothing is missing.
    idx.build_indexes()?;
    let verified = idx.verify_consistency();
    let segments = idx.stats().n_segments;
    if json {
        let report_json = match &report {
            Some(r) => Json::obj([
                ("clean", Json::Bool(r.clean)),
                ("scanned_records", Json::from(r.scanned_records)),
                ("replayed_pages", Json::from(r.replayed_pages)),
                ("torn_bytes", Json::from(r.torn_bytes)),
                ("truncated_rows", Json::from(r.truncated_rows)),
                ("dropped_indexes", Json::from(r.dropped_indexes)),
                (
                    "pruned_tables",
                    Json::Array(
                        r.pruned_tables
                            .iter()
                            .map(|t| Json::Str(t.clone()))
                            .collect(),
                    ),
                ),
                ("checkpoint_lsn", Json::from(r.checkpoint_lsn)),
                ("last_lsn", Json::from(r.last_lsn)),
            ]),
            None => Json::Null,
        };
        let doc = Json::obj([
            ("wal", Json::Bool(report.is_some())),
            ("recovery", report_json),
            ("segments", Json::from(segments)),
            ("consistent", Json::Bool(verified.is_ok())),
            (
                "error",
                match &verified {
                    Ok(()) => Json::Null,
                    Err(e) => Json::Str(e.to_string()),
                },
            ),
        ]);
        println!("{doc}");
    } else {
        match &report {
            None => println!("wal: off (nothing to recover)"),
            Some(r) if r.clean => {
                println!("wal: clean shutdown, no replay needed");
            }
            Some(r) => {
                println!("wal: unclean shutdown recovered");
                println!("  records scanned:   {}", r.scanned_records);
                println!("  pages replayed:    {}", r.replayed_pages);
                println!("  torn bytes:        {}", r.torn_bytes);
                println!("  rows truncated:    {}", r.truncated_rows);
                println!("  B+trees rebuilt:   {}", r.dropped_indexes);
                if !r.pruned_tables.is_empty() {
                    println!("  tables pruned:     {}", r.pruned_tables.join(", "));
                }
                println!(
                    "  LSNs:              checkpoint {} .. last {}",
                    r.checkpoint_lsn, r.last_lsn
                );
            }
        }
        println!("segments: {segments}");
        match &verified {
            Ok(()) => println!("consistency: ok (segment chain + feature replay verified)"),
            Err(e) => println!("consistency: FAILED: {e}"),
        }
    }
    verified?;
    Ok(())
}

/// Opens the index, runs one representative query per plan against it,
/// and dumps everything the telemetry registry collected — pool and
/// B+tree counters, ingest counters, and per-span latency histograms.
fn metrics(index: &Path, json: bool) -> Result<(), Anyhow> {
    let idx = SegDiffIndex::open(index, 4096)?;
    let w = idx.config().window;
    // A permissive probe region so the probe touches all three tables.
    for region in [QueryRegion::drop(w, -0.1), QueryRegion::jump(w, 0.1)] {
        let _ = idx.query(&region, QueryPlan::SeqScan)?;
        // Also exercise the B+tree path when indexes exist (they may not,
        // for an index built before `ingest` created them).
        let _ = idx.query(&region, QueryPlan::Index);
    }
    let snapshot = obs::global().snapshot();
    let rendered = if json {
        obs::export::JsonLinesExporter::default().export(&snapshot)
    } else {
        obs::export::TextExporter.export(&snapshot)
    };
    print!("{rendered}");
    Ok(())
}

fn render_registry(json: bool) -> String {
    let snapshot = obs::global().snapshot();
    if json {
        obs::export::JsonLinesExporter::default().export(&snapshot)
    } else {
        obs::export::TextExporter.export(&snapshot)
    }
}

/// Everything `segdiff serve` parses, bundled so the four serving modes
/// (single index, full transect, shard subset, warm replica) share one
/// signature.
struct ServeOpts {
    index: std::path::PathBuf,
    port: u16,
    threads: usize,
    queue_depth: usize,
    all_sensors: bool,
    sensors: Vec<u32>,
    replica_of: Option<String>,
    poll_ms: u64,
    json: bool,
    sample_ms: u64,
    slow_ms: u64,
    alert_rules: Option<std::path::PathBuf>,
}

/// Spawns the thread bridging SIGINT/SIGTERM into a shutdown flag. The
/// watcher also exits when the flag is set another way (POST /shutdown).
fn bridge_signals(flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
    use segdiff_server::server::signal;
    use std::sync::atomic::Ordering;

    std::thread::spawn(move || loop {
        if signal::triggered() {
            obs::info!("signal received; draining");
            flag.store(true, Ordering::Release);
            return;
        }
        if flag.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

fn serve(opts: ServeOpts) -> Result<(), Anyhow> {
    use segdiff_server::loadgen::parse_url;
    use segdiff_server::server::signal;
    use segdiff_server::{Engine, Replica, ReplicaConfig, Server, ServerConfig, ShardRole};
    use std::sync::Arc;

    // A replica bootstraps its store from the primary before binding, so
    // the first request already sees data; the tail thread below keeps
    // it warm afterwards.
    let replica = match &opts.replica_of {
        Some(url) => {
            let primary = parse_url(url)?;
            obs::info!(
                "bootstrapping replica of http://{primary} into {}",
                opts.index.display()
            );
            Some(Replica::bootstrap(ReplicaConfig {
                primary,
                root: opts.index.clone(),
                threads: opts.threads,
                poll: std::time::Duration::from_millis(opts.poll_ms),
                ..ReplicaConfig::default()
            })?)
        }
        None => None,
    };
    let engine = match &replica {
        Some(r) => r.engine(),
        None if !opts.sensors.is_empty() => Engine::transect(
            Arc::new(TransectIndex::open_subset(
                &opts.index,
                4096,
                &opts.sensors,
            )?),
            opts.threads,
        ),
        None if opts.all_sensors => Engine::transect(
            Arc::new(TransectIndex::open(&opts.index, 4096)?),
            opts.threads,
        ),
        None => Engine::from(Arc::new(SegDiffIndex::open(&opts.index, 4096)?)),
    };
    let rules = match &opts.alert_rules {
        Some(path) => segdiff::alerts::AlertRuleSet::load(path)?,
        None => segdiff::alerts::AlertRuleSet::defaults(),
    };
    signal::install();
    let role = if replica.is_some() {
        ShardRole::Replica
    } else {
        ShardRole::Primary
    };
    let server = Server::bind(
        &format!("127.0.0.1:{}", opts.port),
        engine.clone(),
        ServerConfig {
            threads: opts.threads,
            queue_depth: opts.queue_depth,
            sample_period: std::time::Duration::from_millis(opts.sample_ms),
            slow_trace: std::time::Duration::from_millis(opts.slow_ms),
            alert_rules: rules,
            role,
            ..ServerConfig::default()
        },
    )?;
    let flag = server.shutdown_flag();
    bridge_signals(Arc::clone(&flag));
    // The WAL tail shares the server's shutdown flag, so one drain stops
    // both the HTTP workers and the shipping loop.
    let tail = replica.map(|r| {
        let flag = Arc::clone(&flag);
        std::thread::spawn(move || r.run(flag))
    });
    println!(
        "listening on http://{} ({}, {} sensor{}, {} worker thread{}, queue depth {})",
        server.local_addr(),
        role.name(),
        engine.num_sensors(),
        if engine.num_sensors() == 1 { "" } else { "s" },
        opts.threads,
        if opts.threads == 1 { "" } else { "s" },
        opts.queue_depth,
    );
    server.run()?;
    if let Some(tail) = tail {
        let _ = tail.join();
    }
    // Drained: no query is in flight. A primary flushes dirty pages (a
    // replica's store is a disposable copy the tail thread re-syncs);
    // both print the final registry snapshot like `segdiff metrics`.
    if role == ShardRole::Primary {
        engine.flush()?;
    }
    println!("shutdown complete; final telemetry:");
    print!("{}", render_registry(opts.json));
    Ok(())
}

/// `segdiff router`: the cluster front-end. Owns no data — consistent-
/// hashes sensors over the configured shards and scatter–gathers every
/// `POST /query` (see the `router` crate).
fn router(
    port: u16,
    threads: usize,
    queue_depth: usize,
    shards: &[String],
    health_interval_ms: u64,
    json: bool,
) -> Result<(), Anyhow> {
    use router::{Router, RouterConfig, ShardSpec};
    use segdiff_server::loadgen::parse_url;
    use segdiff_server::server::signal;

    let mut specs = Vec::new();
    for spec in shards {
        let mut parts = spec.splitn(3, ',');
        let primary = parse_url(parts.next().unwrap_or_default())?;
        let replica = parts.next().map(parse_url).transpose()?;
        if parts.next().is_some() {
            return Err(format!("--shard takes PRIMARY[,REPLICA], got {spec:?}").into());
        }
        specs.push(ShardSpec { primary, replica });
    }
    signal::install();
    let with_replica = specs.iter().filter(|s| s.replica.is_some()).count();
    let router = Router::bind(
        &format!("127.0.0.1:{port}"),
        RouterConfig {
            shards: specs,
            threads,
            queue_depth,
            health_interval: std::time::Duration::from_millis(health_interval_ms),
            ..RouterConfig::default()
        },
    )?;
    bridge_signals(router.shutdown_flag());
    println!(
        "router listening on http://{} ({} shard{}, {with_replica} with replicas, probing every {health_interval_ms} ms)",
        router.local_addr(),
        router.board().num_shards(),
        if router.board().num_shards() == 1 { "" } else { "s" },
    );
    router.run()?;
    println!("shutdown complete; final telemetry:");
    print!("{}", render_registry(json));
    Ok(())
}

/// `segdiff cluster`: one-process quickstart for the sharded tier.
/// Partitions the transect's sensors over N shards with the same
/// consistent-hash ring the router uses, runs each shard as an
/// in-process server on an ephemeral port, and fronts them with a
/// router on `--port`. `--print-plan` prints the ring assignment as
/// JSON instead of serving (scripts use it to build per-shard stores).
fn cluster(
    index: &Path,
    shards: usize,
    print_plan: bool,
    port: u16,
    threads: usize,
    json: bool,
) -> Result<(), Anyhow> {
    use router::{Ring, Router, RouterConfig, ShardSpec};
    use segdiff_server::server::signal;
    use segdiff_server::{Engine, Server, ServerConfig};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    let ids = TransectIndex::scan_ids(index)?;
    if ids.is_empty() {
        return Err(format!("no sensor-<k>/ stores under {}", index.display()).into());
    }
    let ring = Ring::new(shards);
    let buckets = ring.partition(&ids);
    if print_plan {
        let assignment: Vec<Json> = buckets
            .iter()
            .enumerate()
            .map(|(shard, bucket)| {
                Json::obj([
                    ("shard", Json::from(shard as u64)),
                    (
                        "sensors",
                        Json::Array(bucket.iter().map(|&s| Json::from(u64::from(s))).collect()),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("shards", Json::from(shards as u64)),
            ("sensors", Json::from(ids.len() as u64)),
            ("assignment", Json::Array(assignment)),
        ]);
        println!("{doc}");
        return Ok(());
    }

    // The router's ring index must line up with the shard list, so an
    // empty bucket cannot simply be skipped — and a store cannot be
    // opened over zero sensors. Refuse: the operator asked for more
    // shards than the data can fill.
    if let Some((shard, _)) = buckets.iter().enumerate().find(|(_, b)| b.is_empty()) {
        return Err(format!(
            "shard {shard} would own no sensors ({} sensors over {shards} shards); use fewer shards",
            ids.len()
        )
        .into());
    }

    signal::install();
    let mut specs = Vec::new();
    let mut engines = Vec::new();
    let mut flags = Vec::new();
    let mut handles = Vec::new();
    for (shard, bucket) in buckets.iter().enumerate() {
        let engine = Engine::transect(
            Arc::new(TransectIndex::open_subset(index, 4096, bucket)?),
            threads,
        );
        let server = Server::bind(
            "127.0.0.1:0",
            engine.clone(),
            ServerConfig {
                threads,
                queue_depth: 64,
                ..ServerConfig::default()
            },
        )?;
        let addr = server.local_addr().to_string();
        println!("shard {shard}: http://{addr} ({} sensors)", bucket.len());
        specs.push(ShardSpec {
            primary: addr,
            replica: None,
        });
        engines.push(engine);
        flags.push(server.shutdown_flag());
        handles.push(std::thread::spawn(move || server.run()));
    }

    let router = Router::bind(
        &format!("127.0.0.1:{port}"),
        RouterConfig {
            shards: specs,
            threads,
            ..RouterConfig::default()
        },
    )?;
    bridge_signals(router.shutdown_flag());
    println!(
        "cluster ready: router at http://{} over {shards} shard{} ({} sensors)",
        router.local_addr(),
        if shards == 1 { "" } else { "s" },
        ids.len()
    );
    let run_result = router.run();
    // Router drained (signal or POST /shutdown): drain the shards too.
    for flag in &flags {
        flag.store(true, Ordering::Release);
    }
    for handle in handles {
        match handle.join() {
            Ok(r) => r?,
            Err(_) => return Err("shard server thread panicked".into()),
        }
    }
    run_result?;
    for engine in &engines {
        engine.flush()?;
    }
    println!("shutdown complete; final telemetry:");
    print!("{}", render_registry(json));
    Ok(())
}

fn loadgen(
    url: &str,
    concurrency: usize,
    duration_secs: f64,
    kind: &str,
    v: f64,
    t_hours: f64,
    guard: Option<&Path>,
) -> Result<(), Anyhow> {
    use segdiff_server::loadgen::{fetch, parse_url, query_mix, run as run_load};
    use segdiff_server::LoadgenConfig;

    let host = parse_url(url)?;
    let bodies = query_mix(kind, v, t_hours);
    println!(
        "loadgen: {concurrency} closed-loop worker{} x {duration_secs} s against http://{host} \
         ({} distinct queries)",
        if concurrency == 1 { "" } else { "s" },
        bodies.len()
    );
    let report = run_load(&LoadgenConfig {
        host: host.clone(),
        concurrency,
        duration: std::time::Duration::from_secs_f64(duration_secs),
        bodies: bodies.clone(),
    })?;
    let l = report.latency;
    let ms = |nanos: u64| nanos as f64 / 1e6;
    println!(
        "requests: {} ok, {} non-2xx, {} errors in {:.2} s => {:.1} qps",
        report.ok,
        report.non_2xx,
        report.errors,
        report.elapsed,
        report.qps()
    );
    println!(
        "latency:  p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
        ms(l.p50),
        ms(l.p90),
        ms(l.p99),
        ms(l.max)
    );
    // Transport errors broken down by query body, so a run that only
    // fails on one endpoint shape says which one.
    for (body, errors) in bodies.iter().zip(&report.errors_by_body) {
        if *errors > 0 {
            println!(
                "errors:   {errors} transport error{} on {body}",
                if *errors == 1 { "" } else { "s" }
            );
        }
    }
    // Best-effort server-side cache view, so a run shows whether the
    // repeat queries actually hit the result cache.
    if let Ok((200, text)) = fetch(&host, "GET", "/metrics?format=json", None) {
        let value_of = |name: &str| -> u64 {
            text.lines()
                .filter_map(|line| Json::parse(line).ok())
                .filter(|j| j.get("name").and_then(Json::as_str) == Some(name))
                .filter_map(|j| j.get("value").and_then(Json::as_u64))
                .sum()
        };
        println!(
            "server:   cache.hit {}  cache.miss {}  server.rejected {}",
            value_of("cache.hit"),
            value_of("cache.miss"),
            value_of("server.rejected")
        );
    }
    if let Some(guard_path) = guard {
        let text = std::fs::read_to_string(guard_path)
            .map_err(|e| format!("guard file {}: {e}", guard_path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("guard file: {e}"))?;
        let max_p99_ms = doc
            .get("max_p99_ms")
            .and_then(Json::as_f64)
            .ok_or("guard file needs a numeric max_p99_ms field")?;
        if ms(l.p99) > max_p99_ms {
            return Err(format!(
                "p99 {:.2} ms exceeds guard limit {max_p99_ms:.2} ms",
                ms(l.p99)
            )
            .into());
        }
        println!(
            "guard:    p99 {:.2} ms within limit {max_p99_ms:.2} ms",
            ms(l.p99)
        );
    }
    if report.errors > 0 || report.non_2xx > 0 {
        return Err(format!(
            "{} transport errors, {} non-2xx responses",
            report.errors, report.non_2xx
        )
        .into());
    }
    if report.ok == 0 {
        return Err("no request completed".into());
    }
    Ok(())
}

/// `segdiff alerts`: the server's standing drop/jump rules and every
/// alert they have fired, straight from `GET /alerts`.
fn alerts(url: &str, json: bool) -> Result<(), Anyhow> {
    use segdiff_server::loadgen::{fetch, parse_url};

    let host = parse_url(url)?;
    let (status, body) = fetch(&host, "GET", "/alerts", None)?;
    if status != 200 {
        return Err(format!("GET /alerts returned {status}: {body}").into());
    }
    if json {
        println!("{body}");
        return Ok(());
    }
    let doc = Json::parse(&body).map_err(|e| format!("bad /alerts response: {e}"))?;
    let empty = Vec::new();
    let rules = doc.get("rules").and_then(Json::as_array).unwrap_or(&empty);
    println!("standing rules ({}):", rules.len());
    for r in rules {
        let f = |k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
        println!(
            "  {:<20} {:<5} on {:<28} V={:<8} T={:.0}s  epsilon={} scale={}",
            r.get("name").and_then(Json::as_str).unwrap_or("?"),
            r.get("kind").and_then(Json::as_str).unwrap_or("?"),
            r.get("metric").and_then(Json::as_str).unwrap_or("?"),
            f("v"),
            f("t_seconds"),
            f("epsilon"),
            f("scale"),
        );
    }
    let alerts = doc.get("alerts").and_then(Json::as_array).unwrap_or(&empty);
    if alerts.is_empty() {
        println!("no alerts fired");
        return Ok(());
    }
    println!("fired ({}):", alerts.len());
    for a in alerts {
        println!("  {}", alert_line(a));
    }
    Ok(())
}

/// Renders one fired alert from the `/alerts` JSON as a text line.
fn alert_line(a: &Json) -> String {
    let f = |k: &str| a.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    format!(
        "[{}] {} {} on {}: dv={:.2} start in [{:.0}, {:.0}] end in [{:.0}, {:.0}]",
        a.get("fired_at_ms").and_then(Json::as_u64).unwrap_or(0),
        a.get("rule").and_then(Json::as_str).unwrap_or("?"),
        a.get("kind").and_then(Json::as_str).unwrap_or("?"),
        a.get("metric").and_then(Json::as_str).unwrap_or("?"),
        f("dv"),
        f("t_d"),
        f("t_c"),
        f("t_b"),
        f("t_a"),
    )
}

/// `segdiff alerts --follow`: tails the server's sequenced alert log over
/// the `/alerts?after=` cursor, printing each alert exactly once. The
/// cursor never repeats an alert; if the server's bounded log overflows
/// between polls, the missed alerts show up as sequence gaps.
fn alerts_follow(url: &str, after: u64, interval_ms: u64, iterations: u64) -> Result<(), Anyhow> {
    use segdiff_server::loadgen::{fetch, parse_url};

    let host = parse_url(url)?;
    let mut cursor = after;
    let mut polls = 0u64;
    loop {
        polls += 1;
        let (status, body) = fetch(&host, "GET", &format!("/alerts?after={cursor}"), None)?;
        if status != 200 {
            return Err(format!("GET /alerts returned {status}: {body}").into());
        }
        let doc = Json::parse(&body).map_err(|e| format!("bad /alerts response: {e}"))?;
        let empty = Vec::new();
        for a in doc.get("alerts").and_then(Json::as_array).unwrap_or(&empty) {
            println!(
                "seq={} {}",
                a.get("seq").and_then(Json::as_u64).unwrap_or(0),
                alert_line(a)
            );
        }
        cursor = doc
            .get("next_after")
            .and_then(Json::as_u64)
            .unwrap_or(cursor);
        if iterations > 0 && polls >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// One `segdiff top` frame: the headline series, alert count, and the
/// slowest recent requests, all fetched from the server's observability
/// routes.
fn top_frame(host: &str) -> Result<String, Anyhow> {
    use segdiff_server::loadgen::fetch;

    let mut out = String::new();
    let last_of = |name: &str| -> Option<f64> {
        let (status, body) =
            fetch(host, "GET", &format!("/series?name={name}&window=5m"), None).ok()?;
        if status != 200 {
            return None;
        }
        let doc = Json::parse(&body).ok()?;
        doc.get("points")?
            .as_array()?
            .last()?
            .get("value")
            .and_then(Json::as_f64)
    };
    let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.2}"));
    out.push_str(&format!(
        "qps {:<10} inflight {:<6} queue {:<6} resident pages {}\n",
        fmt(last_of("server.queries.rate")),
        fmt(last_of("server.inflight")),
        fmt(last_of("server.queue_depth")),
        fmt(last_of("pool.resident_pages")),
    ));
    let ms = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{:.2}ms", x / 1e6));
    out.push_str(&format!(
        "query latency p50 {:<12} p99 {}\n",
        ms(last_of("server.query_nanos.p50")),
        ms(last_of("server.query_nanos.p99")),
    ));
    let (status, body) = fetch(host, "GET", "/alerts", None)?;
    if status == 200 {
        let doc = Json::parse(&body).map_err(|e| format!("bad /alerts response: {e}"))?;
        let fired = doc.get("fired").and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!("alerts fired: {fired}"));
        if let Some(last) = doc
            .get("alerts")
            .and_then(Json::as_array)
            .and_then(|a| a.last())
        {
            out.push_str(&format!(
                "  (latest: {} on {})",
                last.get("rule").and_then(Json::as_str).unwrap_or("?"),
                last.get("metric").and_then(Json::as_str).unwrap_or("?"),
            ));
        }
        out.push('\n');
    }
    let (status, body) = fetch(host, "GET", "/debug/traces?ring=slow&n=3", None)?;
    if status == 200 {
        let doc = Json::parse(&body).map_err(|e| format!("bad /debug/traces response: {e}"))?;
        let empty = Vec::new();
        let traces = doc.get("traces").and_then(Json::as_array).unwrap_or(&empty);
        out.push_str(&format!("slow/error traces retained: {}\n", traces.len()));
        for t in traces {
            out.push_str(&format!(
                "  #{} {} {:.2}ms status {}\n",
                t.get("trace_id").and_then(Json::as_u64).unwrap_or(0),
                t.get("name").and_then(Json::as_str).unwrap_or("?"),
                t.get("wall_nanos").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6,
                t.get("status").and_then(Json::as_u64).unwrap_or(0),
            ));
        }
    }
    Ok(out)
}

/// `segdiff top`: a periodically refreshing view of the server watching
/// itself. `--iterations N` renders N frames and exits (0 = run until
/// interrupted); each frame is one screenful, separated by a rule line
/// so the output also reads fine in a pipe.
fn top(url: &str, interval_ms: u64, iterations: u64) -> Result<(), Anyhow> {
    use segdiff_server::loadgen::parse_url;

    let host = parse_url(url)?;
    let mut frame = 0u64;
    loop {
        frame += 1;
        match top_frame(&host) {
            Ok(body) => {
                println!("--- segdiff top @ {host} (frame {frame}) ---");
                print!("{body}");
            }
            Err(e) => println!("--- segdiff top @ {host} (frame {frame}): {e} ---"),
        }
        if iterations > 0 && frame >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `segdiff subscribe`: register a standing query region on a running
/// server (or `--list` / `--delete ID` to manage existing ones). The
/// server evaluates every committed feature against the region and
/// queues notifications behind the per-subscription cursor that
/// `segdiff watch` follows.
#[allow(clippy::too_many_arguments)]
fn subscribe(
    url: &str,
    list: bool,
    delete: Option<u64>,
    kind: &str,
    v: f64,
    t_hours: f64,
    label: &str,
    sensors: &[u32],
    json: bool,
) -> Result<(), Anyhow> {
    use segdiff_server::loadgen::{fetch, parse_url};

    let host = parse_url(url)?;
    if list {
        let (status, body) = fetch(&host, "GET", "/subscribe", None)?;
        if status != 200 {
            return Err(format!("GET /subscribe returned {status}: {body}").into());
        }
        if json {
            println!("{body}");
            return Ok(());
        }
        let doc = Json::parse(&body).map_err(|e| format!("bad /subscribe response: {e}"))?;
        let empty = Vec::new();
        let subs = doc
            .get("subscriptions")
            .and_then(Json::as_array)
            .unwrap_or(&empty);
        println!("standing queries ({}):", subs.len());
        for s in subs {
            let sensor_list = s
                .get("sensors")
                .and_then(Json::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_u64)
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_default();
            println!(
                "  #{} {:<20} {:<5} V={:<8} T={:.0}s  sensors=[{}]",
                s.get("id").and_then(Json::as_u64).unwrap_or(0),
                s.get("label").and_then(Json::as_str).unwrap_or("-"),
                s.get("kind").and_then(Json::as_str).unwrap_or("?"),
                s.get("v").and_then(Json::as_f64).unwrap_or(f64::NAN),
                s.get("t").and_then(Json::as_f64).unwrap_or(f64::NAN),
                sensor_list,
            );
        }
        for st in doc
            .get("sensors")
            .and_then(Json::as_array)
            .unwrap_or(&empty)
        {
            println!(
                "  sensor {}: {} matching events seen (~{:.2}/h)",
                st.get("sensor").and_then(Json::as_u64).unwrap_or(0),
                st.get("events").and_then(Json::as_u64).unwrap_or(0),
                st.get("expected_per_hour")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            );
        }
        return Ok(());
    }
    if let Some(id) = delete {
        let (status, body) = fetch(&host, "DELETE", &format!("/subscribe/{id}"), None)?;
        if status != 200 {
            return Err(format!("DELETE /subscribe/{id} returned {status}: {body}").into());
        }
        if json {
            println!("{body}");
        } else {
            println!("unsubscribed #{id}");
        }
        return Ok(());
    }
    let mut fields = vec![
        ("kind".to_string(), Json::from(kind)),
        ("v".to_string(), Json::from(v)),
        ("t_hours".to_string(), Json::from(t_hours)),
    ];
    if !label.is_empty() {
        fields.push(("label".to_string(), Json::from(label)));
    }
    if !sensors.is_empty() {
        fields.push((
            "sensors".to_string(),
            Json::Array(sensors.iter().map(|&s| Json::from(u64::from(s))).collect()),
        ));
    }
    let body = Json::Object(fields).to_string_compact();
    let (status, resp) = fetch(&host, "POST", "/subscribe", Some(&body))?;
    if status != 200 {
        return Err(format!("POST /subscribe returned {status}: {resp}").into());
    }
    if json {
        println!("{resp}");
        return Ok(());
    }
    let doc = Json::parse(&resp).map_err(|e| format!("bad /subscribe response: {e}"))?;
    let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
    println!(
        "subscribed #{id} ({kind} V={v} T={:.0}s); follow it with: segdiff watch --url {url} --sub {id}",
        t_hours * HOUR,
    );
    Ok(())
}

/// `segdiff watch`: follows one subscription's notification cursor via
/// `GET /notifications?sub=&after=`, printing each match exactly once.
/// The cursor survives reconnects — re-run with `--after N` to resume
/// where a previous watch left off.
fn watch(
    url: &str,
    sub: u64,
    after: u64,
    interval_ms: u64,
    iterations: u64,
    json: bool,
) -> Result<(), Anyhow> {
    use segdiff_server::loadgen::{fetch, parse_url};

    let host = parse_url(url)?;
    let (status, body) = fetch(&host, "GET", &format!("/subscribe/{sub}"), None)?;
    if status != 200 {
        return Err(format!("GET /subscribe/{sub} returned {status}: {body}").into());
    }
    if !json {
        let doc = Json::parse(&body).map_err(|e| format!("bad /subscribe response: {e}"))?;
        println!(
            "watching #{sub} {} ({} V={} T={:.0}s) from seq {after}",
            doc.get("label").and_then(Json::as_str).unwrap_or("-"),
            doc.get("kind").and_then(Json::as_str).unwrap_or("?"),
            doc.get("v").and_then(Json::as_f64).unwrap_or(f64::NAN),
            doc.get("t").and_then(Json::as_f64).unwrap_or(f64::NAN),
        );
    }
    let mut cursor = after;
    let mut polls = 0u64;
    loop {
        polls += 1;
        let path = format!("/notifications?sub={sub}&after={cursor}&max=1000");
        let (status, body) = fetch(&host, "GET", &path, None)?;
        if status != 200 {
            return Err(format!("GET /notifications returned {status}: {body}").into());
        }
        let doc = Json::parse(&body).map_err(|e| format!("bad /notifications response: {e}"))?;
        let empty = Vec::new();
        for n in doc
            .get("notifications")
            .and_then(Json::as_array)
            .unwrap_or(&empty)
        {
            if json {
                println!("{}", n.to_string_compact());
                continue;
            }
            let f = |k: &str| n.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
            println!(
                "seq={} sensor={} {}: dv={:.2} start in [{:.0}, {:.0}] end in [{:.0}, {:.0}] committed={}",
                n.get("seq").and_then(Json::as_u64).unwrap_or(0),
                n.get("sensor").and_then(Json::as_u64).unwrap_or(0),
                n.get("kind").and_then(Json::as_str).unwrap_or("?"),
                f("dv"),
                f("t_d"),
                f("t_c"),
                f("t_b"),
                f("t_a"),
                n.get("committed_ms").and_then(Json::as_u64).unwrap_or(0),
            );
        }
        cursor = doc
            .get("next_after")
            .and_then(Json::as_u64)
            .unwrap_or(cursor);
        if iterations > 0 && polls >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn sql(index: &Path, statement: &str) -> Result<(), Anyhow> {
    let idx = SegDiffIndex::open(index, 4096)?;
    match idx.database().execute(statement)? {
        pagestore::ExecOutcome::Created => println!("ok"),
        pagestore::ExecOutcome::Inserted(n) => println!("inserted {n} rows"),
        pagestore::ExecOutcome::Count { count, plan } => {
            println!("count: {count}  (plan: {plan:?})")
        }
        pagestore::ExecOutcome::Rows {
            columns,
            rows,
            plan,
        } => {
            println!("-- plan: {plan:?}");
            println!("{}", columns.join(","));
            for row in rows {
                let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                println!("{}", cells.join(","));
            }
        }
    }
    Ok(())
}
