//! Minimal CSV import/export for [`TimeSeries`].
//!
//! The format is two columns, `time,value`, with an optional header line.
//! This keeps examples self-contained without pulling in a CSV dependency.

use crate::TimeSeries;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced by [`read_csv`].
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is not `time,value` with both fields parseable as `f64`.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending line's content.
        content: String,
    },
    /// Time stamps were not strictly increasing.
    NonMonotone {
        /// 1-based line number where monotonicity broke.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, content } => {
                write!(f, "line {line}: cannot parse `{content}` as time,value")
            }
            CsvError::NonMonotone { line } => {
                write!(f, "line {line}: time stamps must be strictly increasing")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `series` as `time,value` CSV with a header.
pub fn write_csv(path: &Path, series: &TimeSeries) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "time,value")?;
    for (t, v) in series.iter() {
        writeln!(w, "{t},{v}")?;
    }
    w.flush()
}

/// Reads a `time,value` CSV (header optional) into a [`TimeSeries`].
pub fn read_csv(path: &Path) -> Result<TimeSeries, CsvError> {
    let r = BufReader::new(File::open(path)?);
    let mut out = TimeSeries::new();
    let mut last_t = f64::NEG_INFINITY;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (idx == 0 && trimmed.starts_with("time")) {
            continue;
        }
        let mut parts = trimmed.splitn(2, ',');
        let (a, b) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        let (t, v) = match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
            (Ok(t), Ok(v)) if t.is_finite() && v.is_finite() => (t, v),
            _ => {
                return Err(CsvError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        if t <= last_t {
            return Err(CsvError::NonMonotone { line: idx + 1 });
        }
        last_t = t;
        out.push(t, v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sensorgen-csv-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let s: TimeSeries = (0..100)
            .map(|i| (i as f64 * 2.5, (i as f64).sin()))
            .collect();
        let p = tmp("roundtrip.csv");
        write_csv(&p, &s).unwrap();
        let r = read_csv(&p).unwrap();
        assert_eq!(s.len(), r.len());
        for i in 0..s.len() {
            assert_eq!(s.get(i), r.get(i));
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn reads_without_header() {
        let p = tmp("noheader.csv");
        std::fs::write(&p, "0,1.5\n10,2.5\n").unwrap();
        let r = read_csv(&p).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(1), (10.0, 2.5));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_garbage() {
        let p = tmp("garbage.csv");
        std::fs::write(&p, "time,value\n0,1.5\nnot,a number\n").unwrap();
        match read_csv(&p) {
            Err(CsvError::Parse { line: 3, .. }) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_non_monotone() {
        let p = tmp("monotone.csv");
        std::fs::write(&p, "0,1\n10,2\n5,3\n").unwrap();
        match read_csv(&p) {
            Err(CsvError::NonMonotone { line: 3 }) => {}
            other => panic!("expected monotonicity error, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn skips_blank_lines() {
        let p = tmp("blank.csv");
        let mut f = File::create(&p).unwrap();
        writeln!(f, "time,value").unwrap();
        writeln!(f, "0,1").unwrap();
        writeln!(f).unwrap();
        writeln!(f, "10,2").unwrap();
        drop(f);
        assert_eq!(read_csv(&p).unwrap().len(), 2);
        std::fs::remove_file(&p).ok();
    }
}
