//! Property tests for the feature-space geometry.
//!
//! The central claims (Lemma 3 and the case analysis of §4.3.1) are checked
//! empirically here:
//!
//! 1. the four corners really form a parallelogram;
//! 2. every cross-pair feature point lies inside it;
//! 3. **exactness at ε = 0**: the extracted 1–3 corner boundary intersects a
//!    query region iff the full parallelogram does — no false negatives
//!    against sampled events, and every reported intersection has a witness
//!    point inside both the parallelogram and the region;
//! 4. growing ε never loses results (monotonicity of the shift + prune).

use crate::{extract_boundary, point_in_region, FeaturePoint, Parallelogram, QueryRegion};
use proptest::prelude::*;
use segmentation::Segment;

/// A random non-overlapping segment pair (earlier cd, later ab).
fn arb_pair() -> impl Strategy<Value = (Segment, Segment)> {
    (
        -50.0f64..50.0, // v_d
        -50.0f64..50.0, // v_c
        -50.0f64..50.0, // v_b
        -50.0f64..50.0, // v_a
        0.1f64..100.0,  // cd duration
        0.0f64..50.0,   // gap
        0.1f64..100.0,  // ab duration
    )
        .prop_map(|(vd, vc, vb, va, d1, gap, d2)| {
            let cd = Segment::new(0.0, vd, d1, vc);
            let ab = Segment::new(d1 + gap, vb, d1 + gap + d2, va);
            (cd, ab)
        })
}

fn arb_region() -> impl Strategy<Value = QueryRegion> {
    (0.1f64..250.0, 0.01f64..60.0, any::<bool>()).prop_map(|(t, mag, is_drop)| {
        if is_drop {
            QueryRegion::drop(t, -mag)
        } else {
            QueryRegion::jump(t, mag)
        }
    })
}

/// Feature points of a grid of cross pairs (point on cd, point on ab).
fn grid_features(cd: &Segment, ab: &Segment, steps: usize) -> Vec<FeaturePoint> {
    let mut out = Vec::with_capacity((steps + 1) * (steps + 1));
    for i in 0..=steps {
        let tc = cd.t_start + cd.duration() * i as f64 / steps as f64;
        for j in 0..=steps {
            let tb = ab.t_start + ab.duration() * j as f64 / steps as f64;
            out.push(FeaturePoint::of_pair(
                tc,
                cd.value_at(tc),
                tb,
                ab.value_at(tb),
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn corners_form_parallelogram((cd, ab) in arb_pair()) {
        let p = Parallelogram::from_pair(&cd, &ab);
        let e1 = p.bd - p.bc;
        let e2 = p.ad - p.ac;
        prop_assert!((e1.dt - e2.dt).abs() < 1e-9);
        prop_assert!((e1.dv - e2.dv).abs() < 1e-9);
    }

    #[test]
    fn lemma3_cross_pairs_inside((cd, ab) in arb_pair()) {
        let p = Parallelogram::from_pair(&cd, &ab);
        for q in grid_features(&cd, &ab, 7) {
            prop_assert!(p.contains(q, 1e-6), "{q:?} escaped {p:?}");
        }
    }

    /// No false negatives at eps = 0: if any sampled cross-pair event falls
    /// in the region, the stored boundary must report an intersection.
    #[test]
    fn boundary_complete_at_eps0((cd, ab) in arb_pair(), region in arb_region()) {
        let features = grid_features(&cd, &ab, 7);
        let hit = features.iter().any(|&q| region.contains(q));
        if hit {
            let b = extract_boundary(&cd, &ab, 0.0, region.kind);
            prop_assert!(b.is_some(), "pruned a pair with an in-region event");
            prop_assert!(b.unwrap().intersects(&region));
        }
    }

    /// Soundness at eps = 0: a reported intersection has a witness feature
    /// point inside both the parallelogram and the (closed) region.
    #[test]
    fn boundary_sound_at_eps0((cd, ab) in arb_pair(), region in arb_region()) {
        let Some(b) = extract_boundary(&cd, &ab, 0.0, region.kind) else { return Ok(()); };
        if !b.intersects(&region) {
            return Ok(());
        }
        let para = Parallelogram::from_pair(&cd, &ab);
        // Find the witness: an in-region corner, or an edge crossing point.
        let mut witness = b
            .corners()
            .iter()
            .copied()
            .find(|&p| point_in_region(p, &region));
        if witness.is_none() {
            for w in b.corners().windows(2) {
                if crate::edge_crosses_region(w[0], w[1], &region) {
                    let (p1, p2) = (w[0], w[1]);
                    let dv_at_t = p1.dv + (p2.dv - p1.dv) / (p2.dt - p1.dt) * (region.t - p1.dt);
                    witness = Some(FeaturePoint::new(region.t, dv_at_t));
                    break;
                }
            }
        }
        let w = witness.expect("intersects implies a witness");
        prop_assert!(para.contains(w, 1e-6), "witness {w:?} outside parallelogram");
        // The witness satisfies the storage-level region conditions.
        prop_assert!(point_in_region(w, &region));
    }

    /// Growing eps never loses a result (the shift + prune are monotone).
    #[test]
    fn epsilon_monotone((cd, ab) in arb_pair(), region in arb_region(), eps in 0.0f64..5.0) {
        let b0 = extract_boundary(&cd, &ab, 0.0, region.kind);
        let b1 = extract_boundary(&cd, &ab, eps, region.kind);
        if let Some(b0) = b0 {
            if b0.intersects(&region) {
                prop_assert!(b1.is_some(), "eps = {eps} pruned a matching pair");
                prop_assert!(b1.unwrap().intersects(&region));
            }
        }
    }

    /// The reduced 1-3 corner boundary and the exact four-corner geometric
    /// test agree on every pair and region: the corner reduction of §4.3.1
    /// loses nothing and admits nothing extra.
    #[test]
    fn reduced_equals_full_corners(
        (cd, ab) in arb_pair(),
        region in arb_region(),
        eps in 0.0f64..2.0,
    ) {
        let full = crate::extract_full_corners(&cd, &ab, eps, region.kind)
            .map(|c| crate::full_corners_intersect(&c, &region))
            .unwrap_or(false);
        let reduced = extract_boundary(&cd, &ab, eps, region.kind)
            .map(|b| b.intersects(&region))
            .unwrap_or(false);
        prop_assert_eq!(full, reduced);
    }

    /// The self-pair boundary is exact for within-segment events.
    #[test]
    fn self_boundary_exact(
        v0 in -50.0f64..50.0,
        dv in -50.0f64..50.0,
        dur in 0.1f64..100.0,
        region in arb_region(),
    ) {
        let seg = Segment::new(0.0, v0, dur, v0 + dv);
        let b = crate::extract_self_boundary(&seg, 0.0, region.kind);
        // Sample within-segment events.
        let mut hit = false;
        for i in 0..=10 {
            for j in (i + 1)..=10 {
                let t1 = dur * i as f64 / 10.0;
                let t2 = dur * j as f64 / 10.0;
                let q = FeaturePoint::of_pair(t1, seg.value_at(t1), t2, seg.value_at(t2));
                hit |= region.contains(q);
            }
        }
        if hit {
            prop_assert!(b.is_some());
            prop_assert!(b.unwrap().intersects(&region));
        }
    }
}
