//! Rule L5: no `let _ = …;` in `pagestore`/`core` production code.
//!
//! Both crates return `Result` from almost every public operation, and
//! `let _ =` silently swallows the error *and* drops any guard the
//! value held. A discard that is genuinely sound (e.g. best-effort
//! logging) must say so: `// lint: allow(L5) <reason>`.

use crate::config::L5_CRATES;
use crate::context::FileCtx;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::TokKind;

/// Runs L5 over one file.
pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    if !L5_CRATES.contains(&ctx.crate_name.as_str()) || ctx.test_file {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text(ctx.src) != "let" {
            continue;
        }
        let (Some(underscore), Some(eq)) = (toks.get(i + 1), toks.get(i + 2)) else {
            continue;
        };
        if underscore.kind != TokKind::Ident
            || underscore.text(ctx.src) != "_"
            || eq.kind != TokKind::Punct(b'=')
            // `let _ == …` can't occur; but skip `let _ =` in `==`.
            || toks.get(i + 3).map(|n| n.kind) == Some(TokKind::Punct(b'='))
        {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        out.push(ctx.diag(
            Rule::L5,
            t.line,
            t.col,
            "`let _ =` discards a result in a durability-critical crate".into(),
            "handle the value, or justify with `// lint: allow(L5) <reason>`".into(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::context::SuppressionIndex;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut index = SuppressionIndex::default();
        index.add_file(&ctx);
        index.filter(check(&ctx))
    }

    #[test]
    fn flags_discard_in_scope() {
        let d = run(
            "crates/pagestore/src/heap.rs",
            "fn f() { let _ = fallible(); }",
        );
        assert_eq!(d.len(), 1);
        assert!(run("crates/core/src/exh.rs", "fn f() { let _ = w(); }").len() == 1);
    }

    #[test]
    fn out_of_scope_crates_and_tests_pass() {
        assert!(run("crates/server/src/server.rs", "fn f() { let _ = x(); }").is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn t() { let _ = x(); } }\n";
        assert!(run("crates/core/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn named_and_typed_bindings_pass() {
        assert!(run("crates/core/src/lib.rs", "fn f() { let _guard = x(); }").is_empty());
        assert!(run("crates/core/src/lib.rs", "fn f() { let r = x(); }").is_empty());
    }

    #[test]
    fn suppression() {
        let src = "fn f() {\n  // lint: allow(L5) best-effort debug output\n  let _ = writeln!(w, \"x\");\n}\n";
        assert!(run("crates/core/src/lib.rs", src).is_empty());
    }
}
