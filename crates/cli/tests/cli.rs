//! End-to-end tests of the `segdiff` binary: generate → ingest → query →
//! stats → sql, all through the real executable.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_segdiff")
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("segdiff-cli-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("spawn segdiff")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).to_string()
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = tmp("workflow");
    let csv = dir.join("data.csv");
    let idx = dir.join("index");

    // generate
    let o = run(&["generate", "--csv", csv.to_str().unwrap(), "--days", "7", "--seed", "7"]);
    assert!(o.status.success(), "{o:?}");
    assert!(stdout(&o).contains("wrote"));
    assert!(csv.exists());

    // ingest (creates the index)
    let o = run(&[
        "ingest",
        "--index",
        idx.to_str().unwrap(),
        "--csv",
        csv.to_str().unwrap(),
        "--no-smooth", // the CSV is already smoothed by generate
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("segments"));

    // query
    let o = run(&[
        "query",
        "--index",
        idx.to_str().unwrap(),
        "--kind",
        "drop",
        "--v",
        "-3",
        "--t-hours",
        "1",
        "--refine",
        csv.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    let text = stdout(&o);
    assert!(text.contains("periods"), "{text}");
    assert!(text.contains("refined against"), "{text}");

    // stats
    let o = run(&["stats", "--index", idx.to_str().unwrap()]);
    assert!(o.status.success());
    let text = stdout(&o);
    assert!(text.contains("observations:"));
    assert!(text.contains("epsilon 0.2"));

    // sql
    let o = run(&[
        "sql",
        "--index",
        idx.to_str().unwrap(),
        "SELECT COUNT(*) FROM segments",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("count:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_ingest_across_invocations() {
    let dir = tmp("resume");
    let csv1 = dir.join("a.csv");
    let csv2 = dir.join("b.csv");
    let idx = dir.join("index");

    // Two non-overlapping CSVs (manual, tiny).
    std::fs::write(&csv1, "time,value\n0,10\n300,9\n600,5\n900,5\n").unwrap();
    std::fs::write(&csv2, "time,value\n1200,6\n1500,2\n1800,2\n").unwrap();

    for csv in [&csv1, &csv2] {
        let o = run(&[
            "ingest",
            "--index",
            idx.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
            "--no-smooth",
        ]);
        assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    }
    let o = run(&["stats", "--index", idx.to_str().unwrap()]);
    assert!(stdout(&o).contains("observations:    7"), "{}", stdout(&o));

    // The 10 -> 5 drop in the first file and the 6 -> 2 drop crossing the
    // second file must both be findable.
    let o = run(&[
        "query",
        "--index",
        idx.to_str().unwrap(),
        "--kind",
        "drop",
        "--v",
        "-3",
        "--t-hours",
        "1",
    ]);
    let text = stdout(&o);
    let n: usize = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().next())
        .and_then(|w| w.parse().ok())
        .unwrap_or(0);
    assert!(n >= 2, "expected at least two periods, got: {text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let o = run(&["frobnicate"]);
    assert_eq!(o.status.code(), Some(2));
    let o = run(&["query", "--index", "/nonexistent", "--kind", "drop", "--v", "-3", "--t-hours", "1"]);
    assert_eq!(o.status.code(), Some(1));
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(err.contains("error:"), "{err}");
}
