//! Tables: a heap file plus any number of B+tree indexes.

use crate::btree::BTree;
use crate::encode::{decode_key_rid, encode_key, KeyBuf};
use crate::error::Result;
use crate::heap::{CompressionStats, HeapFile, PageFormat, RowId};
use crate::pagefile::FileId;
use crate::StoreError;
use parking_lot::RwLock;

/// A secondary index over a subset of a table's columns.
///
/// The B+tree key is the order-preserving encoding of the indexed columns
/// followed by the row id, so keys are unique and equal-prefix entries stay
/// adjacent. Because the indexed column values are recoverable from the key
/// itself, predicates over indexed columns are evaluated without touching
/// the heap ("covered" evaluation) — heap fetches happen only for matches.
pub struct Index {
    name: String,
    /// Positions of the indexed columns within the table schema.
    cols: Vec<usize>,
    tree: RwLock<BTree>,
}

impl Index {
    /// The index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The indexed column positions.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Bytes used on disk.
    pub fn size_bytes(&self) -> u64 {
        self.tree.read().size_bytes()
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.tree.read().len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The pool file id of the backing B+tree.
    pub(crate) fn tree_fid(&self) -> FileId {
        self.tree.read().fid()
    }

    /// Replaces the backing tree in place (heap rewrites rebuild every
    /// index because row ids change with the page format).
    pub(crate) fn replace_tree(&self, tree: BTree) {
        *self.tree.write() = tree;
    }
}

/// A table of fixed-width `f64` rows with optional indexes.
pub struct Table {
    name: String,
    cols: Vec<String>,
    heap: RwLock<HeapFile>,
    indexes: RwLock<Vec<std::sync::Arc<Index>>>,
}

impl Table {
    pub(crate) fn new(name: String, cols: Vec<String>, heap: HeapFile) -> Self {
        Self {
            name,
            cols,
            heap: RwLock::new(heap),
            indexes: RwLock::new(Vec::new()),
        }
    }

    pub(crate) fn attach_index(&self, name: String, cols: Vec<usize>, tree: BTree) {
        self.indexes.write().push(std::sync::Arc::new(Index {
            name,
            cols,
            tree: RwLock::new(tree),
        }));
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.cols
    }

    /// Resolves a column name to its position.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.cols
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| StoreError::NotFound(format!("column {name} of table {}", self.name)))
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u64 {
        self.heap.read().num_rows()
    }

    /// Heap bytes on disk (pages, including the meta page).
    pub fn heap_bytes(&self) -> u64 {
        self.heap.read().size_bytes()
    }

    /// Raw row payload bytes (rows x columns x 8) — the paper's
    /// "feature size" notion, independent of page padding.
    pub fn payload_bytes(&self) -> u64 {
        self.heap.read().payload_bytes()
    }

    /// Total index bytes on disk.
    pub fn index_bytes(&self) -> u64 {
        self.indexes.read().iter().map(|i| i.size_bytes()).sum()
    }

    /// Appends a row, maintaining every index.
    pub fn insert(&self, row: &[f64]) -> Result<RowId> {
        let rid = self.heap.write().insert(row)?;
        let indexes = self.indexes.read();
        if !indexes.is_empty() {
            let mut key = KeyBuf::new();
            let mut colbuf = Vec::new();
            for idx in indexes.iter() {
                colbuf.clear();
                colbuf.extend(idx.cols.iter().map(|&c| row[c]));
                encode_key(&colbuf, rid, &mut key);
                idx.tree.write().insert(&key, rid)?;
            }
        }
        Ok(rid)
    }

    /// Reads one row by id.
    pub fn fetch(&self, rid: RowId, out: &mut Vec<f64>) -> Result<()> {
        self.heap.read().fetch(rid, out)
    }

    /// Full scan in storage order; return `false` to stop early.
    pub fn seq_scan(&self, visit: impl FnMut(RowId, &[f64]) -> bool) -> Result<()> {
        // HeapFile::scan copies pages out of the pool, so holding the heap
        // lock during the visitor cannot deadlock against the pool. The
        // lock is a read lock: any number of scans proceed in parallel,
        // and only inserts take the heap exclusively.
        self.heap.read().scan(visit)
    }

    /// Looks up an index by name.
    pub fn index(&self, name: &str) -> Result<std::sync::Arc<Index>> {
        self.indexes
            .read()
            .iter()
            .find(|i| i.name == name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(format!("index {name} on table {}", self.name)))
    }

    /// Names of all indexes.
    pub fn index_names(&self) -> Vec<String> {
        self.indexes.read().iter().map(|i| i.name.clone()).collect()
    }

    /// Range scan over an index: visits every entry whose indexed columns
    /// lie lexicographically between `lo` and `hi` (inclusive, in index
    /// column order). The visitor receives the row id and the *indexed*
    /// column values decoded from the key; fetch the full row with
    /// [`Table::fetch`] only when needed.
    pub fn index_scan(
        &self,
        index_name: &str,
        lo: &[f64],
        hi: &[f64],
        mut visit: impl FnMut(RowId, &[f64]) -> bool,
    ) -> Result<()> {
        let idx = self.index(index_name)?;
        let ncols = idx.cols.len();
        assert_eq!(lo.len(), ncols, "lo bound arity");
        assert_eq!(hi.len(), ncols, "hi bound arity");
        let mut lo_key = KeyBuf::new();
        let mut hi_key = KeyBuf::new();
        encode_key(lo, 0, &mut lo_key);
        encode_key(hi, u64::MAX, &mut hi_key);
        let mut cols = vec![0.0f64; ncols];
        let result = idx.tree.read().range(&lo_key, &hi_key, |key, _val| {
            for (i, c) in cols.iter_mut().enumerate() {
                *c = crate::encode::decode_key_col(key, i);
            }
            let rid = decode_key_rid(key, ncols);
            visit(rid, &cols)
        });
        result
    }

    /// Batched variant of [`Table::index_scan`]: runs every `(lo, hi)`
    /// probe in one pass over the index via [`BTree::search_batch`]. The
    /// visitor receives the *range index* (position in `ranges`), the row
    /// id and the decoded indexed columns; entries arrive in key order
    /// within each range, with ranges processed in ascending-`lo` order.
    /// Returning `false` stops the whole batch.
    pub fn index_scan_batch(
        &self,
        index_name: &str,
        ranges: &[(&[f64], &[f64])],
        mut visit: impl FnMut(usize, RowId, &[f64]) -> bool,
    ) -> Result<()> {
        let idx = self.index(index_name)?;
        let ncols = idx.cols.len();
        let mut keys: Vec<(KeyBuf, KeyBuf)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            assert_eq!(lo.len(), ncols, "lo bound arity");
            assert_eq!(hi.len(), ncols, "hi bound arity");
            let mut lo_key = KeyBuf::new();
            let mut hi_key = KeyBuf::new();
            encode_key(lo, 0, &mut lo_key);
            encode_key(hi, u64::MAX, &mut hi_key);
            keys.push((lo_key, hi_key));
        }
        let byte_ranges: Vec<(&[u8], &[u8])> =
            keys.iter().map(|(lo, hi)| (&lo[..], &hi[..])).collect();
        let mut cols = vec![0.0f64; ncols];
        let tree = idx.tree.read();
        let result = tree.search_batch(&byte_ranges, |ri, key, _val| {
            for (i, c) in cols.iter_mut().enumerate() {
                *c = crate::encode::decode_key_col(key, i);
            }
            let rid = decode_key_rid(key, ncols);
            visit(ri, rid, &cols)
        });
        result
    }

    /// Fetches many rows with one page read per distinct page. `rids`
    /// must be sorted ascending (page-major order); see
    /// [`HeapFile::fetch_many`].
    pub fn fetch_many(
        &self,
        rids: &[RowId],
        visit: impl FnMut(RowId, &[f64]) -> bool,
    ) -> Result<()> {
        self.heap.read().fetch_many(rids, visit)
    }

    /// Page-at-a-time scan with zone-map pruning; see
    /// [`HeapFile::scan_blocks`]. The visitor receives each surviving
    /// page's rows as one row-major block of `n * ncols` values.
    pub fn scan_blocks(
        &self,
        filter: impl FnMut(&[f64], &[f64]) -> bool,
        visit: impl FnMut(&[f64], usize) -> bool,
    ) -> Result<crate::heap::ZoneScanStats> {
        self.heap.read().scan_blocks(filter, visit)
    }

    /// Column-at-a-time scan with the same zone-map pruning as
    /// [`Table::scan_blocks`]; see [`HeapFile::scan_columns`]. Compressed
    /// pages decode straight into the caller's column buffers.
    pub fn scan_columns(
        &self,
        filter: impl FnMut(&[f64], &[f64]) -> bool,
        cols: &mut Vec<Vec<f64>>,
        visit: impl FnMut(&[Vec<f64>], usize) -> bool,
    ) -> Result<crate::heap::ZoneScanStats> {
        self.heap.read().scan_columns(filter, cols, visit)
    }

    /// The data-page format of the backing heap.
    pub fn format(&self) -> PageFormat {
        self.heap.read().format()
    }

    /// The whole-heap `(mins, maxs)` zone summary, when maintained and
    /// non-empty (cloned out of the heap lock).
    pub fn zone_segment_bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        self.heap
            .read()
            .zone_segment_bounds()
            .map(|(mins, maxs)| (mins.to_vec(), maxs.to_vec()))
    }

    /// Segment-level pre-probe pruning: `true` when the whole table's
    /// zone summary fails `filter`, so a non-scan plan may skip it
    /// entirely; see [`HeapFile::prune_whole_segment`].
    pub fn prune_whole_segment(&self, filter: impl FnMut(&[f64], &[f64]) -> bool) -> bool {
        self.heap.read().prune_whole_segment(filter)
    }

    /// Encoded-vs-raw payload accounting over every data page; see
    /// [`HeapFile::compression_stats`].
    pub fn compression_stats(&self) -> Result<CompressionStats> {
        self.heap.read().compression_stats()
    }

    pub(crate) fn heap_fid(&self) -> FileId {
        self.heap.read().fid()
    }

    pub(crate) fn replace_heap(&self, heap: HeapFile) {
        *self.heap.write() = heap;
    }

    pub(crate) fn indexes(&self) -> Vec<std::sync::Arc<Index>> {
        self.indexes.read().clone()
    }

    /// Whether the heap currently maintains a zone map.
    pub fn has_zones(&self) -> bool {
        self.heap.read().has_zones()
    }

    /// Builds the zone map from existing rows when the sidecar was
    /// missing or stale (idempotent); see [`HeapFile::rebuild_zones`].
    pub fn ensure_zones(&self) -> Result<()> {
        self.heap.write().rebuild_zones()
    }

    /// Drops the zone map and its sidecar, disabling pruning (tests and
    /// ablations).
    pub fn drop_zones(&self) {
        self.heap.write().drop_zones()
    }

    /// Persists heap and index metadata (called by `Database::flush`).
    pub(crate) fn sync_meta(&self) -> Result<()> {
        self.heap.read().sync_meta()?;
        for idx in self.indexes.read().iter() {
            idx.tree.read().sync_meta()?;
        }
        Ok(())
    }

    /// Builds index contents from the existing heap rows, one insert at a
    /// time. [`crate::Database::create_index`] uses the much faster
    /// sort-and-bulk-load path instead; this incremental variant remains
    /// for callers that attach an index to a table they keep appending to.
    pub fn backfill_index(&self, index_name: &str) -> Result<()> {
        let idx = self.index(index_name)?;
        let mut key = KeyBuf::new();
        let mut colbuf = Vec::new();
        let mut pending: Vec<(KeyBuf, RowId)> = Vec::new();
        self.heap.read().scan(|rid, row| {
            colbuf.clear();
            colbuf.extend(idx.cols.iter().map(|&c| row[c]));
            encode_key(&colbuf, rid, &mut key);
            pending.push((key.clone(), rid));
            true
        })?;
        let mut tree = idx.tree.write();
        for (k, rid) in pending {
            tree.insert(&k, rid)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::pagefile::PageFile;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn setup(name: &str, cols: &[&str]) -> (Arc<BufferPool>, Table, Vec<PathBuf>) {
        let base =
            std::env::temp_dir().join(format!("pagestore-tbl-{}-{name}", std::process::id()));
        let pool = Arc::new(BufferPool::new(256));
        let heap_path = base.with_extension("tbl");
        let fid = pool.register_file(PageFile::create(&heap_path).unwrap());
        let heap = HeapFile::create(pool.clone(), fid, cols.len(), PageFormat::Raw).unwrap();
        let table = Table::new(
            name.to_string(),
            cols.iter().map(|s| s.to_string()).collect(),
            heap,
        );
        (pool, table, vec![heap_path])
    }

    fn add_index(
        pool: &Arc<BufferPool>,
        table: &Table,
        name: &str,
        cols: Vec<usize>,
        paths: &mut Vec<PathBuf>,
    ) {
        let p = std::env::temp_dir().join(format!(
            "pagestore-tbl-{}-{}-{name}.idx",
            std::process::id(),
            table.name()
        ));
        let fid = pool.register_file(PageFile::create(&p).unwrap());
        let tree = BTree::create(pool.clone(), fid, cols.len() * 8 + 8).unwrap();
        table.attach_index(name.to_string(), cols, tree);
        paths.push(p);
    }

    fn cleanup(paths: &[PathBuf]) {
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn insert_scan_fetch() {
        let (_pool, table, paths) = setup("basic", &["dt", "dv", "t"]);
        let r0 = table.insert(&[30.0, -3.0, 0.0]).unwrap();
        table.insert(&[60.0, 1.0, 300.0]).unwrap();
        let mut row = Vec::new();
        table.fetch(r0, &mut row).unwrap();
        assert_eq!(row, vec![30.0, -3.0, 0.0]);
        let mut n = 0;
        table
            .seq_scan(|_, _| {
                n += 1;
                true
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(table.num_rows(), 2);
        cleanup(&paths);
    }

    #[test]
    fn index_scan_range_and_residual() {
        let (pool, table, mut paths) = setup("idx", &["dt", "dv", "t"]);
        add_index(&pool, &table, "by_dt_dv", vec![0, 1], &mut paths);
        for i in 0..2000 {
            let dt = (i % 100) as f64;
            let dv = -((i % 7) as f64);
            table.insert(&[dt, dv, i as f64]).unwrap();
        }
        // All rows with dt <= 10 (prefix range), then residual dv <= -5.
        let mut hits = 0;
        let mut fetched = Vec::new();
        table
            .index_scan(
                "by_dt_dv",
                &[f64::NEG_INFINITY, f64::NEG_INFINITY],
                &[10.0, f64::INFINITY],
                |rid, cols| {
                    assert!(cols[0] <= 10.0);
                    if cols[1] <= -5.0 {
                        hits += 1;
                        table.fetch(rid, &mut fetched).unwrap();
                        assert_eq!(fetched[0], cols[0]);
                        assert_eq!(fetched[1], cols[1]);
                    }
                    true
                },
            )
            .unwrap();
        // Ground truth by sequential scan.
        let mut expect = 0;
        table
            .seq_scan(|_, row| {
                if row[0] <= 10.0 && row[1] <= -5.0 {
                    expect += 1;
                }
                true
            })
            .unwrap();
        assert_eq!(hits, expect);
        assert!(hits > 0);
        cleanup(&paths);
    }

    #[test]
    fn backfill_matches_incremental() {
        let (pool, table, mut paths) = setup("backfill", &["a", "b"]);
        for i in 0..500 {
            table.insert(&[i as f64, (i * i) as f64]).unwrap();
        }
        add_index(&pool, &table, "by_a", vec![0], &mut paths);
        table.backfill_index("by_a").unwrap();
        let idx = table.index("by_a").unwrap();
        assert_eq!(idx.len(), 500);
        let mut seen = Vec::new();
        table
            .index_scan("by_a", &[100.0], &[104.0], |_, cols| {
                seen.push(cols[0]);
                true
            })
            .unwrap();
        assert_eq!(seen, vec![100.0, 101.0, 102.0, 103.0, 104.0]);
        cleanup(&paths);
    }

    #[test]
    fn batch_scan_matches_single_probes_and_fetch_many() {
        let (pool, table, mut paths) = setup("batch", &["dt", "dv", "t"]);
        add_index(&pool, &table, "by_dt_dv", vec![0, 1], &mut paths);
        for i in 0..3000 {
            let dt = (i % 120) as f64;
            let dv = -((i % 11) as f64);
            table.insert(&[dt, dv, i as f64]).unwrap();
        }
        let neg = f64::NEG_INFINITY;
        let bounds: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![neg, neg], vec![10.0, f64::INFINITY]),
            (vec![50.0, neg], vec![60.0, -5.0]),
            (vec![5.0, neg], vec![15.0, f64::INFINITY]), // overlaps the first
            (vec![500.0, neg], vec![600.0, 0.0]),        // empty
        ];
        let ranges: Vec<(&[f64], &[f64])> = bounds
            .iter()
            .map(|(lo, hi)| (lo.as_slice(), hi.as_slice()))
            .collect();
        let mut batched: Vec<(usize, RowId, Vec<f64>)> = Vec::new();
        table
            .index_scan_batch("by_dt_dv", &ranges, |ri, rid, cols| {
                batched.push((ri, rid, cols.to_vec()));
                true
            })
            .unwrap();
        // Reference: one index_scan per range, ascending-lo order.
        let mut single: Vec<(usize, RowId, Vec<f64>)> = Vec::new();
        for &ri in &[0usize, 2, 1, 3] {
            table
                .index_scan("by_dt_dv", ranges[ri].0, ranges[ri].1, |rid, cols| {
                    single.push((ri, rid, cols.to_vec()));
                    true
                })
                .unwrap();
        }
        assert_eq!(batched, single);
        assert!(batched.iter().any(|(ri, _, _)| *ri == 2), "overlap covered");
        assert!(batched.iter().all(|(ri, _, _)| *ri != 3), "empty range");
        // fetch_many over the sorted, deduped matches agrees with fetch.
        let mut rids: Vec<RowId> = batched.iter().map(|(_, rid, _)| *rid).collect();
        rids.sort_unstable();
        rids.dedup();
        let mut row = Vec::new();
        let mut n = 0;
        table
            .fetch_many(&rids, |rid, cols| {
                table.fetch(rid, &mut row).unwrap();
                assert_eq!(cols, row.as_slice());
                n += 1;
                true
            })
            .unwrap();
        assert_eq!(n, rids.len());
        cleanup(&paths);
    }

    #[test]
    fn scan_blocks_prunes_losslessly() {
        let (_pool, table, paths) = setup("zones", &["dt", "dv"]);
        for i in 0..4000 {
            table.insert(&[i as f64, -((i % 13) as f64)]).unwrap();
        }
        assert!(table.has_zones());
        // Count rows with dt <= 100 via pruned block scan.
        let mut pruned_rows = 0;
        let stats = table
            .scan_blocks(
                |mins, _maxs| mins[0] <= 100.0,
                |block, n| {
                    for r in 0..n {
                        if block[r * 2] <= 100.0 {
                            pruned_rows += 1;
                        }
                    }
                    true
                },
            )
            .unwrap();
        assert!(stats.pages_pruned > 0, "selective scan must prune");
        // Ground truth from the unpruned row scan.
        let mut expect = 0;
        table
            .seq_scan(|_, row| {
                if row[0] <= 100.0 {
                    expect += 1;
                }
                true
            })
            .unwrap();
        assert_eq!(pruned_rows, expect);
        // Dropping zones disables pruning but not the scan itself.
        table.drop_zones();
        assert!(!table.has_zones());
        let stats = table.scan_blocks(|_, _| false, |_, _| true).unwrap();
        assert_eq!(stats.pages_pruned, 0);
        table.ensure_zones().unwrap();
        assert!(table.has_zones());
        cleanup(&paths);
    }

    #[test]
    fn sizes_and_names() {
        let (pool, table, mut paths) = setup("meta", &["x"]);
        add_index(&pool, &table, "by_x", vec![0], &mut paths);
        for i in 0..100 {
            table.insert(&[i as f64]).unwrap();
        }
        assert_eq!(table.payload_bytes(), 800);
        assert!(table.heap_bytes() > 0);
        assert!(table.index_bytes() > 0);
        assert_eq!(table.index_names(), vec!["by_x".to_string()]);
        assert_eq!(table.column_index("x").unwrap(), 0);
        assert!(table.column_index("nope").is_err());
        assert!(table.index("nope").is_err());
        cleanup(&paths);
    }
}
