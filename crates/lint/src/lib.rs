#![warn(missing_docs)]

//! **segdiff-lint** — the workspace invariant checker.
//!
//! The concurrent, crash-safe layers grown in PRs 1–3 rely on
//! invariants the compiler cannot see: lock acquisition order across
//! the striped buffer pool and the WAL, WAL-before-data call
//! discipline, a hand-maintained metric namespace, panic-free worker
//! loops. In the spirit of the paper's own conservative guarantees
//! (SegDiff's "no false negatives, bounded false positives",
//! Theorem 1), this crate enforces those invariants as named,
//! individually suppressable rules over a lightweight Rust lexer — no
//! rustc plumbing, no external dependencies:
//!
//! | rule | invariant |
//! |------|-----------|
//! | L0 | `// lint: allow(…)` suppressions name known rules, carry a reason, and still suppress something |
//! | L1 | no `.unwrap()`/`.expect()`/`panic!`/`unimplemented!`/`todo!` in production paths |
//! | L2 | every `unsafe` is immediately preceded by `// SAFETY:` |
//! | L3 | lock order follows `ci/lock-order.toml` (within one function) |
//! | L4 | metric names round-trip through `crates/obs/src/names.rs` (and the README table) |
//! | L5 | no `let _ =` result discards in `pagestore`/`core` |
//! | L6 | lock order holds across intra-crate calls ([`callgraph`] summaries) |
//! | L7 | no blocking call under a live guard, outside the `[[allow_blocking]]` allowlist |
//! | L8 | HTTP routes and CLI subcommands match their registries, handlers, and docs |
//!
//! L0–L5 are per-file passes. L6 assembles a workspace call graph
//! ([`callgraph`]) over the shared guard-lifetime walk ([`flow`]) and
//! re-checks the declared lock order on *composed* paths — a helper
//! acquiring a low-ranked lock is flagged at every call site whose
//! caller holds a higher-ranked one. Suppressions are applied
//! centrally ([`context::SuppressionIndex`]): rules emit everything
//! they see, the index drops the suppressed findings, and any
//! well-formed suppression that no longer fires is itself an L0
//! violation — the suppression inventory cannot rot.
//!
//! Run as `cargo run -p lint` (binary `segdiff-lint`); it emits
//! rustc-style `file:line:col` diagnostics (or `--format json` for the
//! versioned CI artifact schema — see [`diag::Report`]) and exits
//! nonzero on any violation.

pub mod callgraph;
pub mod config;
pub mod context;
pub mod diag;
pub mod flow;
pub mod lexer;
pub mod rules;
pub mod toml;

use config::{
    LockOrder, ARGS_RS_PATH, LOCK_ORDER_PATH, NAMES_RS_PATH, ROUTES_RS_PATH, SERVICE_RS_PATH,
};
use context::{FileCtx, SuppressionIndex};
use diag::{Diagnostic, Rule};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// What to check and where.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root.
    pub root: PathBuf,
    /// Enabled rules (default: all).
    pub rules: BTreeSet<Rule>,
}

impl Options {
    /// All rules at the given root.
    pub fn new(root: PathBuf) -> Options {
        Options {
            root,
            rules: Rule::ALL.into_iter().collect(),
        }
    }
}

/// A fatal error (I/O, config) as opposed to lint findings.
#[derive(Debug)]
pub struct Fatal(pub String);

impl std::fmt::Display for Fatal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The outcome of one run: sorted findings plus what was analyzed
/// (the binary adds wall-clock and renders a [`diag::Report`]).
#[derive(Debug)]
pub struct RunResult {
    /// Sorted, suppression-filtered findings.
    pub diags: Vec<Diagnostic>,
    /// Number of `.rs` files analyzed.
    pub files_analyzed: usize,
}

/// Runs every enabled rule over the workspace.
pub fn run(opts: &Options) -> Result<RunResult, Fatal> {
    let files = workspace_files(&opts.root)?;
    let on = |r: Rule| opts.rules.contains(&r);
    let lock_order = if on(Rule::L3) || on(Rule::L6) || on(Rule::L7) {
        let path = opts.root.join(LOCK_ORDER_PATH);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| Fatal(format!("cannot read {}: {e}", path.display())))?;
        Some(LockOrder::parse(&src).map_err(|e| Fatal(format!("{LOCK_ORDER_PATH}: {e}")))?)
    } else {
        None
    };

    let mut diags = Vec::new();
    let mut index = SuppressionIndex::default();
    let mut collected = rules::names::Collected::default();
    let mut graph = callgraph::CallGraph::default();
    let mut allowlist_used: BTreeSet<usize> = BTreeSet::new();
    for rel in &files {
        let abs = opts.root.join(rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| Fatal(format!("cannot read {}: {e}", abs.display())))?;
        let ctx = FileCtx::new(rel, &src);
        index.add_file(&ctx);
        if on(Rule::L0) {
            diags.extend(ctx.audit_suppressions());
        }
        if on(Rule::L1) {
            diags.extend(rules::panics::check(&ctx));
        }
        if on(Rule::L2) {
            diags.extend(rules::safety::check(&ctx));
        }
        if let Some(order) = &lock_order {
            if on(Rule::L3) {
                diags.extend(rules::locks::check(&ctx, order));
            }
            if on(Rule::L6) {
                graph.add_file(&ctx, order);
            }
            if on(Rule::L7) {
                let outcome = rules::blocking::check(&ctx, order);
                diags.extend(outcome.diags);
                allowlist_used.extend(outcome.used_allowlist);
            }
        }
        if on(Rule::L4) {
            rules::names::collect(&ctx, &mut collected);
        }
        if on(Rule::L5) {
            diags.extend(rules::discard::check(&ctx));
        }
    }

    if on(Rule::L4) {
        let registry = load_registry(&opts.root)?;
        let readme = std::fs::read_to_string(opts.root.join("README.md")).ok();
        diags.extend(rules::names::reconcile(
            &collected,
            &registry,
            readme.as_deref(),
        ));
    }
    if on(Rule::L6) {
        diags.extend(rules::interlock::check(&graph));
    }
    if on(Rule::L8) {
        let routes_src = read_artifact(&opts.root, ROUTES_RS_PATH)?;
        let service_src = read_artifact(&opts.root, SERVICE_RS_PATH)?;
        let args_src = read_artifact(&opts.root, ARGS_RS_PATH)?;
        let readme = std::fs::read_to_string(opts.root.join("README.md")).ok();
        diags.extend(rules::contracts::check(&rules::contracts::Inputs {
            routes_src: Some(&routes_src),
            service_src: Some(&service_src),
            args_src: Some(&args_src),
            readme: readme.as_deref(),
        }));
    }

    // Central suppression filtering, then the dead-suppression audit:
    // a well-formed `// lint: allow(…)` that dropped nothing is an L0
    // violation, and so is an `[[allow_blocking]]` entry that no L7
    // site needed.
    let mut diags = index.filter(diags);
    if on(Rule::L0) {
        diags.extend(index.dead(&opts.rules));
        if let Some(order) = &lock_order {
            for (i, a) in order.allow_blocking.iter().enumerate() {
                if a.reason.is_empty() {
                    diags.push(Diagnostic {
                        rule: Rule::L0,
                        file: LOCK_ORDER_PATH.to_string(),
                        line: a.line,
                        col: 1,
                        message: format!("[[allow_blocking]] entry for `{}` has no reason", a.file),
                        help: "every allowlist entry must say why blocking under a lock is sound"
                            .to_string(),
                    });
                } else if on(Rule::L7) && !allowlist_used.contains(&i) {
                    diags.push(Diagnostic {
                        rule: Rule::L0,
                        file: LOCK_ORDER_PATH.to_string(),
                        line: a.line,
                        col: 1,
                        message: format!(
                            "dead [[allow_blocking]] entry: `{}` ops [{}] cover no blocking site",
                            a.file,
                            a.ops.join(", ")
                        ),
                        help: "the blocking-under-lock site is gone — delete the entry".to_string(),
                    });
                }
            }
        }
    }

    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(RunResult {
        diags,
        files_analyzed: files.len(),
    })
}

fn read_artifact(root: &Path, rel: &str) -> Result<String, Fatal> {
    let path = root.join(rel);
    std::fs::read_to_string(&path)
        .map_err(|e| Fatal(format!("cannot read {}: {e}", path.display())))
}

/// Parses the checked-in metric registry.
pub fn load_registry(root: &Path) -> Result<Vec<rules::names::RegistryEntry>, Fatal> {
    let path = root.join(NAMES_RS_PATH);
    let src = std::fs::read_to_string(&path)
        .map_err(|e| Fatal(format!("cannot read {}: {e}", path.display())))?;
    let registry = rules::names::parse_registry(&src);
    if registry.is_empty() {
        return Err(Fatal(format!(
            "{NAMES_RS_PATH}: no MetricDef entries found"
        )));
    }
    Ok(registry)
}

/// Parses the checked-in HTTP route registry.
pub fn load_routes(root: &Path) -> Result<Vec<rules::contracts::ParsedRoute>, Fatal> {
    let src = read_artifact(root, ROUTES_RS_PATH)?;
    let routes = rules::contracts::parse_routes(&src);
    if routes.is_empty() {
        return Err(Fatal(format!(
            "{ROUTES_RS_PATH}: no RouteDef entries found"
        )));
    }
    Ok(routes)
}

/// Every `.rs` file the lint walks: `crates/*/src/**` plus the facade
/// crate's `src/**`, workspace-relative with forward slashes, sorted.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, Fatal> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| Fatal(format!("cannot read {}: {e}", crates_dir.display())))?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk(&src, root, &mut out)?;
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        walk(&facade, root, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), Fatal> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| Fatal(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Finds the workspace root: walks up from `start` looking for the
/// lock-order declaration next to a `Cargo.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join(LOCK_ORDER_PATH).is_file() && d.join("Cargo.toml").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
