//! Dogfooded alerting: the paper's drop/jump detector pointed at the
//! system's own metric series.
//!
//! Each standing [`AlertRule`] names an internal series (as produced by
//! the obs sampler, e.g. `server.query_nanos.p50` or
//! `server.queries.rate`), a search kind, and the paper's `(V, T)`
//! thresholds. The [`AlertEngine`] runs one online segmentation +
//! feature-extraction pipeline (Algorithm 1) per rule over the series
//! points, and fires whenever an extracted boundary intersects the
//! rule's [`QueryRegion`] — exactly the detector queries use, so a fired
//! alert carries the offending segment pair `(t_d, t_c, t_b, t_a)`.
//!
//! Detection latency: the sliding-window segmenter only *commits* a
//! segment when the next chord breaks, which could delay pairing a
//! fresh drop by an unbounded amount on a stable-after-the-drop series.
//! Each evaluation therefore also clones the per-rule segmenter and
//! extractor and `finish()`es the clones, evaluating the *provisional*
//! final segment too — a drop becomes visible within roughly one
//! sampling period of the data showing it. Fired alerts are deduplicated
//! on the pair's start times so the provisional sighting and the later
//! committed one count once.
//!
//! Rules load from a minimal TOML subset (`ci/alert-rules.toml`); see
//! [`AlertRuleSet::parse`] for the grammar.

use featurespace::{QueryRegion, SearchKind};
use obs::json::Json;
use obs::series::SeriesStore;
use segmentation::SlidingWindowSegmenter;
use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use crate::ingest::{FeatureExtractor, FeatureRow};

/// One standing `(V, T)` drop/jump rule over an internal series.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name, shown in the alert log (e.g. `query-latency-jump`).
    pub name: String,
    /// Series to watch (a name in the sampler's [`SeriesStore`]).
    pub metric: String,
    /// Drop or jump.
    pub kind: SearchKind,
    /// Change threshold `V` in scaled units: negative for drops,
    /// positive for jumps.
    pub v: f64,
    /// Time threshold `T` in seconds: fire on changes of at least `|V|`
    /// within `T`.
    pub t_seconds: f64,
    /// Segmentation tolerance `ε` in scaled units.
    pub epsilon: f64,
    /// Multiplier applied to raw series values before segmentation
    /// (e.g. `1e-6` renders nanosecond latencies in milliseconds, so
    /// `v` and `epsilon` read naturally).
    pub scale: f64,
}

impl AlertRule {
    /// The rule's query region in `(Δt, Δv)` feature space.
    pub fn region(&self) -> QueryRegion {
        match self.kind {
            SearchKind::Drop => QueryRegion::drop(self.t_seconds, self.v),
            SearchKind::Jump => QueryRegion::jump(self.t_seconds, self.v),
        }
    }

    fn validate(&self) -> Result<(), String> {
        let ctx = |msg: String| format!("rule '{}': {}", self.name, msg);
        if self.metric.is_empty() {
            return Err(ctx("missing 'metric'".to_string()));
        }
        if !(self.t_seconds.is_finite() && self.t_seconds > 0.0) {
            return Err(ctx(format!(
                "t_seconds must be > 0, got {}",
                self.t_seconds
            )));
        }
        match self.kind {
            SearchKind::Drop if !(self.v.is_finite() && self.v < 0.0) => {
                return Err(ctx(format!("drop rules need v < 0, got {}", self.v)));
            }
            SearchKind::Jump if !(self.v.is_finite() && self.v > 0.0) => {
                return Err(ctx(format!("jump rules need v > 0, got {}", self.v)));
            }
            _ => {}
        }
        if !(self.epsilon.is_finite() && self.epsilon >= 0.0) {
            return Err(ctx(format!("epsilon must be >= 0, got {}", self.epsilon)));
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(ctx(format!("scale must be > 0, got {}", self.scale)));
        }
        Ok(())
    }
}

/// A parsed set of standing rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlertRuleSet {
    /// The rules, in file order.
    pub rules: Vec<AlertRule>,
}

impl AlertRuleSet {
    /// Parses the `ci/alert-rules.toml` grammar — a minimal TOML subset:
    ///
    /// ```toml
    /// # comment
    /// [[rule]]
    /// name = "query-latency-jump"     # string values are double-quoted
    /// metric = "server.query_nanos.p50"
    /// kind = "jump"                   # "drop" | "jump"
    /// v = 20.0                        # scaled units; sign must match kind
    /// t_seconds = 60.0
    /// epsilon = 8.0
    /// scale = 1e-6                    # optional, default 1.0
    /// ```
    ///
    /// Anything else (tables, arrays, multi-line strings) is rejected.
    pub fn parse(src: &str) -> Result<AlertRuleSet, String> {
        let mut rules: Vec<AlertRule> = Vec::new();
        let mut current: Option<AlertRule> = None;
        for (lineno, raw) in src.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("alert-rules line {}: {}", lineno + 1, msg);
            if line == "[[rule]]" {
                if let Some(rule) = current.take() {
                    rule.validate()?;
                    rules.push(rule);
                }
                current = Some(AlertRule {
                    name: String::new(),
                    metric: String::new(),
                    kind: SearchKind::Drop,
                    v: f64::NAN,
                    t_seconds: f64::NAN,
                    epsilon: 0.0,
                    scale: 1.0,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(format!("expected 'key = value', got '{line}'")));
            };
            let Some(rule) = current.as_mut() else {
                return Err(err("key before any [[rule]] header".to_string()));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "name" => rule.name = parse_string(value).map_err(err)?,
                "metric" => rule.metric = parse_string(value).map_err(err)?,
                "kind" => {
                    rule.kind = match parse_string(value).map_err(err)?.as_str() {
                        "drop" => SearchKind::Drop,
                        "jump" => SearchKind::Jump,
                        other => return Err(err(format!("kind must be drop|jump, got {other}"))),
                    }
                }
                "v" => rule.v = parse_number(value).map_err(err)?,
                "t_seconds" => rule.t_seconds = parse_number(value).map_err(err)?,
                "epsilon" => rule.epsilon = parse_number(value).map_err(err)?,
                "scale" => rule.scale = parse_number(value).map_err(err)?,
                other => return Err(err(format!("unknown key '{other}'"))),
            }
        }
        if let Some(rule) = current.take() {
            rule.validate()?;
            rules.push(rule);
        }
        Ok(AlertRuleSet { rules })
    }

    /// Loads and parses a rules file.
    pub fn load(path: &std::path::Path) -> Result<AlertRuleSet, String> {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&src)
    }

    /// The built-in rules used when no file is given: watch query
    /// latency for jumps and query throughput for drops. Mirrors
    /// `ci/alert-rules.toml`.
    pub fn defaults() -> AlertRuleSet {
        AlertRuleSet {
            rules: vec![
                AlertRule {
                    name: "query-latency-jump".to_string(),
                    metric: "server.query_nanos.p50".to_string(),
                    kind: SearchKind::Jump,
                    v: 20.0,
                    t_seconds: 60.0,
                    epsilon: 8.0,
                    scale: 1e-6,
                },
                // Thresholds sized against the measured clean baseline
                // (~5.5k qps on the alert-smoke workload, with noise
                // between sampling intervals of a few hundred qps): the
                // rule must catch a collapse, not closed-loop jitter.
                AlertRule {
                    name: "query-rate-drop".to_string(),
                    metric: "server.queries.rate".to_string(),
                    kind: SearchKind::Drop,
                    v: -2000.0,
                    t_seconds: 60.0,
                    epsilon: 500.0,
                    scale: 1.0,
                },
            ],
        }
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_string(value: &str) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got '{value}'"))?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(format!("escapes are not supported: '{value}'"));
    }
    Ok(inner.to_string())
}

fn parse_number(value: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .map_err(|_| format!("expected a number, got '{value}'"))
}

/// One fired alert: the rule plus the offending segment pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Name of the rule that fired.
    pub rule: String,
    /// Series the rule watches.
    pub metric: String,
    /// Drop or jump.
    pub kind: SearchKind,
    /// When the engine observed the event, unix milliseconds.
    pub fired_at_ms: u64,
    /// Start of the earlier segment of the offending pair (unix seconds).
    pub t_d: f64,
    /// End of the earlier segment.
    pub t_c: f64,
    /// Start of the later segment.
    pub t_b: f64,
    /// End of the later segment.
    pub t_a: f64,
    /// The boundary corner change `Δv` with the largest magnitude, in
    /// scaled units — roughly "how big the drop/jump was".
    pub dv: f64,
}

impl Alert {
    /// Serializes the alert as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rule", Json::from(self.rule.as_str())),
            ("metric", Json::from(self.metric.as_str())),
            ("kind", Json::from(self.kind.name())),
            ("fired_at_ms", Json::from(self.fired_at_ms)),
            ("t_d", Json::from(self.t_d)),
            ("t_c", Json::from(self.t_c)),
            ("t_b", Json::from(self.t_b)),
            ("t_a", Json::from(self.t_a)),
            ("dv", Json::from(self.dv)),
        ])
    }
}

/// Per-rule online pipeline state.
struct RuleState {
    rule: AlertRule,
    region: QueryRegion,
    segmenter: SlidingWindowSegmenter,
    extractor: FeatureExtractor,
    /// Timestamp (ms) of the last series point consumed.
    last_point_ms: u64,
    /// Time of the last observation pushed into the segmenter (seconds);
    /// guards against a non-monotonic wall clock.
    last_t: f64,
    /// Pairs already fired, keyed on `(t_d, t_b)` bits so a provisional
    /// sighting and its later committed form count once.
    fired_pairs: HashSet<(u64, u64)>,
}

impl RuleState {
    fn new(rule: AlertRule) -> RuleState {
        let region = rule.region();
        // The extractor window only needs to cover pairs within T; the
        // segmenter tolerance is the rule's ε (the ε/2 split is applied
        // inside the segmenter, matching ingest).
        let segmenter = SlidingWindowSegmenter::new(rule.epsilon);
        let extractor = FeatureExtractor::new(rule.epsilon, rule.t_seconds);
        RuleState {
            rule,
            region,
            segmenter,
            extractor,
            last_point_ms: 0,
            last_t: f64::NEG_INFINITY,
            fired_pairs: HashSet::new(),
        }
    }
}

/// The bounded alert log. Every published alert carries a monotone
/// 1-based sequence number, so pollers (`GET /alerts?after=`, `segdiff
/// alerts --follow`) can resume from a cursor instead of re-reading the
/// whole log; a gap in the sequence numbers means the log overflowed.
struct AlertLog {
    entries: VecDeque<(u64, Alert)>,
    next_seq: u64,
}

/// The standing-rule evaluator plus its bounded alert log.
pub struct AlertEngine {
    states: Mutex<Vec<RuleState>>,
    log: Mutex<AlertLog>,
    log_capacity: usize,
    evaluated: Arc<obs::Counter>,
    fired: Arc<obs::Counter>,
}

/// Alerts retained in the log before the oldest are dropped.
pub const DEFAULT_ALERT_LOG_CAPACITY: usize = 256;

impl AlertEngine {
    /// Creates an engine over `rules` with a log bounded to
    /// `log_capacity` entries. Counters register in [`obs::global`].
    pub fn new(rules: AlertRuleSet, log_capacity: usize) -> AlertEngine {
        let registry = obs::global();
        AlertEngine {
            states: Mutex::new(rules.rules.into_iter().map(RuleState::new).collect()),
            log: Mutex::new(AlertLog {
                entries: VecDeque::new(),
                next_seq: 1,
            }),
            log_capacity: log_capacity.max(1),
            evaluated: registry.counter("alert.evaluated"),
            fired: registry.counter("alert.fired"),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> Vec<AlertRule> {
        let states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        states.iter().map(|s| s.rule.clone()).collect()
    }

    /// A snapshot of the alert log, oldest first.
    pub fn alerts(&self) -> Vec<Alert> {
        let log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        log.entries.iter().map(|(_, a)| a.clone()).collect()
    }

    /// Logged alerts with sequence number > `after`, oldest first, each
    /// tagged with its sequence number. Poll with `after` = the largest
    /// sequence seen so far to receive each alert exactly once (alerts
    /// evicted from the bounded log before being read are lost; the
    /// sequence gap makes that visible).
    pub fn alerts_since(&self, after: u64) -> Vec<(u64, Alert)> {
        let log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        log.entries
            .iter()
            .filter(|(seq, _)| *seq > after)
            .cloned()
            .collect()
    }

    /// Consumes new points of every watched series from `store` and
    /// evaluates all rules, returning newly fired alerts (also appended
    /// to the log).
    pub fn tick(&self, store: &SeriesStore, now_ms: u64) -> Vec<Alert> {
        let mut fired = Vec::new();
        let mut states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        for state in states.iter_mut() {
            self.evaluated.inc();
            let points = store.since(&state.rule.metric, state.last_point_ms);
            if points.is_empty() {
                continue;
            }
            let mut rows: Vec<FeatureRow> = Vec::new();
            for p in points {
                state.last_point_ms = p.ts_ms;
                let t = p.ts_ms as f64 / 1e3;
                if t <= state.last_t {
                    continue; // non-monotonic clock; drop the point
                }
                state.last_t = t;
                let v = p.value * state.rule.scale;
                if !v.is_finite() {
                    continue;
                }
                if let Some(seg) = state.segmenter.push(t, v) {
                    state.extractor.push_segment(seg, &mut rows);
                }
            }
            // Provisional tail: finish() clones so a drop that already
            // happened is paired now instead of after the next chord
            // break commits its segment.
            let mut seg_clone = state.segmenter.clone();
            let mut ex_clone = state.extractor.clone();
            if let Some(seg) = seg_clone.finish() {
                ex_clone.push_segment(seg, &mut rows);
            }
            for row in rows {
                if row.kind != state.rule.kind || !row.boundary.intersects(&state.region) {
                    continue;
                }
                let key = (row.t_d.to_bits(), row.t_b.to_bits());
                if !state.fired_pairs.insert(key) {
                    continue;
                }
                // Bound the dedup set; clearing can at worst re-fire an
                // old pair, and the log below is bounded anyway.
                if state.fired_pairs.len() > 8192 {
                    state.fired_pairs.clear();
                    state.fired_pairs.insert(key);
                }
                let dv = row
                    .boundary
                    .corners()
                    .iter()
                    .map(|c| c.dv)
                    .fold(
                        0.0f64,
                        |acc, dv| if dv.abs() > acc.abs() { dv } else { acc },
                    );
                let alert = Alert {
                    rule: state.rule.name.clone(),
                    metric: state.rule.metric.clone(),
                    kind: state.rule.kind,
                    fired_at_ms: now_ms,
                    t_d: row.t_d,
                    t_c: row.t_c,
                    t_b: row.t_b,
                    t_a: row.t_a,
                    dv,
                };
                self.fired.inc();
                fired.push(alert);
            }
        }
        drop(states);
        if !fired.is_empty() {
            let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
            for alert in &fired {
                if log.entries.len() >= self.log_capacity {
                    log.entries.pop_front();
                }
                let seq = log.next_seq;
                log.next_seq += 1;
                log.entries.push_back((seq, alert.clone()));
                obs::warn!(
                    "alert {}: {} on {} (pair {:.1}..{:.1} -> {:.1}..{:.1}, dv {:.2})",
                    alert.rule,
                    alert.kind.name(),
                    alert.metric,
                    alert.t_d,
                    alert.t_c,
                    alert.t_b,
                    alert.t_a,
                    alert.dv
                );
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &str = r#"
# watch the query latency median for jumps
[[rule]]
name = "lat-jump"                     # trailing comment
metric = "server.query_nanos.p50"
kind = "jump"
v = 20.0
t_seconds = 60.0
epsilon = 8.0
scale = 1e-6

[[rule]]
name = "qps-drop"
metric = "server.queries.rate"
kind = "drop"
v = -100.0
t_seconds = 60.0
epsilon = 50.0
"#;

    #[test]
    fn parses_the_rules_grammar() {
        let set = AlertRuleSet::parse(RULES).expect("parses");
        assert_eq!(set.rules.len(), 2);
        let lat = &set.rules[0];
        assert_eq!(lat.name, "lat-jump");
        assert_eq!(lat.metric, "server.query_nanos.p50");
        assert_eq!(lat.kind, SearchKind::Jump);
        assert_eq!(lat.scale, 1e-6);
        let qps = &set.rules[1];
        assert_eq!(qps.kind, SearchKind::Drop);
        assert_eq!(qps.scale, 1.0, "scale defaults to 1");
    }

    #[test]
    fn rejects_malformed_rules() {
        for (src, why) in [
            ("name = \"x\"\n", "key before header"),
            ("[[rule]]\nname = \"x\"\nbogus = 1\n", "unknown key"),
            ("[[rule]]\nname = \"x\"\nkind = \"sideways\"\n", "bad kind"),
            (
                "[[rule]]\nname=\"x\"\nmetric=\"m\"\nkind=\"drop\"\nv=5\nt_seconds=60\n",
                "drop with positive v",
            ),
            (
                "[[rule]]\nname=\"x\"\nmetric=\"m\"\nkind=\"jump\"\nv=5\nt_seconds=0\n",
                "t_seconds = 0",
            ),
            ("[[rule]]\nname = x\n", "unquoted string"),
        ] {
            assert!(AlertRuleSet::parse(src).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn defaults_validate() {
        for rule in AlertRuleSet::defaults().rules {
            assert!(rule.validate().is_ok(), "{rule:?}");
        }
    }

    /// `ci/alert-rules.toml` claims to mirror [`AlertRuleSet::defaults`];
    /// hold it to that, so tuning one without the other fails CI.
    #[test]
    fn ci_rules_file_mirrors_defaults() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../ci/alert-rules.toml");
        let parsed = AlertRuleSet::load(&path).expect("ci/alert-rules.toml loads");
        assert_eq!(parsed, AlertRuleSet::defaults());
    }

    fn drop_rule(v: f64, t_seconds: f64, epsilon: f64) -> AlertRuleSet {
        AlertRuleSet {
            rules: vec![AlertRule {
                name: "test-drop".to_string(),
                metric: "m".to_string(),
                kind: SearchKind::Drop,
                v,
                t_seconds,
                epsilon,
                scale: 1.0,
            }],
        }
    }

    /// A steady series that collapses: the alert must fire within a few
    /// samples of the collapse — not wait for the flat after-level to
    /// end — and carry a pair bracketing the drop.
    #[test]
    fn fires_on_a_drop_with_provisional_segments() {
        let store = SeriesStore::new(1024);
        let engine = AlertEngine::new(drop_rule(-50.0, 60.0, 5.0), 16);

        // 60 s of level 100, sampled at 1 Hz.
        for i in 0..60u64 {
            store.push("m", i * 1000, 100.0);
        }
        assert!(engine.tick(&store, 59_000).is_empty(), "no false positive");

        // The collapse: level 10 from t=60 on.
        let mut first_fired_at = None;
        let mut all_fired = Vec::new();
        let mut late_fires = 0usize;
        for i in 60..180u64 {
            store.push("m", i * 1000, 10.0);
            let fired = engine.tick(&store, i * 1000);
            if !fired.is_empty() && first_fired_at.is_none() {
                first_fired_at = Some(i);
            }
            if i >= 120 {
                late_fires += fired.len();
            }
            all_fired.extend(fired);
        }
        let i = first_fired_at.expect("the drop must fire");
        assert!(
            i <= 65,
            "provisional evaluation should catch the drop within ~5 samples, fired at {i}"
        );
        // One underlying event may surface through a handful of segment
        // pairs (cross + self, provisional + committed), but pair-key
        // dedup keeps it from flapping forever.
        assert!(all_fired.len() <= 6, "fired {}", all_fired.len());
        assert_eq!(late_fires, 0, "no re-fires once the pairs are known");
        let alert = &all_fired[0];
        assert_eq!(alert.rule, "test-drop");
        assert!(alert.dv <= -50.0, "dv = {}", alert.dv);
        assert!(
            alert.t_c <= 61.0 && alert.t_b >= 59.0,
            "pair must bracket the drop: {alert:?}"
        );
        assert_eq!(engine.alerts().len(), all_fired.len());
    }

    #[test]
    fn noise_within_epsilon_does_not_fire() {
        let store = SeriesStore::new(1024);
        let engine = AlertEngine::new(drop_rule(-50.0, 60.0, 10.0), 16);
        // +-3 units of jitter around 100: well inside epsilon.
        for i in 0..300u64 {
            let v = 100.0 + if i % 2 == 0 { 3.0 } else { -3.0 };
            store.push("m", i * 1000, v);
            assert!(engine.tick(&store, i * 1000).is_empty(), "i = {i}");
        }
    }

    /// The `alerts_since` cursor pages without duplication: polling with
    /// `after` = last seen sequence returns each alert at most once,
    /// with strictly increasing sequence numbers even across log
    /// overflow (overflow shows up as gaps, never as repeats).
    #[test]
    fn alerts_since_cursor_never_duplicates() {
        let store = SeriesStore::new(4096);
        let engine = AlertEngine::new(drop_rule(-5.0, 120.0, 0.1), 4);
        let mut cursor = 0u64;
        let mut seen = 0u64;
        for i in 0..240u64 {
            let v = if (i / 3) % 2 == 0 { 100.0 } else { 50.0 };
            store.push("m", i * 1000, v);
            engine.tick(&store, i * 1000);
            for (seq, _alert) in engine.alerts_since(cursor) {
                assert!(seq > cursor, "monotone: {seq} after {cursor}");
                cursor = seq;
                seen += 1;
            }
        }
        assert!(seen > 0, "the zigzag fires");
        assert!(cursor >= seen, "gaps only lose alerts, never repeat them");
        assert!(engine.alerts_since(cursor).is_empty(), "drained");
    }

    #[test]
    fn log_is_bounded() {
        let store = SeriesStore::new(4096);
        // Tiny thresholds so every zigzag fires.
        let engine = AlertEngine::new(drop_rule(-5.0, 120.0, 0.1), 4);
        for i in 0..600u64 {
            let v = if (i / 3) % 2 == 0 { 100.0 } else { 50.0 };
            store.push("m", i * 1000, v);
            engine.tick(&store, i * 1000);
        }
        assert!(engine.alerts().len() <= 4, "log stays bounded");
        assert!(
            obs::global().counter("alert.fired").get() > 4,
            "more alerts fired than the log retains"
        );
    }
}
