//! Rule L7: no blocking call while any lock guard is live.
//!
//! A blocking syscall under a mutex turns every waiter on that mutex
//! into a waiter on the disk (or the network, or a timer) — the exact
//! latency coupling the sharded buffer pool exists to avoid. The rule
//! fires on a fixed table of blocking operations (file I/O, fsync,
//! socket ops, sleeps, channel receives, thread joins) whenever the
//! shared guard-lifetime walk ([`crate::flow`]) says *any* guard is
//! live — classified or anonymous; an unranked mutex blocks its
//! waiters just the same.
//!
//! Some sites are blocking-under-lock *by design*: the WAL serializes
//! appends and fsyncs under its writer lock, and the buffer pool writes
//! pages under the per-file latch. Those are blessed in the
//! `[[allow_blocking]]` table of `ci/lock-order.toml` — each entry
//! carries a reason and is audited like an inline suppression: an
//! entry that stops matching anything is reported dead by L0.

use crate::config::LockOrder;
use crate::context::FileCtx;
use crate::diag::{Diagnostic, Rule};
use crate::flow::{self, CallForm, Guard, Site};

/// The blocking-operation table. Names are matched on method calls
/// (`recv.op(…)`) and path calls (`Prefix::op(…)`); bare calls are not
/// matched (a local `fn flush()` is not `File::flush`). Condvar waits
/// are deliberately absent: `wait`/`wait_timeout` release the mutex.
pub const BLOCKING_OPS: &[&str] = &[
    // File I/O and durability.
    "write_page",
    "read_page",
    "write_all",
    "read_exact",
    "read_to_end",
    "set_len",
    "seek",
    "rename",
    "remove_file",
    "sync_all",
    "sync_data",
    "fsync",
    "flush",
    "sync",
    "append_image",
    // Sockets.
    "accept",
    "connect",
    "recv",
    "send",
    "peek",
    "recv_timeout",
    // Timers and threads. `join` is deliberately absent: every `join`
    // in this workspace is `Path::join`, and a lexical table cannot
    // tell it from `JoinHandle::join`.
    "sleep",
    "park",
];

/// The result of one file's L7 pass: diagnostics plus which allowlist
/// entries matched (indices into `order.allow_blocking`), so the L0
/// audit can flag entries that no longer cover anything.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Unfiltered findings.
    pub diags: Vec<Diagnostic>,
    /// Allowlist entries that matched at least one site in this file.
    pub used_allowlist: Vec<usize>,
}

/// Runs L7 over one file. Diagnostics are unfiltered; the caller
/// applies the suppression index.
pub fn check(ctx: &FileCtx, order: &LockOrder) -> Outcome {
    if ctx.test_file {
        return Outcome::default();
    }
    let mut sink = L7Sink {
        ctx,
        order,
        out: Outcome::default(),
    };
    flow::walk_file(ctx, order, &mut sink);
    sink.out
}

struct L7Sink<'a, 's> {
    ctx: &'a FileCtx<'s>,
    order: &'a LockOrder,
    out: Outcome,
}

impl flow::Sink for L7Sink<'_, '_> {
    fn call(
        &mut self,
        site: Site,
        name: &str,
        form: CallForm,
        _qualifier: Option<&str>,
        held: &[Guard],
    ) {
        if held.is_empty()
            || form == CallForm::Bare
            || !BLOCKING_OPS.contains(&name)
            || self.ctx.in_test(site.line)
        {
            return;
        }
        if let Some(idx) = self.order.blocking_allowed(&self.ctx.path, name) {
            self.out.used_allowlist.push(idx);
            return;
        }
        let held_desc: Vec<&str> = held.iter().map(|g| g.describe()).collect();
        self.out.diags.push(
            self.ctx.diag(
                Rule::L7,
                site.line,
                site.col,
                format!(
                    "blocking call `{}` while holding {} (guard{} live since line {})",
                    name,
                    held_desc
                        .iter()
                        .map(|h| format!("`{h}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    if held.len() == 1 { "" } else { "s" },
                    held[0].line,
                ),
                "move the I/O outside the critical section, add an `[[allow_blocking]]` entry \
             in ci/lock-order.toml with a reason, or justify with `// lint: allow(L7) <reason>`"
                    .to_string(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LockOrder;
    use crate::context::SuppressionIndex;

    const ORDER: &str = r#"
order = ["shard"]

[[class]]
name = "shard"
paths = ["*.shards[]"]

[[allow_blocking]]
file = "crates/pagestore/src/wal.rs"
ops = ["write_all", "sync_data"]
reason = "WAL durability: fsync must serialize under the writer lock"
"#;

    fn run_at(path: &str, src: &str) -> (Vec<Diagnostic>, Vec<usize>) {
        let order = LockOrder::parse(ORDER).unwrap();
        let ctx = FileCtx::new(path, src);
        let mut index = SuppressionIndex::default();
        index.add_file(&ctx);
        let out = check(&ctx, &order);
        (index.filter(out.diags), out.used_allowlist)
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        run_at("crates/pagestore/src/buffer.rs", src).0
    }

    #[test]
    fn fsync_under_classified_guard_fires() {
        let src = "fn f(&self) {\n let mut s = self.shards[i].lock();\n file.sync_all();\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(
            d[0].message
                .contains("blocking call `sync_all` while holding `shard`"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn anonymous_guard_counts() {
        // An unclassified mutex still blocks its waiters.
        let src = "fn f(&self) {\n let g = self.states.lock();\n std::thread::sleep(d);\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`self.states`"), "{}", d[0].message);
    }

    #[test]
    fn no_guard_no_finding() {
        let src = "fn f(&self) {\n file.sync_all();\n std::thread::sleep(d);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn bare_calls_are_not_blocking() {
        // A local `fn flush()` shares a name with io::Write::flush;
        // only method/path forms match the table.
        let src = "fn f(&self) {\n let mut s = self.shards[i].lock();\n flush();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn condvar_wait_is_fine() {
        let src = "fn f(&self) {\n let g = self.states.lock();\n let g = cv.wait(g);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allowlist_matches_and_is_tracked() {
        let src =
            "fn append(&self) {\n let mut inner = self.inner.lock();\n f.write_all(&buf);\n f.sync_data();\n}\n";
        let (d, used) = run_at("crates/pagestore/src/wal.rs", src);
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(used, vec![0, 0]);
    }

    #[test]
    fn allowlist_is_per_file_and_per_op() {
        // Same ops in a different file are not covered.
        let src = "fn f(&self) {\n let mut s = self.shards[i].lock();\n f.write_all(&buf);\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn suppression_honored() {
        let src = "fn f(&self) {\n let mut s = self.shards[i].lock();\n file.sync_all(); // lint: allow(L7) shutdown path, no concurrent readers\n}\n";
        assert!(run(src).is_empty());
    }
}
