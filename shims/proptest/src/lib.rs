//! Offline shim for the `proptest` API surface used by this workspace.
//!
//! A miniature property-testing harness: deterministic pseudo-random case
//! generation behind the real crate's macro and `Strategy` combinator
//! names. Differences from the real `proptest`: no shrinking (a failing
//! case reports its values and seed, but is not minimized), and case seeds
//! are derived deterministically from the test name, so runs are fully
//! reproducible without a persistence file.
//!
//! Supported surface: `proptest!` (block and closure forms with optional
//! `#![proptest_config(..)]`), `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, `prop_assume!`, `any::<T>()`, numeric-range and
//! tuple strategies, `Strategy::prop_map`/`prop_filter`, `Just`, and
//! `prop::collection::vec`.

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Self { state: seed };
        let _ = rng.next_u64();
        rng
    }

    /// Derives the per-case generator for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Error type carried by failing property assertions.
pub type TestCaseError = String;
/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values of an associated type.
///
/// The real crate's strategies form a lazy tree supporting shrinking; this
/// shim only needs forward generation.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (retrying a bounded number
    /// of times before panicking, rather than globally rejecting).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// All bit patterns, including infinities, NaNs and subnormals — the
    /// same full-domain default the real crate uses for floats is wider
    /// than needed here; full bit coverage stresses order-preserving
    /// encodings hardest.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Lengths acceptable to [`vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec size range");
            lo + rng.below(hi - lo + 1)
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `len` (a fixed `usize` or a range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Runs `cfg.cases` generated cases of property `name` through `f`,
/// panicking (with the case index, for reproduction) on the first failure.
pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    for case in 0..cfg.cases {
        let mut rng = TestRng::for_case(name, case);
        if let Err(msg) = f(&mut rng) {
            panic!(
                "property '{name}' failed at case {case}/{}: {msg}",
                cfg.cases
            );
        }
    }
}

/// Asserts a condition inside a property, failing the current case (not
/// the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property (non-consuming, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(::std::format!(
                        "prop_assert_eq failed: {:?} != {:?} ({}:{})",
                        l,
                        r,
                        file!(),
                        line!()
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(::std::format!($($fmt)+));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err(::std::format!(
                        "prop_assert_ne failed: {:?} == {:?} ({}:{})",
                        l,
                        r,
                        file!(),
                        line!()
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests (block form) or runs one inline (closure form).
#[macro_export]
macro_rules! proptest {
    // Closure form: proptest!(|(x in strat, ...)| { body });
    (|($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {
        $crate::run_cases(
            $crate::ProptestConfig::default(),
            concat!(file!(), ":", line!()),
            |__rng| {
                $(let $pat = $crate::Strategy::new_value(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            },
        )
    };
    // Block form with a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    // Block form with the default config.
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` in the block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::new_value(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };

    pub mod prop {
        //! The `prop::` namespace (e.g. `prop::collection::vec`).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = Strategy::new_value(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::new_value(&(-5.0f64..5.0), &mut rng);
            assert!((-5.0..5.0).contains(&y));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            assert!(strat.new_value(&mut rng) < 19);
        }
    }

    #[test]
    fn vec_respects_length_specs() {
        let mut rng = TestRng::from_seed(3);
        let fixed = crate::collection::vec(0u32..5, 3usize);
        assert_eq!(fixed.new_value(&mut rng).len(), 3);
        let ranged = crate::collection::vec(0u32..5, 1usize..4);
        for _ in 0..50 {
            let v = ranged.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = TestRng::for_case("x", 0).next_u64();
        let b = TestRng::for_case("x", 0).next_u64();
        let c = TestRng::for_case("x", 1).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro machinery itself: generation, assume, assert.
        #[test]
        fn macro_block_form(x in 0u32..100, (a, b) in (0u32..10, 0u32..10)) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + 1);
        }
    }

    #[test]
    fn macro_closure_form() {
        proptest!(|(x in 0u32..5, y in 0u32..5)| {
            prop_assert!(x + y < 10);
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest!(|(x in 0u32..10)| {
            prop_assert!(x < 5, "x was {}", x);
        });
    }
}
