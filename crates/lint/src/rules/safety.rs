//! Rule L2: every `unsafe` block, fn, or impl is immediately preceded
//! by a comment containing `SAFETY:` — trailing on the same line,
//! within the three lines above it (room for attributes), or anywhere
//! in the contiguous comment block directly above — stating why the
//! usage is sound.

use crate::context::{is_comment, FileCtx};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::TokKind;
use std::collections::BTreeMap;

/// Runs L2 over one file. Applies everywhere, tests included —
/// `unsafe` in a test deserves a justification too.
pub fn check(ctx: &FileCtx) -> Vec<Diagnostic> {
    // Lines covered by comments → whether that comment says `SAFETY:`.
    let mut comment_lines: BTreeMap<u32, bool> = BTreeMap::new();
    for c in ctx.toks.iter().filter(|c| is_comment(c.kind)) {
        let text = c.text(ctx.src);
        let has = text.contains("SAFETY:");
        for k in 0..=text.matches('\n').count() as u32 {
            let e = comment_lines.entry(c.line + k).or_insert(false);
            *e = *e || has;
        }
    }
    let mut out = Vec::new();
    for t in ctx.toks.iter() {
        if t.kind != TokKind::Ident || t.text(ctx.src) != "unsafe" {
            continue;
        }
        let mut documented = ctx.toks.iter().any(|c| {
            is_comment(c.kind)
                && c.line + 3 >= t.line
                && c.line <= t.line
                && c.text(ctx.src).contains("SAFETY:")
        });
        // Walk the contiguous comment block directly above, so a long
        // multi-line `// SAFETY:` justification still counts.
        let mut l = t.line;
        while !documented && l > 1 && comment_lines.contains_key(&(l - 1)) {
            l -= 1;
            documented = comment_lines[&l];
        }
        if !documented {
            out.push(ctx.diag(
                Rule::L2,
                t.line,
                t.col,
                "`unsafe` without an immediately preceding `// SAFETY:` comment".into(),
                "state the invariant that makes this sound in a `// SAFETY: …` comment".into(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&FileCtx::new("crates/server/src/server.rs", src))
    }

    #[test]
    fn flags_undocumented_unsafe() {
        let d = run("fn f() { unsafe { do_it(); } }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("SAFETY"));
    }

    #[test]
    fn safety_comment_satisfies() {
        assert!(
            run("// SAFETY: handler only stores to an atomic\nunsafe { install(); }").is_empty()
        );
        // Within three lines, e.g. above an attribute.
        assert!(run("// SAFETY: fine\n#[inline]\nunsafe fn g() {}").is_empty());
        // Block comments count too.
        assert!(run("/* SAFETY: ok */ unsafe { x(); }").is_empty());
        // A long multi-line justification: SAFETY: may start more than
        // three lines up if the comment block reaches the `unsafe`.
        let long = "// SAFETY: libc `signal` is handed a handler that\n\
                    // only performs an atomic store — async-signal-safe,\n\
                    // no allocation, no locks, and no unwinding across\n\
                    // the FFI boundary.\n\
                    unsafe { install(); }";
        assert!(run(long).is_empty());
    }

    #[test]
    fn distant_comment_does_not() {
        let src = "// SAFETY: too far away\n\n\n\n\nunsafe { x(); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        assert!(run("// mentions unsafe\nlet s = \"unsafe\";").is_empty());
    }
}
