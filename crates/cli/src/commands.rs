//! Command implementations.

use crate::args::Command;
use featurespace::QueryRegion;
use segdiff::refine::refine_results;
use segdiff::{QueryPlan, SegDiffConfig, SegDiffIndex};
use sensorgen::{
    generate_sensor, read_csv, smooth::RobustSmoother, write_csv, CadTransectConfig, HOUR,
};
use std::error::Error;
use std::path::Path;

type Anyhow = Box<dyn Error>;

/// Runs one parsed command.
pub fn run(cmd: Command) -> Result<(), Anyhow> {
    match cmd {
        Command::Generate {
            csv,
            days,
            sensor,
            seed,
            raw,
        } => generate(&csv, days, sensor, seed, raw),
        Command::Ingest {
            index,
            csv,
            epsilon,
            window_hours,
            no_smooth,
        } => ingest(&index, &csv, epsilon, window_hours, no_smooth),
        Command::Query {
            index,
            kind,
            v,
            t_hours,
            plan,
            refine,
            limit,
        } => query(&index, &kind, v, t_hours, &plan, refine.as_deref(), limit),
        Command::Stats { index } => stats(&index),
        Command::Sql { index, statement } => sql(&index, &statement),
    }
}

fn generate(csv: &Path, days: u32, sensor: u32, seed: u64, raw: bool) -> Result<(), Anyhow> {
    let cfg = CadTransectConfig::default().with_days(days);
    let mut series = generate_sensor(&cfg, sensor, seed);
    if !raw {
        series = RobustSmoother::default().smooth(&series);
    }
    write_csv(csv, &series)?;
    println!(
        "wrote {} observations ({} days, sensor {sensor}) to {}",
        series.len(),
        days,
        csv.display()
    );
    Ok(())
}

fn open_or_create(index: &Path, epsilon: f64, window_hours: f64) -> Result<SegDiffIndex, Anyhow> {
    if index.join("segdiff.meta").exists() {
        Ok(SegDiffIndex::open(index, 4096)?)
    } else {
        let cfg = SegDiffConfig::default()
            .with_epsilon(epsilon)
            .with_window(window_hours * HOUR);
        Ok(SegDiffIndex::create(index, cfg)?)
    }
}

fn ingest(
    index: &Path,
    csv: &Path,
    epsilon: f64,
    window_hours: f64,
    no_smooth: bool,
) -> Result<(), Anyhow> {
    let mut series = read_csv(csv)?;
    if !no_smooth {
        series = RobustSmoother::default().smooth(&series);
    }
    let mut idx = open_or_create(index, epsilon, window_hours)?;
    let before = idx.stats().n_observations;
    idx.ingest_series(&series)?;
    idx.finish()?;
    let s = idx.stats();
    println!(
        "ingested {} observations (total {}), {} segments (r = {:.2}), {} feature rows",
        s.n_observations - before,
        s.n_observations,
        s.n_segments,
        s.compression_rate(),
        s.n_rows
    );
    Ok(())
}

fn query(
    index: &Path,
    kind: &str,
    v: f64,
    t_hours: f64,
    plan: &str,
    refine: Option<&Path>,
    limit: usize,
) -> Result<(), Anyhow> {
    let idx = SegDiffIndex::open(index, 4096)?;
    let region = match kind {
        "drop" => QueryRegion::drop(t_hours * HOUR, v),
        _ => QueryRegion::jump(t_hours * HOUR, v),
    };
    let plan = if plan == "index" {
        QueryPlan::Index
    } else {
        QueryPlan::SeqScan
    };
    let (results, qstats) = idx.query(&region, plan)?;
    println!(
        "{} periods ({} rows examined, {:.2} ms)",
        results.len(),
        qstats.rows_considered,
        qstats.wall_seconds * 1e3
    );
    for p in results.iter().take(limit) {
        println!(
            "start in [{:.1}, {:.1}]  end in [{:.1}, {:.1}]{}",
            p.t_d,
            p.t_c,
            p.t_b,
            p.t_a,
            if p.is_self_pair() { "  (single segment)" } else { "" }
        );
    }
    if results.len() > limit {
        println!("... and {} more (raise --limit)", results.len() - limit);
    }
    if let Some(raw_csv) = refine {
        let series = read_csv(raw_csv)?;
        let refined = refine_results(&series, &results, &region, 24);
        let exact = refined.iter().filter(|e| e.meets_threshold).count();
        println!("\nrefined against {}: {exact}/{} meet the threshold exactly", raw_csv.display(), refined.len());
        for e in refined.iter().filter(|e| e.meets_threshold).take(limit) {
            println!(
                "event at t = {:.1} .. {:.1}: change {:.3}",
                e.t1, e.t2, e.dv
            );
        }
    }
    Ok(())
}

fn stats(index: &Path) -> Result<(), Anyhow> {
    let idx = SegDiffIndex::open(index, 4096)?;
    let s = idx.stats();
    let hist = s.corner_hist();
    println!("observations:    {}", s.n_observations);
    println!("segments:        {} (r = {:.2})", s.n_segments, s.compression_rate());
    println!("feature rows:    {}", s.n_rows);
    println!("feature bytes:   {} ({} under the paper's c2 accounting)", s.feature_payload_bytes, s.paper_feature_bytes);
    println!("heap bytes:      {}", s.heap_bytes);
    println!("index bytes:     {}", s.index_bytes);
    println!(
        "corner cases:    {:.1}% / {:.1}% / {:.1}% (effective {:.2})",
        hist.percent(1),
        hist.percent(2),
        hist.percent(3),
        hist.effective_corners()
    );
    println!("config:          epsilon {}, window {:.1} h", idx.config().epsilon, idx.config().window / HOUR);
    Ok(())
}

fn sql(index: &Path, statement: &str) -> Result<(), Anyhow> {
    let idx = SegDiffIndex::open(index, 4096)?;
    match idx.database().execute(statement)? {
        pagestore::ExecOutcome::Created => println!("ok"),
        pagestore::ExecOutcome::Inserted(n) => println!("inserted {n} rows"),
        pagestore::ExecOutcome::Count { count, plan } => {
            println!("count: {count}  (plan: {plan:?})")
        }
        pagestore::ExecOutcome::Rows { columns, rows, plan } => {
            println!("-- plan: {plan:?}");
            println!("{}", columns.join(","));
            for row in rows {
                let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                println!("{}", cells.join(","));
            }
        }
    }
    Ok(())
}
