//! The six slope cases of Table 2.

/// Classification of a segment pair by the slopes `k_CD` (earlier segment)
/// and `k_AB` (later segment). The case determines which parallelogram
/// corners form the lower-left (drop) and upper-left (jump) boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlopeCase {
    /// `k_CD >= 0`, `k_AB <= 0`.
    C1,
    /// `k_CD >= 0`, `k_AB >= k_CD` (both non-negative).
    C2,
    /// `k_CD >= 0`, `0 < k_AB < k_CD`.
    C3,
    /// `k_CD < 0`, `k_AB >= 0`.
    C4,
    /// `k_CD < 0`, `k_AB <= k_CD` (both negative).
    C5,
    /// `k_CD < 0`, `k_CD < k_AB < 0`.
    C6,
}

impl SlopeCase {
    /// Classifies by the two slopes. Ties on the boundaries between cases
    /// are broken deterministically (the case regions overlap only where
    /// the resulting boundaries coincide, so the choice does not affect
    /// correctness).
    pub fn classify(k_cd: f64, k_ab: f64) -> SlopeCase {
        if k_cd >= 0.0 {
            if k_ab <= 0.0 {
                SlopeCase::C1
            } else if k_ab >= k_cd {
                SlopeCase::C2
            } else {
                SlopeCase::C3
            }
        } else if k_ab >= 0.0 {
            SlopeCase::C4
        } else if k_ab <= k_cd {
            SlopeCase::C5
        } else {
            SlopeCase::C6
        }
    }

    /// Number of corner points stored for drop search in this case
    /// (Table 2; the three-corner drop cases are 5/6, two-corner 1/4,
    /// one-corner 2/3). Case 5/6 may degrade to two corners at extraction
    /// time; this returns the maximum.
    pub fn drop_corner_count(&self) -> usize {
        match self {
            SlopeCase::C2 | SlopeCase::C3 => 1,
            SlopeCase::C1 | SlopeCase::C4 => 2,
            SlopeCase::C5 | SlopeCase::C6 => 3,
        }
    }

    /// Number of corner points stored for jump search (maximum).
    pub fn jump_corner_count(&self) -> usize {
        match self {
            SlopeCase::C5 | SlopeCase::C6 => 1,
            SlopeCase::C1 | SlopeCase::C4 => 2,
            SlopeCase::C2 | SlopeCase::C3 => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_table_2() {
        assert_eq!(SlopeCase::classify(1.0, -1.0), SlopeCase::C1);
        assert_eq!(SlopeCase::classify(1.0, 0.0), SlopeCase::C1);
        assert_eq!(SlopeCase::classify(1.0, 2.0), SlopeCase::C2);
        assert_eq!(SlopeCase::classify(1.0, 1.0), SlopeCase::C2);
        assert_eq!(SlopeCase::classify(1.0, 0.5), SlopeCase::C3);
        assert_eq!(SlopeCase::classify(-1.0, 0.5), SlopeCase::C4);
        assert_eq!(SlopeCase::classify(-1.0, 0.0), SlopeCase::C4);
        assert_eq!(SlopeCase::classify(-1.0, -2.0), SlopeCase::C5);
        assert_eq!(SlopeCase::classify(-1.0, -1.0), SlopeCase::C5);
        assert_eq!(SlopeCase::classify(-1.0, -0.5), SlopeCase::C6);
    }

    #[test]
    fn classification_is_total() {
        // Any (finite) pair of slopes maps to some case.
        for &k1 in &[-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0] {
            for &k2 in &[-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0] {
                let _ = SlopeCase::classify(k1, k2);
            }
        }
    }

    #[test]
    fn corner_counts_match_paper() {
        // Drop: case 2 needs one corner, case 1 two, case 5 up to three.
        assert_eq!(SlopeCase::C2.drop_corner_count(), 1);
        assert_eq!(SlopeCase::C1.drop_corner_count(), 2);
        assert_eq!(SlopeCase::C5.drop_corner_count(), 3);
        // Jump is the mirror image.
        assert_eq!(SlopeCase::C5.jump_corner_count(), 1);
        assert_eq!(SlopeCase::C4.jump_corner_count(), 2);
        assert_eq!(SlopeCase::C2.jump_corner_count(), 3);
    }
}
