//! SQL abstract syntax.

/// Binary operators, in increasing precedence groups: `OR`, `AND`,
/// comparisons, additive, multiplicative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical or.
    Or,
    /// Logical and.
    And,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

/// An expression over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference (resolved by name at execution time).
    Column(String),
    /// A numeric literal.
    Number(f64),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
}

/// The SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`.
    All,
    /// `COUNT(*)`.
    Count,
    /// Named columns.
    Columns(Vec<String>),
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names.
        cols: Vec<String>,
    },
    /// `CREATE INDEX name ON table (col, ...)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// Indexed column names.
        cols: Vec<String>,
    },
    /// `INSERT INTO table VALUES (..), (..)`.
    Insert {
        /// Table name.
        table: String,
        /// Row literals.
        rows: Vec<Vec<f64>>,
    },
    /// `SELECT ... FROM table [WHERE expr] [USING INDEX name] [LIMIT n]`.
    Select {
        /// What to return.
        projection: Projection,
        /// Table name.
        table: String,
        /// Optional filter.
        predicate: Option<Expr>,
        /// Optional index hint.
        index_hint: Option<String>,
        /// Optional row limit.
        limit: Option<u64>,
    },
}

impl Expr {
    /// Splits a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut v = lhs.conjuncts();
                v.extend(rhs.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// If this expression is `column <op> literal` (or the mirrored
    /// `literal <op> column`), returns `(column, op-as-if-column-on-left,
    /// literal)`.
    pub fn as_column_bound(&self) -> Option<(&str, BinOp, f64)> {
        let Expr::Binary { op, lhs, rhs } = self else {
            return None;
        };
        let flip = |op: BinOp| match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        };
        match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Column(c), rhs) => rhs.as_constant().map(|n| (c.as_str(), *op, n)),
            (lhs, Expr::Column(c)) => lhs.as_constant().map(|n| (c.as_str(), flip(*op), n)),
            _ => None,
        }
    }

    /// Evaluates a constant expression (literals and arithmetic only).
    pub fn as_constant(&self) -> Option<f64> {
        match self {
            Expr::Number(n) => Some(*n),
            Expr::Neg(e) => e.as_constant().map(|v| -v),
            Expr::Binary { op, lhs, rhs } => {
                let (a, b) = (lhs.as_constant()?, rhs.as_constant()?);
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div => Some(a / b),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: &str) -> Expr {
        Expr::Column(n.into())
    }

    fn num(v: f64) -> Expr {
        Expr::Number(v)
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    #[test]
    fn conjuncts_flatten() {
        let e = bin(
            BinOp::And,
            bin(BinOp::And, col("a"), col("b")),
            bin(BinOp::Or, col("c"), col("d")),
        );
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn column_bounds_detected_both_ways() {
        let e = bin(BinOp::Le, col("dt"), num(3600.0));
        assert_eq!(e.as_column_bound(), Some(("dt", BinOp::Le, 3600.0)));
        let e = bin(BinOp::Ge, num(3600.0), col("dt"));
        assert_eq!(e.as_column_bound(), Some(("dt", BinOp::Le, 3600.0)));
        let e = bin(BinOp::Le, col("dt"), bin(BinOp::Mul, num(2.0), num(1800.0)));
        assert_eq!(e.as_column_bound(), Some(("dt", BinOp::Le, 3600.0)));
        let e = bin(BinOp::Le, col("dt"), col("dv"));
        assert_eq!(e.as_column_bound(), None);
    }

    #[test]
    fn constant_folding() {
        let e = Expr::Neg(Box::new(bin(
            BinOp::Div,
            bin(BinOp::Add, num(1.0), num(2.0)),
            num(4.0),
        )));
        assert_eq!(e.as_constant(), Some(-0.75));
        assert_eq!(col("x").as_constant(), None);
    }
}
