//! A minimal SQL layer over the engine.
//!
//! The paper stores features in a relational database and retrieves them
//! with "standard SQL queries" (§6). This module provides exactly the SQL
//! surface those queries need, so SegDiff's point and line queries (§4.4)
//! can be written and executed as real SQL text:
//!
//! ```sql
//! SELECT td, tc, tb, ta FROM drop2
//! WHERE dt1 <= 3600 AND dv1 > -3
//!   AND dt2 > 3600 AND dv2 < -3
//!   AND dv1 + (dv2 - dv1) / (dt2 - dt1) * (3600 - dt1) <= -3
//! ```
//!
//! Supported statements:
//!
//! * `CREATE TABLE t (a, b, c)` — every column is `f64`;
//! * `CREATE INDEX i ON t (a, b)` — a B+tree over the named columns;
//! * `INSERT INTO t VALUES (1, 2, 3), (4, 5, 6)`;
//! * `SELECT * | cols | COUNT(*) FROM t [WHERE expr] [USING INDEX i] [LIMIT n]`.
//!
//! `WHERE` expressions support the comparison operators, `AND`/`OR`/`NOT`,
//! parentheses, and full arithmetic (`+ - * /`) — enough for the paper's
//! line-query interpolation predicate. The planner picks an index
//! automatically when a top-level conjunct bounds the index's first column
//! (or obeys an explicit `USING INDEX`); everything else runs as a
//! sequential scan with the predicate evaluated per row.
//!
//! ```
//! use pagestore::{Database, ExecOutcome};
//!
//! let dir = std::env::temp_dir().join(format!("pagestore-sql-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let db = Database::create(&dir, 128).unwrap();
//! db.execute("CREATE TABLE ev (dt, dv, t)").unwrap();
//! db.execute("INSERT INTO ev VALUES (1800, -3.5, 0), (900, -1.0, 300)").unwrap();
//! db.execute("CREATE INDEX by_dt_dv ON ev (dt, dv)").unwrap();
//! let out = db.execute("SELECT COUNT(*) FROM ev WHERE dt <= 3600 AND dv <= -3").unwrap();
//! match out {
//!     ExecOutcome::Count { count, .. } => assert_eq!(count, 1),
//!     other => panic!("{other:?}"),
//! }
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

mod ast;
mod eval;
mod exec;
mod lexer;
mod parser;

pub use ast::{BinOp, Expr, Projection, Statement};
pub use exec::{ExecOutcome, Plan};
pub use lexer::{tokenize, Token};
pub use parser::parse;

use crate::db::Database;
use crate::error::Result;

impl Database {
    /// Parses and executes one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parse(sql)?;
        exec::execute(self, stmt)
    }
}
