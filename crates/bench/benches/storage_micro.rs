//! Micro-benchmarks of the storage substrate: B+tree insert/range, heap
//! scan, buffer-pool hit path, and key encoding. These are the building
//! blocks whose costs the paper's tables aggregate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pagestore::{encode_f64, BTree, BufferPool, Database, PageFile, TableSpec};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_encode(c: &mut Criterion) {
    c.bench_function("storage/encode_f64", |b| {
        let mut x = 1.0f64;
        b.iter(|| {
            x += 0.001;
            black_box(encode_f64(black_box(x)))
        })
    });
}

fn bench_btree(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("segdiff-bench-storage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut group = c.benchmark_group("storage/btree_insert");
    group.sample_size(10);
    for n in [10_000u64, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut round = 0u64;
            b.iter(|| {
                let path = dir.join(format!("bt-{round}.idx"));
                round += 1;
                let pool = Arc::new(BufferPool::new(4096));
                let fid = pool.register_file(PageFile::create(&path).unwrap());
                let mut bt = BTree::create(pool, fid, 16).unwrap();
                let mut key = [0u8; 16];
                for i in 0..n {
                    key[..8].copy_from_slice(&(i.wrapping_mul(0x9E3779B97F4A7C15)).to_be_bytes());
                    key[8..].copy_from_slice(&i.to_be_bytes());
                    bt.insert(&key, i).unwrap();
                }
                std::fs::remove_file(&path).ok();
                black_box(bt.len())
            })
        });
    }
    group.finish();

    // Range scans over a prebuilt tree.
    let path = dir.join("bt-range.idx");
    let pool = Arc::new(BufferPool::new(4096));
    let fid = pool.register_file(PageFile::create(&path).unwrap());
    let mut bt = BTree::create(pool, fid, 8).unwrap();
    for i in 0..200_000u64 {
        bt.insert(&i.to_be_bytes(), i).unwrap();
    }
    let mut group = c.benchmark_group("storage/btree_range");
    group.sample_size(20);
    for span in [100u64, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(span), &span, |b, &span| {
            b.iter(|| {
                let mut count = 0u64;
                bt.range(
                    &50_000u64.to_be_bytes(),
                    &(50_000 + span).to_be_bytes(),
                    |_, _| {
                        count += 1;
                        true
                    },
                )
                .unwrap();
                black_box(count)
            })
        });
    }
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

fn bench_heap_scan(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("segdiff-bench-heap-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db = Database::create(&dir, 8192).unwrap();
    let t = db
        .create_table(TableSpec::new("rows", &["a", "b", "c"]))
        .unwrap();
    for i in 0..200_000 {
        t.insert(&[i as f64, -(i as f64), 0.5 * i as f64]).unwrap();
    }
    let mut group = c.benchmark_group("storage/heap_scan");
    group.sample_size(15);
    group.bench_function("200k_rows_warm", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            t.seq_scan(|_, row| {
                if row[1] <= -100_000.0 {
                    hits += 1;
                }
                true
            })
            .unwrap();
            black_box(hits)
        })
    });
    group.bench_function("200k_rows_cold", |b| {
        b.iter(|| {
            db.clear_cache().unwrap();
            let mut hits = 0u64;
            t.seq_scan(|_, row| {
                if row[1] <= -100_000.0 {
                    hits += 1;
                }
                true
            })
            .unwrap();
            black_box(hits)
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_encode, bench_btree, bench_heap_scan
}
criterion_main!(benches);
