//! `segdiff` — the command-line front end.
//!
//! ```text
//! segdiff generate --csv data.csv --days 30 [--sensor 12] [--seed 42] [--raw]
//! segdiff ingest   --index DIR --csv data.csv [--epsilon 0.2] [--window-hours 8] [--no-smooth]
//! segdiff query    --index DIR --kind drop --v -3 --t-hours 1 [--plan scan|index] [--refine data.csv]
//! segdiff stats    --index DIR
//! segdiff sql      --index DIR "SELECT COUNT(*) FROM drop2"
//! ```
//!
//! `ingest` creates the index directory on first use and *resumes* an
//! existing one (observations must keep increasing in time). `query`
//! prints one result period per line; with `--refine` it also locates the
//! steepest concrete event inside each period against the raw CSV.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
