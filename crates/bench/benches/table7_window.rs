//! Table 7 / Figures 12–13 counterpart: ingest and query cost as the
//! window width w grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segdiff::{FeatureExtractor, QueryPlan};
use segdiff_bench::{build_segdiff, default_series};
use sensorgen::HOUR;
use std::hint::black_box;
use std::time::Duration;

fn bench_window(c: &mut Criterion) {
    let series = default_series(10, 1);
    let region = featurespace::QueryRegion::drop(1.0 * HOUR, -3.0);
    let base = std::env::temp_dir().join(format!("segdiff-bench-t7-{}", std::process::id()));
    let pla = segmentation::segment_series(&series, 0.2);
    let segments = pla.segments().to_vec();

    // Feature extraction cost grows with w (more pairs per segment).
    let mut group = c.benchmark_group("table7/extract_by_window");
    group.sample_size(12);
    for wh in [1.0, 4.0, 8.0, 16.0] {
        group.bench_with_input(BenchmarkId::from_parameter(wh), &wh, |b, &wh| {
            b.iter(|| {
                let mut ex = FeatureExtractor::new(0.2, wh * HOUR);
                let mut rows = Vec::new();
                for &s in &segments {
                    ex.push_segment(s, &mut rows);
                }
                black_box(rows.len())
            })
        });
    }
    group.finish();

    // Query cost over stores built with different w.
    let mut group = c.benchmark_group("table7/scan_by_window");
    group.sample_size(20);
    for wh in [1.0, 8.0, 16.0] {
        let built = build_segdiff(
            &series,
            0.2,
            wh * HOUR,
            8192,
            &base.join(format!("w{wh}")),
            false,
        );
        group.bench_with_input(BenchmarkId::from_parameter(wh), &wh, |b, _| {
            b.iter(|| {
                black_box(
                    built
                        .index
                        .query(&region, QueryPlan::SeqScan)
                        .unwrap()
                        .0
                        .len(),
                )
            })
        });
    }
    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_window
}
criterion_main!(benches);
