//! Warm replica: bootstrap from a primary's data files, then tail its
//! WAL over `GET /wal` and replay through the ordinary recovery path.
//!
//! The protocol has two phases per sensor:
//!
//! 1. **Bootstrap** — copy the sensor directory over
//!    `GET /wal/manifest?sensor=` + `GET /wal/file` (data files first,
//!    `wal.log` last, so the log covers anything the data files were
//!    still missing), truncate the copied log to its valid prefix, and
//!    remember the log's last LSN as the replication cursor. A
//!    checkpoint racing the copy moves the log's start LSN; the copy is
//!    simply retried.
//! 2. **Tail** — poll `GET /wal?sensor=&after_lsn=cursor`, append the
//!    shipped raw frames to the local `wal.log`, and refresh the serving
//!    engine by reopening the directory: recovery replays the primary's
//!    page images (file order, no LSN assumptions), truncates to the
//!    last commit, rebuilds indexes, and checkpoints. A `restart` flag
//!    (cursor older than the primary's truncated history) falls back to
//!    a fresh bootstrap of that sensor.
//!
//! The replica never writes through its own engine, so the local log is
//! exclusively: `[local checkpoint][shipped primary frames...]` — which
//! recovery replays correctly because it follows file order.
//!
//! Cursors persist in `replica.cursor` at the replica root (one
//! `sensor lsn` line each), so a restarted replica resumes tailing
//! instead of re-copying, unless the primary checkpointed past it.

use crate::loadgen::{fetch, fetch_bytes};
use crate::service::{Engine, EngineCell};
use crate::ship;
use obs::json::Json;
use pagestore::{sync_from_env, wal, WalSegment, WAL_FILE};
use segdiff::TransectIndex;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Name of the cursor file at the replica root (excluded from
/// bootstrap manifests).
pub const CURSOR_FILE: &str = "replica.cursor";

/// Full-directory copy attempts before giving up on a sensor whose
/// primary keeps checkpointing mid-copy.
const SYNC_ATTEMPTS: usize = 5;

/// Granularity of the shutdown-aware sleep between tail rounds.
const SLEEP_SLICE: Duration = Duration::from_millis(20);

/// How a [`Replica`] reaches its primary and lays out local state.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The primary's `host:port`.
    pub primary: String,
    /// Local replica data directory (created if missing).
    pub root: PathBuf,
    /// Buffer-pool pages per sensor database.
    pub pool_pages: usize,
    /// Worker threads for fan-out queries on the replica engine.
    pub threads: usize,
    /// Tail-poll interval.
    pub poll: Duration,
    /// Bytes of WAL frames (or file chunk) requested per round trip.
    pub max_bytes: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            primary: String::new(),
            root: PathBuf::new(),
            pool_pages: 4096,
            threads: 4,
            poll: Duration::from_millis(200),
            max_bytes: 1 << 20,
        }
    }
}

/// `replica.*` telemetry published to the global registry.
struct ReplicaMetrics {
    rounds: Arc<obs::Counter>,
    errors: Arc<obs::Counter>,
    frames: Arc<obs::Counter>,
    bytes: Arc<obs::Counter>,
    resyncs: Arc<obs::Counter>,
    refreshes: Arc<obs::Counter>,
}

impl ReplicaMetrics {
    fn new() -> Self {
        let r = obs::global();
        ReplicaMetrics {
            rounds: r.counter("replica.ship_rounds"),
            errors: r.counter("replica.ship_errors"),
            frames: r.counter("replica.frames_applied"),
            bytes: r.counter("replica.bytes_applied"),
            resyncs: r.counter("replica.resyncs"),
            refreshes: r.counter("replica.engine_refreshes"),
        }
    }
}

/// A warm replica of one shard primary: owns the swappable engine the
/// server serves reads from, and the tail loop that keeps it fresh.
pub struct Replica {
    cfg: ReplicaConfig,
    cell: Arc<EngineCell>,
    /// Per-sensor replication cursor: last primary LSN applied.
    cursors: BTreeMap<u32, u64>,
    /// Set while the serving engine lags the applied log (a failed
    /// refresh retries next round even without new frames).
    engine_stale: bool,
    metrics: ReplicaMetrics,
}

impl Replica {
    /// Bootstraps (or resumes) a replica of `cfg.primary` into
    /// `cfg.root` and opens the serving engine. Fails if the primary is
    /// unreachable, serves no sensors, or is itself a replica.
    pub fn bootstrap(cfg: ReplicaConfig) -> Result<Replica, String> {
        std::fs::create_dir_all(&cfg.root)
            .map_err(|e| format!("create {}: {e}", cfg.root.display()))?;
        let (status, body) = fetch(&cfg.primary, "GET", "/wal/manifest", None)?;
        if status != 200 {
            return Err(format!(
                "GET /wal/manifest on {}: status {status}",
                cfg.primary
            ));
        }
        let doc = Json::parse(&body).map_err(|e| format!("bad manifest: {e}"))?;
        let role = doc.get("role").and_then(Json::as_str).unwrap_or("");
        if role != "primary" {
            return Err(format!(
                "{} reports role {role:?}; replicas only follow primaries",
                cfg.primary
            ));
        }
        let sensors: Vec<u32> = match doc.get("sensors") {
            Some(Json::Array(items)) => items
                .iter()
                .filter_map(Json::as_u64)
                .filter(|&n| n <= u64::from(u32::MAX))
                .map(|n| n as u32)
                .collect(),
            _ => Vec::new(),
        };
        if sensors.is_empty() {
            return Err(format!("{} serves no sensors", cfg.primary));
        }
        let mut replica = Replica {
            cell: EngineCell::empty(),
            cursors: load_cursors(&cfg.root),
            engine_stale: true,
            metrics: ReplicaMetrics::new(),
            cfg,
        };
        // Cursors for sensors the primary no longer serves are stale.
        replica.cursors.retain(|sensor, _| sensors.contains(sensor));
        for &sensor in &sensors {
            let resumable = replica.cursors.contains_key(&sensor)
                && replica.sensor_dir(sensor).join(WAL_FILE).exists();
            if !resumable {
                replica.sync_sensor(sensor)?;
            }
        }
        replica.save_cursors()?;
        replica.refresh_engine()?;
        Ok(replica)
    }

    /// The swappable engine to serve queries from.
    pub fn engine(&self) -> Engine {
        Engine::Swappable(Arc::clone(&self.cell))
    }

    /// Sensors this replica mirrors, ascending.
    pub fn sensor_ids(&self) -> Vec<u32> {
        self.cursors.keys().copied().collect()
    }

    /// Runs tail rounds every `poll` until `shutdown` is set. Errors
    /// (primary down, mid-copy races) are counted and retried next
    /// round; the engine keeps serving the last applied state.
    pub fn run(mut self, shutdown: Arc<AtomicBool>) {
        while !shutdown.load(Ordering::Acquire) {
            let round_start = Instant::now();
            if let Err(e) = self.round() {
                self.metrics.errors.inc();
                obs::warn!("replica round failed: {e}");
            }
            while round_start.elapsed() < self.cfg.poll && !shutdown.load(Ordering::Acquire) {
                let remaining = self.cfg.poll.saturating_sub(round_start.elapsed());
                std::thread::sleep(remaining.min(SLEEP_SLICE));
            }
        }
    }

    /// One tail round over every sensor; refreshes the engine when any
    /// sensor advanced (or a previous refresh failed).
    pub fn round(&mut self) -> Result<(), String> {
        self.metrics.rounds.inc();
        let mut dirty = false;
        for sensor in self.sensor_ids() {
            let cursor = self.cursors.get(&sensor).copied().unwrap_or(0);
            let seg = self.fetch_segment(sensor, cursor)?;
            if seg.restart {
                // The primary checkpointed past our cursor: history we
                // never saw is gone, so re-copy the whole sensor.
                self.metrics.resyncs.inc();
                self.sync_sensor(sensor)?;
                dirty = true;
                continue;
            }
            if seg.frames.is_empty() {
                continue;
            }
            self.append_frames(sensor, &seg)?;
            self.cursors.insert(sensor, seg.last_lsn);
            dirty = true;
        }
        if dirty || self.engine_stale {
            self.refresh_engine()?;
            self.save_cursors()?;
        }
        Ok(())
    }

    fn sensor_dir(&self, sensor: u32) -> PathBuf {
        self.cfg.root.join(format!("sensor-{sensor}"))
    }

    fn fetch_segment(&self, sensor: u32, after: u64) -> Result<WalSegment, String> {
        let target = format!(
            "/wal?sensor={sensor}&after_lsn={after}&max_bytes={}",
            self.cfg.max_bytes
        );
        let (status, body) = fetch_bytes(&self.cfg.primary, "GET", &target, None)?;
        if status != 200 {
            return Err(format!("GET {target}: status {status}"));
        }
        ship::decode_segment(&body)
    }

    fn append_frames(&self, sensor: u32, seg: &WalSegment) -> Result<(), String> {
        let path = self.sensor_dir(sensor).join(WAL_FILE);
        let mut file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        file.write_all(&seg.frames)
            .map_err(|e| format!("append {}: {e}", path.display()))?;
        if sync_from_env() {
            file.sync_all()
                .map_err(|e| format!("sync {}: {e}", path.display()))?;
        }
        self.metrics.frames.add(ship::count_frames(&seg.frames));
        self.metrics.bytes.add(seg.frames.len() as u64);
        Ok(())
    }

    /// Full directory copy of one sensor, retried while the primary's
    /// checkpoints race the copy.
    fn sync_sensor(&mut self, sensor: u32) -> Result<(), String> {
        for _ in 0..SYNC_ATTEMPTS {
            if self.try_sync_sensor(sensor)? {
                return Ok(());
            }
        }
        Err(format!(
            "sensor {sensor}: primary kept checkpointing during the copy"
        ))
    }

    fn try_sync_sensor(&mut self, sensor: u32) -> Result<bool, String> {
        let dir = self.sensor_dir(sensor);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        // Log horizon before the copy: a checkpoint during it moves the
        // log's start LSN, and the attempt returns false to retry.
        let pre = self.fetch_segment(sensor, u64::MAX)?;
        let target = format!("/wal/manifest?sensor={sensor}");
        let (status, body) = fetch(&self.cfg.primary, "GET", &target, None)?;
        if status != 200 {
            return Err(format!("GET {target}: status {status}"));
        }
        let doc = Json::parse(&body).map_err(|e| format!("bad manifest: {e}"))?;
        let names: Vec<String> = match doc.get("files") {
            Some(Json::Array(items)) => items
                .iter()
                .filter_map(|f| f.get("name").and_then(Json::as_str))
                .map(str::to_string)
                .collect(),
            _ => return Err(format!("manifest for sensor {sensor} lists no files")),
        };
        // Data files first, the log last: the log then covers every
        // change a data file copy might have caught mid-flight.
        for name in names.iter().filter(|n| n.as_str() != WAL_FILE) {
            self.copy_file(sensor, name, &dir)?;
        }
        if names.iter().any(|n| n == WAL_FILE) {
            self.copy_file(sensor, WAL_FILE, &dir)?;
        }
        let post = self.fetch_segment(sensor, u64::MAX)?;
        if post.log_start_lsn != pre.log_start_lsn {
            return Ok(false);
        }
        // Truncate the copied log to its valid prefix: the copy may end
        // in a torn frame, and appended frames after torn bytes would be
        // invisible to recovery.
        let log_path = dir.join(WAL_FILE);
        let local =
            wal::read_after(&log_path, u64::MAX, 0).map_err(|e| format!("scan copied log: {e}"))?;
        if local.log_start_lsn != pre.log_start_lsn {
            return Ok(false);
        }
        let file = OpenOptions::new()
            .write(true)
            .open(&log_path)
            .map_err(|e| format!("open {}: {e}", log_path.display()))?;
        file.set_len(local.valid_bytes)
            .map_err(|e| format!("truncate {}: {e}", log_path.display()))?;
        if sync_from_env() {
            file.sync_all()
                .map_err(|e| format!("sync {}: {e}", log_path.display()))?;
        }
        self.cursors.insert(sensor, local.log_end_lsn);
        Ok(true)
    }

    fn copy_file(&self, sensor: u32, name: &str, dir: &Path) -> Result<(), String> {
        let path = dir.join(name);
        let mut out =
            std::fs::File::create(&path).map_err(|e| format!("create {}: {e}", path.display()))?;
        let mut offset = 0u64;
        loop {
            let target = format!(
                "/wal/file?sensor={sensor}&name={name}&offset={offset}&len={}",
                self.cfg.max_bytes
            );
            let (status, chunk) = fetch_bytes(&self.cfg.primary, "GET", &target, None)?;
            if status != 200 {
                return Err(format!("GET {target}: status {status}"));
            }
            if chunk.is_empty() {
                break;
            }
            out.write_all(&chunk)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            offset += chunk.len() as u64;
        }
        if sync_from_env() {
            out.sync_all()
                .map_err(|e| format!("sync {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Reopens the replica directory and swaps the serving engine. The
    /// old engine drops first — recovery rewrites the very files it
    /// holds open, and two buffer pools over one directory tear reads —
    /// so queries in the short gap get the typed reload error.
    fn refresh_engine(&mut self) -> Result<(), String> {
        self.engine_stale = true;
        self.cell.clear();
        let index = TransectIndex::open(&self.cfg.root, self.cfg.pool_pages)
            .map_err(|e| format!("open replica index: {e}"))?;
        self.cell
            .set(Engine::transect(Arc::new(index), self.cfg.threads));
        self.cell
            .set_applied_lsn(self.cursors.values().copied().max().unwrap_or(0));
        self.engine_stale = false;
        self.metrics.refreshes.inc();
        Ok(())
    }

    fn save_cursors(&self) -> Result<(), String> {
        let mut text = String::new();
        for (sensor, lsn) in &self.cursors {
            text.push_str(&format!("{sensor} {lsn}\n"));
        }
        let tmp = self.cfg.root.join("replica.cursor.tmp");
        std::fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, self.cfg.root.join(CURSOR_FILE))
            .map_err(|e| format!("persist {CURSOR_FILE}: {e}"))?;
        Ok(())
    }
}

/// Loads persisted cursors; a missing or garbled file is an empty map
/// (the affected sensors re-bootstrap).
fn load_cursors(root: &Path) -> BTreeMap<u32, u64> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(root.join(CURSOR_FILE)) else {
        return out;
    };
    for line in text.lines() {
        if let Some((sensor, lsn)) = line.split_once(' ') {
            if let (Ok(sensor), Ok(lsn)) = (sensor.parse(), lsn.parse()) {
                out.insert(sensor, lsn);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_file_round_trips() {
        let root = std::env::temp_dir().join(format!("segdiff-cursor-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).expect("mkdir");
        assert!(load_cursors(&root).is_empty(), "missing file is empty");
        std::fs::write(root.join(CURSOR_FILE), "0 17\n3 9\nbad line\nx y\n").expect("write");
        let cursors = load_cursors(&root);
        assert_eq!(cursors.len(), 2);
        assert_eq!(cursors.get(&0), Some(&17));
        assert_eq!(cursors.get(&3), Some(&9));
        std::fs::remove_dir_all(&root).ok();
    }
}
