//! CI gate and scaling experiment for the standing-query subsystem
//! (DESIGN.md §5h).
//!
//! Two modes, consumed by the `subsmoke` binary:
//!
//! * **smoke** — end-to-end push delivery: serve a real index, register
//!   a population of subscriptions over HTTP (a mix of regions that must
//!   match a planted drop and regions that must not), ingest the planted
//!   series through the live registry, then poll every cursor and check
//!   each expected notification arrives **exactly once** and no
//!   unexpected subscription hears anything.
//! * **churn** — the indexing claim: with ~1,000 standing regions per
//!   sensor, matching committed features through the [`RegionIndex`]
//!   must test far fewer regions than the brute-force scan while
//!   returning the identical match set.

use crate::harness::{build_segdiff, default_series, scratch_dir, Scale};
use featurespace::{QueryRegion, RegionIndex, RegionMatchStats};
use obs::json::Json;
use segdiff::{FeatureExtractor, FeatureRow, SegDiffConfig, SegDiffIndex};
use segdiff_server::loadgen::fetch;
use segdiff_server::{Server, ServerConfig};
use sensorgen::{TimeSeries, HOUR};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The sensor id the smoke's planted series is ingested as.
pub const PLANTED_SENSOR: u32 = 7;
/// Extent of the planted drop: 4 units over 6 steps of 300 s,
/// starting at observation 80.
pub const PLANTED_START: f64 = 80.0 * 300.0;
/// End of the planted drop's containing interval.
pub const PLANTED_END: f64 = 86.0 * 300.0;

/// A series with one unmistakable 4-unit drop at [`PLANTED_START`].
pub fn planted_series() -> TimeSeries {
    let mut s = TimeSeries::new();
    let mut v = 10.0;
    for i in 0..200 {
        let t = i as f64 * 300.0;
        if (80..86).contains(&i) {
            v -= 4.0 / 6.0;
        }
        s.push(t, v);
    }
    s
}

// ---------------------------------------------------------------------
// smoke mode
// ---------------------------------------------------------------------

/// One subscription-smoke run.
#[derive(Debug, Clone)]
pub struct SmokeConfig {
    /// Total subscriptions to register (mixed matchers and decoys).
    pub subs: usize,
    /// How long to keep polling for missing notifications.
    pub deadline: Duration,
}

impl SmokeConfig {
    /// The configuration CI runs.
    pub fn ci() -> SmokeConfig {
        SmokeConfig {
            subs: 40,
            deadline: Duration::from_secs(10),
        }
    }
}

/// What a smoke run observed, before any pass/fail judgement.
#[derive(Debug, Clone)]
pub struct SmokeOutcome {
    /// Subscriptions registered.
    pub subs: usize,
    /// Subscriptions whose region must match the planted drop.
    pub matchers: usize,
    /// Matcher ids that never received a notification.
    pub missing: Vec<u64>,
    /// Decoy ids that received one (must stay empty).
    pub unexpected: Vec<u64>,
    /// `(sub, seq)` pairs seen more than once across all polls.
    pub duplicates: u64,
    /// Matcher ids whose notifications never covered the planted window.
    pub uncovered: Vec<u64>,
    /// Worst observed publish-to-poll latency, milliseconds.
    pub max_latency_ms: i64,
    /// Every notification received, one JSON object per line (artifact).
    pub notification_log: String,
    /// Raw `GET /subscribe` body after registration (artifact).
    pub subs_body: String,
}

fn register(host: &str, body: &str) -> Result<u64, String> {
    let (status, resp) = fetch(host, "POST", "/subscribe", Some(body))?;
    if status != 200 {
        return Err(format!("POST /subscribe returned {status}: {resp}"));
    }
    Json::parse(&resp)
        .map_err(|e| format!("parse /subscribe response: {e}"))?
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| "subscribe response has no id".to_string())
}

/// Serves a real index, registers `config.subs` standing queries over
/// HTTP, ingests the planted series through the server's live registry,
/// and polls every cursor until the deadline.
pub fn run_subsmoke(config: &SmokeConfig) -> Result<SmokeOutcome, String> {
    let dir = scratch_dir("subsmoke-served");
    let scale = Scale::tiny();
    let series = default_series(scale.subset_days, scale.seed);
    let built = build_segdiff(&series, 0.2, 8.0 * HOUR, scale.pool_pages, &dir, true);
    let index = Arc::new(built.index);

    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&index),
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind subsmoke server: {e}"))?;
    let host = server.local_addr().to_string();
    let registry = Arc::clone(&server.service().observability().subs);
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());

    // Four interleaved populations: two that must hear about the planted
    // drop (one listening to every sensor, one pinned to the planted
    // sensor) and two decoys whose regions or sensor filters exclude it.
    let mut matchers: Vec<u64> = Vec::new();
    let mut decoys: Vec<u64> = Vec::new();
    for i in 0..config.subs.max(4) {
        let (body, matches) = match i % 4 {
            0 => (
                format!(r#"{{"kind":"drop","v":-3.0,"t_hours":1.0,"label":"m-all-{i}"}}"#),
                true,
            ),
            1 => (
                format!(
                    r#"{{"kind":"drop","v":-2.5,"t_hours":1.0,"label":"m-s7-{i}","sensors":[{PLANTED_SENSOR}]}}"#
                ),
                true,
            ),
            2 => (
                // Far deeper and faster than anything the series contains.
                format!(r#"{{"kind":"drop","v":-50.0,"t_hours":0.01,"label":"d-region-{i}"}}"#),
                false,
            ),
            _ => (
                // Right region, wrong sensor.
                format!(
                    r#"{{"kind":"drop","v":-3.0,"t_hours":1.0,"label":"d-sensor-{i}","sensors":[9]}}"#
                ),
                false,
            ),
        };
        let id = register(&host, &body)?;
        if matches {
            matchers.push(id);
        } else {
            decoys.push(id);
        }
    }
    let (_, subs_body) = fetch(&host, "GET", "/subscribe", None)?;

    // Ingest the planted series through the server's live registry, the
    // way a collector co-located with the server would.
    let side_dir = scratch_dir("subsmoke-ingest");
    std::fs::remove_dir_all(&side_dir).ok();
    let mut side = SegDiffIndex::create(&side_dir, SegDiffConfig::default())
        .map_err(|e| format!("create ingest index: {e}"))?;
    side.attach_subscriptions(Arc::clone(&registry), PLANTED_SENSOR);
    side.ingest_series(&planted_series())
        .map_err(|e| format!("ingest planted series: {e}"))?;
    side.finish().map_err(|e| format!("finish ingest: {e}"))?;

    // Poll every cursor until each matcher has heard something (or the
    // deadline passes), recording seqs so repeats are visible.
    let mut seen: Vec<Vec<u64>> = vec![Vec::new(); matchers.len() + decoys.len()];
    let mut log = String::new();
    let mut covered: Vec<bool> = vec![false; matchers.len()];
    let mut duplicates = 0u64;
    let mut max_latency_ms = 0i64;
    let deadline = Instant::now() + config.deadline;
    loop {
        let mut all_matched = true;
        for (slot, &id) in matchers.iter().chain(decoys.iter()).enumerate() {
            let path = format!("/notifications?sub={id}&after=0&max=1000");
            let (status, body) = fetch(&host, "GET", &path, None)?;
            if status != 200 {
                return Err(format!("GET {path} returned {status}: {body}"));
            }
            let doc = Json::parse(&body).map_err(|e| format!("parse notifications: {e}"))?;
            let now_ms = obs::unix_ms() as i64;
            let empty = Vec::new();
            for n in doc
                .get("notifications")
                .and_then(Json::as_array)
                .unwrap_or(&empty)
            {
                let seq = n.get("seq").and_then(Json::as_u64).unwrap_or(0);
                if seen[slot].contains(&seq) {
                    continue; // re-read of an already-counted page
                }
                seen[slot].push(seq);
                log.push_str(&n.to_string_compact());
                log.push('\n');
                if let Some(committed) = n.get("committed_ms").and_then(Json::as_u64) {
                    max_latency_ms = max_latency_ms.max(now_ms - committed as i64);
                }
                let t_d = n.get("t_d").and_then(Json::as_f64).unwrap_or(f64::NAN);
                let t_a = n.get("t_a").and_then(Json::as_f64).unwrap_or(f64::NAN);
                if slot < matchers.len() && t_d <= PLANTED_START && t_a >= PLANTED_END {
                    covered[slot] = true;
                }
            }
            // The cursor contract: the same `after` must replay the same
            // prefix, never grow duplicates within it.
            let mut sorted = seen[slot].clone();
            sorted.sort_unstable();
            sorted.dedup();
            duplicates += (seen[slot].len() - sorted.len()) as u64;
            if slot < matchers.len() && seen[slot].is_empty() {
                all_matched = false;
            }
        }
        if all_matched || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let _ = fetch(&host, "POST", "/shutdown", None);
    flag.store(true, std::sync::atomic::Ordering::Release);
    handle
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server run: {e}"))?;
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&side_dir).ok();

    let missing = matchers
        .iter()
        .enumerate()
        .filter(|(slot, _)| seen[*slot].is_empty())
        .map(|(_, &id)| id)
        .collect();
    let uncovered = matchers
        .iter()
        .enumerate()
        .filter(|(slot, _)| !seen[*slot].is_empty() && !covered[*slot])
        .map(|(_, &id)| id)
        .collect();
    let unexpected = decoys
        .iter()
        .enumerate()
        .filter(|(i, _)| !seen[matchers.len() + i].is_empty())
        .map(|(_, &id)| id)
        .collect();
    Ok(SmokeOutcome {
        subs: matchers.len() + decoys.len(),
        matchers: matchers.len(),
        missing,
        unexpected,
        duplicates,
        uncovered,
        max_latency_ms,
        notification_log: log,
        subs_body,
    })
}

/// Applies the CI gate to a smoke outcome. Returns the failure reasons
/// (empty = pass).
pub fn judge_smoke(outcome: &SmokeOutcome) -> Vec<String> {
    let mut failures = Vec::new();
    if !outcome.missing.is_empty() {
        failures.push(format!(
            "{} matching subscription(s) never notified: {:?}",
            outcome.missing.len(),
            outcome.missing
        ));
    }
    if !outcome.unexpected.is_empty() {
        failures.push(format!(
            "non-matching subscription(s) notified: {:?}",
            outcome.unexpected
        ));
    }
    if outcome.duplicates > 0 {
        failures.push(format!(
            "{} duplicate (sub, seq) deliveries",
            outcome.duplicates
        ));
    }
    if !outcome.uncovered.is_empty() {
        failures.push(format!(
            "notification(s) never covered the planted drop [{PLANTED_START}, {PLANTED_END}]: {:?}",
            outcome.uncovered
        ));
    }
    failures
}

/// The smoke outcome as a JSON artifact (`summary.json`).
pub fn smoke_summary_json(outcome: &SmokeOutcome, failures: &[String]) -> Json {
    Json::obj([
        ("mode", Json::from("smoke")),
        ("pass", Json::Bool(failures.is_empty())),
        ("subs", Json::from(outcome.subs as u64)),
        ("matchers", Json::from(outcome.matchers as u64)),
        ("missing", Json::from(outcome.missing.len() as u64)),
        ("unexpected", Json::from(outcome.unexpected.len() as u64)),
        ("duplicates", Json::from(outcome.duplicates)),
        ("max_latency_ms", Json::from(outcome.max_latency_ms)),
        (
            "gate_failures",
            Json::Array(failures.iter().map(|f| Json::from(f.as_str())).collect()),
        ),
    ])
}

// ---------------------------------------------------------------------
// churn mode
// ---------------------------------------------------------------------

/// One region-index churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Standing regions to register (the paper-scale default is 1,000
    /// per sensor; this is one sensor's worth).
    pub regions: usize,
    /// Days of the synthetic series to extract features from.
    pub days: u32,
    /// RNG seed for the series.
    pub seed: u64,
}

impl ChurnConfig {
    /// The configuration CI and EXPERIMENTS.md use: 1,000 regions.
    pub fn ci() -> ChurnConfig {
        ChurnConfig {
            regions: 1000,
            days: 3,
            seed: 42,
        }
    }
}

/// What a churn run measured.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Standing regions registered.
    pub regions: usize,
    /// Committed feature rows evaluated against them.
    pub rows: usize,
    /// Total matches found (identical for both strategies by the gate).
    pub matches: u64,
    /// Rows whose indexed and brute-force match sets differed.
    pub mismatches: u64,
    /// Exact region tests the index performed.
    pub regions_tested: u64,
    /// Grid cells the index visited.
    pub cells_visited: u64,
    /// Region tests brute force performs (`rows * regions`).
    pub brute_tested: u64,
    /// Wall time of the indexed pass, seconds.
    pub indexed_seconds: f64,
    /// Wall time of the brute-force pass, seconds.
    pub brute_seconds: f64,
}

impl ChurnOutcome {
    /// Fraction of brute-force region tests the index performed.
    pub fn test_ratio(&self) -> f64 {
        self.regions_tested as f64 / self.brute_tested.max(1) as f64
    }
}

/// A deterministic population of `n` standing regions spread over the
/// query space: half drops, half jumps, thresholds fanned across the
/// (V, T) ranges a monitoring deployment would use.
pub fn region_population(n: usize) -> Vec<QueryRegion> {
    (0..n)
        .map(|i| {
            let frac = i as f64 / n.max(1) as f64;
            let t = 600.0 + frac * (8.0 * HOUR - 600.0);
            let v = 0.5 + 7.5 * ((i * 7919) % n.max(1)) as f64 / n.max(1) as f64;
            if i % 2 == 0 {
                QueryRegion::drop(t, -v)
            } else {
                QueryRegion::jump(t, v)
            }
        })
        .collect()
}

/// Extracts every feature row the ingest path would commit for the
/// synthetic series, via the same segmentation + extraction pipeline.
pub fn committed_rows(days: u32, seed: u64) -> Vec<FeatureRow> {
    let series = default_series(days, seed);
    let pla = segmentation::segment_series(&series, 0.2);
    let mut extractor = FeatureExtractor::new(0.2, 8.0 * HOUR);
    let mut rows = Vec::new();
    for seg in pla.segments() {
        extractor.push_segment(*seg, &mut rows);
    }
    rows
}

/// Runs both matching strategies over the same rows and regions.
pub fn run_churn(config: &ChurnConfig) -> ChurnOutcome {
    let regions = region_population(config.regions);
    let rows = committed_rows(config.days, config.seed);

    let mut index = RegionIndex::new();
    for (i, region) in regions.iter().enumerate() {
        index.insert(i as u64, *region);
    }

    let start = Instant::now();
    let mut brute: Vec<Vec<u64>> = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut ids = index.matches_brute(&row.boundary);
        ids.sort_unstable();
        brute.push(ids);
    }
    let brute_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut stats = RegionMatchStats::default();
    let mut buf = Vec::new();
    let mut matches = 0u64;
    let mut mismatches = 0u64;
    for (row, expected) in rows.iter().zip(&brute) {
        buf.clear();
        index.matches(&row.boundary, &mut buf, &mut stats);
        buf.sort_unstable();
        matches += buf.len() as u64;
        if &buf != expected {
            mismatches += 1;
        }
    }
    let indexed_seconds = start.elapsed().as_secs_f64();

    ChurnOutcome {
        regions: regions.len(),
        rows: rows.len(),
        matches,
        mismatches,
        regions_tested: stats.regions_tested,
        cells_visited: stats.cells_visited,
        brute_tested: rows.len() as u64 * regions.len() as u64,
        indexed_seconds,
        brute_seconds,
    }
}

/// Applies the CI gate to a churn outcome: the index must agree exactly
/// with brute force and test at most half the regions (in practice far
/// fewer — the summary records the real ratio).
pub fn judge_churn(outcome: &ChurnOutcome) -> Vec<String> {
    let mut failures = Vec::new();
    if outcome.rows == 0 {
        failures.push("no feature rows extracted; the run measured nothing".to_string());
    }
    if outcome.mismatches > 0 {
        failures.push(format!(
            "indexed matching disagreed with brute force on {} row(s)",
            outcome.mismatches
        ));
    }
    if outcome.regions_tested * 2 > outcome.brute_tested {
        failures.push(format!(
            "index tested {} of {} region evaluations ({:.1}%) — not sublinear",
            outcome.regions_tested,
            outcome.brute_tested,
            outcome.test_ratio() * 100.0
        ));
    }
    failures
}

/// The churn outcome as a JSON artifact (`summary.json`).
pub fn churn_summary_json(outcome: &ChurnOutcome, failures: &[String]) -> Json {
    Json::obj([
        ("mode", Json::from("churn")),
        ("pass", Json::Bool(failures.is_empty())),
        ("regions", Json::from(outcome.regions as u64)),
        ("rows", Json::from(outcome.rows as u64)),
        ("matches", Json::from(outcome.matches)),
        ("mismatches", Json::from(outcome.mismatches)),
        ("regions_tested", Json::from(outcome.regions_tested)),
        ("cells_visited", Json::from(outcome.cells_visited)),
        ("brute_tested", Json::from(outcome.brute_tested)),
        ("test_ratio", Json::Float(outcome.test_ratio())),
        ("indexed_seconds", Json::Float(outcome.indexed_seconds)),
        ("brute_seconds", Json::Float(outcome.brute_seconds)),
        (
            "gate_failures",
            Json::Array(failures.iter().map(|f| Json::from(f.as_str())).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced churn run: the index must agree with brute force and
    /// do asymptotically less work.
    #[test]
    fn churn_index_is_lossless_and_sublinear() {
        let outcome = run_churn(&ChurnConfig {
            regions: 200,
            days: 2,
            seed: 42,
        });
        let failures = judge_churn(&outcome);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(
            outcome.rows > 100,
            "series too small: {} rows",
            outcome.rows
        );
        assert!(outcome.matches > 0, "population never matched anything");
    }

    /// A reduced smoke run end-to-end over HTTP.
    #[test]
    fn smoke_delivers_exactly_once() {
        let outcome = run_subsmoke(&SmokeConfig {
            subs: 8,
            deadline: Duration::from_secs(10),
        })
        .expect("smoke runs");
        let failures = judge_smoke(&outcome);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(!outcome.notification_log.is_empty());
        assert!(outcome.subs_body.contains("\"subscriptions\""));
    }

    #[test]
    fn judges_reject_bad_outcomes() {
        let good = SmokeOutcome {
            subs: 8,
            matchers: 4,
            missing: Vec::new(),
            unexpected: Vec::new(),
            duplicates: 0,
            uncovered: Vec::new(),
            max_latency_ms: 12,
            notification_log: String::new(),
            subs_body: String::new(),
        };
        assert!(judge_smoke(&good).is_empty());
        let mut bad = good.clone();
        bad.missing.push(3);
        bad.duplicates = 2;
        assert_eq!(judge_smoke(&bad).len(), 2);
        let json = smoke_summary_json(&bad, &judge_smoke(&bad)).to_string();
        assert!(json.contains("\"pass\":false"), "{json}");
    }
}
