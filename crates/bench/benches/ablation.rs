//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * corner reduction (1–3 stored corners + range queries) vs the
//!   un-reduced four-corner store with the geometric intersection test;
//! * B+tree bulk loading vs one-at-a-time inserts;
//! * segmentation algorithm choice (see also `table3_segmentation`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pagestore::{BTree, BufferPool, PageFile};
use segdiff::ablation::FullCornerIndex;
use segdiff::QueryPlan;
use segdiff_bench::{build_segdiff, default_series};
use sensorgen::HOUR;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_corner_reduction(c: &mut Criterion) {
    let series = default_series(10, 1);
    let w = 8.0 * HOUR;
    let region = featurespace::QueryRegion::drop(1.0 * HOUR, -3.0);
    let base = std::env::temp_dir().join(format!("segdiff-bench-abl-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let reduced = build_segdiff(&series, 0.2, w, 8192, &base.join("reduced"), false);
    let mut full = FullCornerIndex::create(&base.join("full"), 0.2, w, 8192).unwrap();
    full.ingest_series(&series).unwrap();
    full.finish().unwrap();

    // Sanity: identical answers, smaller reduced store.
    let (a, _) = reduced.index.query(&region, QueryPlan::SeqScan).unwrap();
    let (b, _) = full.query(&region).unwrap();
    assert_eq!(a, b, "corner reduction changed the results");
    assert!(reduced.index.stats().feature_payload_bytes < full.stats().feature_payload_bytes);

    let mut group = c.benchmark_group("ablation/corners_scan");
    group.sample_size(20);
    group.bench_function("reduced_1to3", |bch| {
        bch.iter(|| {
            black_box(
                reduced
                    .index
                    .query(&region, QueryPlan::SeqScan)
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    group.bench_function("full_4", |bch| {
        bch.iter(|| black_box(full.query(&region).unwrap().0.len()))
    });
    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

fn bench_bulk_vs_incremental(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("segdiff-bench-bulk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let n = 50_000u64;
    let mut entries: Vec<[u8; 16]> = (0..n)
        .map(|i| {
            let mut k = [0u8; 16];
            k[..8].copy_from_slice(&(i.wrapping_mul(0x9E3779B97F4A7C15)).to_be_bytes());
            k[8..].copy_from_slice(&i.to_be_bytes());
            k
        })
        .collect();

    let mut group = c.benchmark_group("ablation/index_build");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
        let mut round = 0u64;
        b.iter(|| {
            let path = dir.join(format!("inc-{round}.idx"));
            round += 1;
            let pool = Arc::new(BufferPool::new(8192));
            let fid = pool.register_file(PageFile::create(&path).unwrap());
            let mut bt = BTree::create(pool, fid, 16).unwrap();
            for k in &entries {
                bt.insert(k, 0).unwrap();
            }
            std::fs::remove_file(&path).ok();
            black_box(n)
        })
    });
    entries.sort();
    group.bench_with_input(BenchmarkId::new("bulk_load", n), &n, |b, &n| {
        let mut round = 0u64;
        b.iter(|| {
            let path = dir.join(format!("bulk-{round}.idx"));
            round += 1;
            let pool = Arc::new(BufferPool::new(8192));
            let fid = pool.register_file(PageFile::create(&path).unwrap());
            let bt =
                BTree::bulk_load(pool, fid, 16, entries.iter().map(|k| (k.as_slice(), 0))).unwrap();
            std::fs::remove_file(&path).ok();
            black_box(bt.len().min(n))
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_corner_reduction, bench_bulk_vs_incremental
}
criterion_main!(benches);
