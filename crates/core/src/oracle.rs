//! Brute-force ground truth for validating the paper's guarantees.
//!
//! The oracle enumerates events directly from the raw series (model G) with
//! no approximation. The test suite uses it to check Theorem 1:
//!
//! * **completeness** — every true event among sampled observations must be
//!   covered by some returned segment pair ([`find_missed_event`] returns
//!   `None`);
//! * **bounded false positives** — every returned pair must contain an
//!   event with `Δv <= V + 2ε` within `Δt <= T`
//!   ([`pair_extreme_change`] vs the threshold).

use crate::result::SegmentPair;
use featurespace::{QueryRegion, SearchKind};
use sensorgen::TimeSeries;

/// All true events among *sampled* observation pairs: `(t1, t2)` with
/// `0 < t2 - t1 <= T` and `Δv` beyond the threshold. Quadratic in the
/// window population — intended for test-sized data.
pub fn true_events(series: &TimeSeries, region: &QueryRegion) -> Vec<(f64, f64)> {
    let ts = series.times();
    let vs = series.values();
    let mut out = Vec::new();
    for i in 0..ts.len() {
        for j in (i + 1)..ts.len() {
            let dt = ts[j] - ts[i];
            if dt > region.t {
                break;
            }
            let dv = vs[j] - vs[i];
            let hit = match region.kind {
                SearchKind::Drop => dv <= region.v,
                SearchKind::Jump => dv >= region.v,
            };
            if hit {
                out.push((ts[i], ts[j]));
            }
        }
    }
    out
}

/// Returns the first true event not covered by any result pair, or `None`
/// when recall is perfect.
pub fn find_missed_event(events: &[(f64, f64)], results: &[SegmentPair]) -> Option<(f64, f64)> {
    events
        .iter()
        .find(|&&(t1, t2)| !results.iter().any(|p| p.covers(t1, t2)))
        .copied()
}

/// The most extreme change reachable inside a returned pair: the minimum
/// (drop) or maximum (jump) of `G(t2) - G(t1)` over `t1 ∈ [t_d, t_c]`,
/// `t2 ∈ [t_b, t_a]`, `0 < t2 - t1 <= T`, where `G` is the linear
/// interpolation of the raw series.
///
/// Evaluated over a dense grid (`grid` points per interval plus all sampled
/// observations inside the intervals), which is exact up to grid
/// resolution — adequate for checking the `2ε` tolerance with a small
/// slack. Returns `None` when no pair of instants satisfies `Δt <= T`
/// (cannot happen for pairs produced by the framework).
pub fn pair_extreme_change(
    series: &TimeSeries,
    pair: &SegmentPair,
    region: &QueryRegion,
    grid: usize,
) -> Option<f64> {
    let earlier = candidate_times(series, pair.t_d, pair.t_c, grid);
    let later = candidate_times(series, pair.t_b, pair.t_a, grid);
    // When the two intervals overlap in more than a point, events with
    // Δt -> 0+ exist and their Δv -> 0 by continuity of G: zero is an
    // infimum the grid cannot attain, so seed it explicitly.
    let overlap = pair.t_d.max(pair.t_b) < pair.t_c.min(pair.t_a);
    let mut best: Option<f64> = if overlap { Some(0.0) } else { None };
    for &t1 in &earlier {
        let Some(v1) = series.interpolate(t1) else {
            continue;
        };
        for &t2 in &later {
            let dt = t2 - t1;
            if dt <= 0.0 || dt > region.t {
                continue;
            }
            let Some(v2) = series.interpolate(t2) else {
                continue;
            };
            let dv = v2 - v1;
            best = Some(match (best, region.kind) {
                (None, _) => dv,
                (Some(b), SearchKind::Drop) => b.min(dv),
                (Some(b), SearchKind::Jump) => b.max(dv),
            });
        }
    }
    best
}

/// Sampled observations within `[lo, hi]` plus a uniform grid over it.
fn candidate_times(series: &TimeSeries, lo: f64, hi: f64, grid: usize) -> Vec<f64> {
    let mut out: Vec<f64> = series
        .times()
        .iter()
        .copied()
        .filter(|&t| lo <= t && t <= hi)
        .collect();
    if hi > lo {
        for k in 0..=grid {
            out.push(lo + (hi - lo) * k as f64 / grid as f64);
        }
    } else {
        out.push(lo);
    }
    out.sort_by(f64::total_cmp);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use featurespace::QueryRegion;

    fn series() -> TimeSeries {
        TimeSeries::from_parts(vec![0.0, 300.0, 600.0, 900.0], vec![10.0, 6.0, 6.0, 8.0])
    }

    #[test]
    fn true_events_enumerated() {
        let s = series();
        let ev = true_events(&s, &QueryRegion::drop(600.0, -3.5));
        assert_eq!(ev, vec![(0.0, 300.0), (0.0, 600.0)]);
        let ev = true_events(&s, &QueryRegion::jump(600.0, 2.0));
        assert_eq!(ev, vec![(300.0, 900.0), (600.0, 900.0)]);
    }

    #[test]
    fn missed_event_detection() {
        let events = vec![(0.0, 300.0), (600.0, 900.0)];
        let covers_first = SegmentPair {
            t_d: 0.0,
            t_c: 100.0,
            t_b: 250.0,
            t_a: 400.0,
        };
        assert_eq!(
            find_missed_event(&events, &[covers_first]),
            Some((600.0, 900.0))
        );
        let covers_both = SegmentPair {
            t_d: 0.0,
            t_c: 700.0,
            t_b: 200.0,
            t_a: 1000.0,
        };
        assert_eq!(
            find_missed_event(&events, &[covers_first, covers_both]),
            None
        );
    }

    #[test]
    fn extreme_change_on_known_shape() {
        let s = series();
        let pair = SegmentPair {
            t_d: 0.0,
            t_c: 300.0,
            t_b: 300.0,
            t_a: 600.0,
        };
        let region = QueryRegion::drop(600.0, -1.0);
        let min = pair_extreme_change(&s, &pair, &region, 32).unwrap();
        assert!(
            (min - (-4.0)).abs() < 1e-9,
            "steepest drop is -4, got {min}"
        );
        let region = QueryRegion::jump(600.0, 1.0);
        let max = pair_extreme_change(&s, &pair, &region, 32).unwrap();
        // Earlier in [0,300] (falling from 10), later in [300,600] (flat 6):
        // the max change is 6 - 6 = 0 at t1 = 300.
        assert!(max.abs() < 1e-9, "max change should be 0, got {max}");
    }

    #[test]
    fn extreme_change_respects_t() {
        let s = series();
        let pair = SegmentPair {
            t_d: 0.0,
            t_c: 0.0,
            t_b: 900.0,
            t_a: 900.0,
        };
        // dt = 900 > T = 600: no reachable event.
        let region = QueryRegion::drop(600.0, -1.0);
        assert_eq!(pair_extreme_change(&s, &pair, &region, 8), None);
    }
}
