//! Small sampling helpers on top of `rand`.
//!
//! The offline dependency set does not include `rand_distr`, so the two
//! distributions the generator needs — Gaussian and exponential — are
//! implemented here directly.

use rand::{Rng, RngExt};

/// Draws a sample from `N(mean, sd^2)` using the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    // Guard against log(0): `random::<f64>()` is in [0, 1).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sd * z
}

/// Draws a sample from an exponential distribution with the given `mean`.
pub fn sample_exp<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = 1.0 - rng.random::<f64>();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.1, "variance was {var}");
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_exp(&mut rng, 5.0)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn normal_is_finite() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            assert!(normal(&mut rng, 0.0, 1.0).is_finite());
        }
    }
}
