//! Named counters and log-bucketed latency histograms.
//!
//! The registry is the single rendezvous point for every layer's
//! telemetry: the buffer pool publishes `pool.*` counters, the B+tree
//! publishes `btree.*`, query execution records `span.*` latency
//! histograms. Handles ([`Counter`], [`Histogram`]) are `Arc`-backed and
//! lock-free on the hot path; the registry lock is taken only on first
//! registration and when snapshotting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds values `v` with
/// `bit_width(v) == i`, i.e. power-of-two boundaries, so 64 buckets
/// cover the full `u64` range. Bucket 0 holds only the value 0.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Recording is lock-free (`fetch_add` / `fetch_max`). Quantiles are
/// estimated from the bucket counts by linear interpolation inside the
/// bucket containing the target rank, which bounds the relative error
/// of a reported percentile by the bucket width (a factor of 2).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`,
/// so bucket `i > 0` spans `[2^(i-1), 2^i)`.
pub(crate) fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Lower bound of bucket `i` (inclusive).
pub(crate) fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Upper bound of bucket `i` (inclusive, saturating at `u64::MAX`).
pub(crate) fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimates quantile `q` in `[0, 1]` by linear interpolation inside
    /// the bucket holding the target rank. Returns 0 for an empty
    /// histogram. The estimate never exceeds the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target sample.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            let c = self.buckets[i].load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_lo(i) as f64;
                let hi = bucket_hi(i) as f64;
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                return (est as u64).min(self.max());
            }
            seen += c;
        }
        self.max()
    }

    /// A point-in-time summary (count, sum, p50/p90/p99, max).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Observed maximum.
    pub max: u64,
}

impl HistogramSummary {
    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A thread-safe registry of named [`Counter`]s and [`Histogram`]s.
///
/// Use [`crate::global`] for the process-wide instance; independent
/// registries can be created for tests.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = inner.counters.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        inner.counters.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = inner.histograms.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Captures a point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// An immutable point-in-time snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, keyed by name (sorted).
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries, keyed by name (sorted).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter-wise difference `self - earlier`, saturating at zero so a
    /// registry reset between snapshots cannot produce absurd deltas.
    /// Histograms keep the *later* summary for any name present in
    /// `self` whose count advanced; unchanged histograms are dropped.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .filter(|(_, v)| *v > 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter(|(k, s)| {
                let before = earlier.histograms.get(*k).map(|b| b.count).unwrap_or(0);
                s.count > before
            })
            .map(|(k, s)| (k.clone(), *s))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_add() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket i spans [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            // Each bucket's bounds map back to that bucket.
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i, "hi of bucket {i}");
            // Buckets tile the line with no gaps.
            assert_eq!(bucket_hi(i) + 1, bucket_lo(i + 1));
        }
        assert_eq!(bucket_hi(64), u64::MAX);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn histogram_single_value() {
        let h = Histogram::new();
        h.record(100);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 100);
        assert_eq!(s.max, 100);
        // All quantiles of a single sample must not exceed it.
        assert!(s.p50 <= 100 && s.p50 >= 64, "p50 = {}", s.p50);
        assert_eq!(s.p99, s.p50);
    }

    #[test]
    fn histogram_percentile_estimation() {
        // 100 samples at 1000, 10 at 1_000_000: p50 must sit in the low
        // bucket, p99 in the high one.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!(
            (bucket_lo(bucket_index(1000))..=bucket_hi(bucket_index(1000))).contains(&p50),
            "p50 = {p50}"
        );
        assert!(p99 > 500_000, "p99 = {p99}");
        assert!(p99 <= h.max());
    }

    #[test]
    fn histogram_quantile_monotone_and_bounded() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 64, 900, 4096, 70_000, 1 << 40] {
            h.record(v);
        }
        let qs: Vec<u64> = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        assert_eq!(*qs.last().unwrap(), h.max());
    }

    #[test]
    fn registry_reuses_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);
        assert_eq!(r.snapshot().counters["x"], 2);
    }

    #[test]
    fn snapshot_delta_saturates() {
        let r = MetricsRegistry::new();
        r.counter("a").add(10);
        let before = r.snapshot();
        r.counter("a").add(5);
        r.counter("b").add(3);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counters["a"], 5);
        assert_eq!(d.counters["b"], 3);
        // A counter that went "backwards" (reset) saturates to 0 and is
        // dropped, rather than wrapping to ~u64::MAX.
        let d2 = before.delta(&after);
        assert!(!d2.counters.contains_key("a"));
    }

    #[test]
    fn snapshot_delta_histograms_keep_latest_when_advanced() {
        let r = MetricsRegistry::new();
        r.histogram("h").record(10);
        let before = r.snapshot();
        let unchanged = r.snapshot().delta(&before);
        assert!(unchanged.histograms.is_empty());
        r.histogram("h").record(20);
        let d = r.snapshot().delta(&before);
        assert_eq!(d.histograms["h"].count, 2);
    }

    #[test]
    fn concurrent_recording() {
        let r = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    let c = r.counter("shared");
                    let h = r.histogram("lat");
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(r.counter("shared").get(), 4000);
        assert_eq!(r.histogram("lat").count(), 4000);
    }
}
