//! Epoch-tagged LRU cache of query results.
//!
//! A serving workload repeats a small set of hot queries, so re-walking
//! the B+trees for each is pure waste. The cache keys results by the
//! *normalized* query parameters plus the index **epoch** — a counter the
//! index bumps on every ingest mutation and on `build_indexes`. Because
//! the epoch is part of the key, a result cached before a re-ingest can
//! never be returned afterwards: the new epoch simply misses, and the
//! stale entry ages out through LRU. No invalidation broadcast is needed,
//! which keeps the read path a single short critical section.

use crate::query::QueryPlan;
use crate::result::SegmentPair;
use featurespace::{QueryRegion, SearchKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: search kind, thresholds (bit-normalized), plan and epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    kind: u8,
    v_bits: u64,
    t_bits: u64,
    plan: QueryPlan,
    epoch: u64,
}

impl CacheKey {
    /// Builds the key for a query. Thresholds are normalized before
    /// hashing (`-0.0` folds onto `+0.0`) so textually different but
    /// semantically identical requests share an entry.
    pub fn new(region: &QueryRegion, plan: QueryPlan, epoch: u64) -> Self {
        CacheKey {
            kind: match region.kind {
                SearchKind::Drop => 0,
                SearchKind::Jump => 1,
            },
            v_bits: (region.v + 0.0).to_bits(),
            t_bits: (region.t + 0.0).to_bits(),
            plan,
            epoch,
        }
    }
}

struct Entry {
    results: Arc<Vec<SegmentPair>>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, Entry>,
    /// Monotonic use-stamp; the entry with the smallest stamp is the LRU
    /// victim. Capacity is small, so eviction scans the map directly.
    seq: u64,
}

/// Global-registry counters for the cache (`cache.*`), shared by every
/// cache in the process.
struct CacheMetrics {
    hit: Arc<obs::Counter>,
    miss: Arc<obs::Counter>,
    insert: Arc<obs::Counter>,
    evict: Arc<obs::Counter>,
}

impl CacheMetrics {
    fn new() -> Self {
        let r = obs::global();
        CacheMetrics {
            hit: r.counter("cache.hit"),
            miss: r.counter("cache.miss"),
            insert: r.counter("cache.insert"),
            evict: r.counter("cache.evict"),
        }
    }
}

/// An LRU-bounded, epoch-tagged map from query parameters to results.
///
/// Results are held behind `Arc`, so a hit costs one clone of a pointer
/// — the segment pairs themselves are shared, never copied.
pub struct QueryCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    metrics: CacheMetrics,
}

impl QueryCache {
    /// Creates a cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                seq: 0,
            }),
            capacity: capacity.max(1),
            metrics: CacheMetrics::new(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<SegmentPair>>> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.seq += 1;
        let seq = g.seq;
        match g.map.get_mut(key) {
            Some(e) => {
                e.last_used = seq;
                self.metrics.hit.inc();
                Some(Arc::clone(&e.results))
            }
            None => {
                self.metrics.miss.inc();
                None
            }
        }
    }

    /// Inserts a result set, evicting the least-recently-used entry when
    /// the cache is full.
    pub fn insert(&self, key: CacheKey, results: Arc<Vec<SegmentPair>>) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.seq += 1;
        let seq = g.seq;
        if !g.map.contains_key(&key) && g.map.len() >= self.capacity {
            if let Some(victim) = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                g.map.remove(&victim);
                self.metrics.evict.inc();
            }
        }
        g.map.insert(
            key,
            Entry {
                results,
                last_used: seq,
            },
        );
        self.metrics.insert.inc();
    }

    /// Drops every entry (used when the index epoch advances, so stale
    /// results stop occupying space; correctness never depends on this
    /// because the epoch is part of the key).
    pub fn clear(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.map.clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: f64, t: f64, epoch: u64) -> CacheKey {
        CacheKey::new(&QueryRegion::drop(t, v), QueryPlan::Index, epoch)
    }

    fn results(n: usize) -> Arc<Vec<SegmentPair>> {
        Arc::new(
            (0..n)
                .map(|i| SegmentPair {
                    t_d: i as f64,
                    t_c: i as f64 + 1.0,
                    t_b: i as f64 + 2.0,
                    t_a: i as f64 + 3.0,
                })
                .collect(),
        )
    }

    #[test]
    fn hit_after_insert() {
        let c = QueryCache::new(8);
        let k = key(-3.0, 3600.0, 1);
        assert!(c.get(&k).is_none());
        c.insert(k, results(2));
        let r = c.get(&k).expect("hit");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn epoch_partitions_entries() {
        let c = QueryCache::new(8);
        c.insert(key(-3.0, 3600.0, 1), results(5));
        // Same query at a later epoch must miss: results cached before a
        // re-ingest are unreachable afterwards.
        assert!(c.get(&key(-3.0, 3600.0, 2)).is_none());
        assert!(c.get(&key(-3.0, 3600.0, 1)).is_some());
    }

    #[test]
    fn negative_zero_normalizes() {
        // The checked constructors reject V = 0, so build the regions
        // literally: the point is that bit-distinct but numerically equal
        // parameters share one cache entry.
        let neg = QueryRegion {
            kind: SearchKind::Drop,
            t: 3600.0,
            v: -0.0,
        };
        let pos = QueryRegion {
            kind: SearchKind::Drop,
            t: 3600.0,
            v: 0.0,
        };
        let c = QueryCache::new(8);
        c.insert(CacheKey::new(&neg, QueryPlan::Index, 1), results(1));
        assert!(c.get(&CacheKey::new(&pos, QueryPlan::Index, 1)).is_some());
    }

    #[test]
    fn plan_and_kind_are_part_of_the_key() {
        let c = QueryCache::new(8);
        let drop_idx = CacheKey::new(&QueryRegion::drop(60.0, -1.0), QueryPlan::Index, 1);
        let drop_scan = CacheKey::new(&QueryRegion::drop(60.0, -1.0), QueryPlan::SeqScan, 1);
        // Same thresholds, different kind (constructed literally because
        // QueryRegion::jump requires V > 0).
        let jump_idx = CacheKey::new(
            &QueryRegion {
                kind: SearchKind::Jump,
                t: 60.0,
                v: -1.0,
            },
            QueryPlan::Index,
            1,
        );
        c.insert(drop_idx, results(1));
        assert!(c.get(&drop_scan).is_none());
        assert!(c.get(&jump_idx).is_none());
        assert!(c.get(&drop_idx).is_some());
    }

    #[test]
    fn lru_evicts_coldest() {
        let c = QueryCache::new(2);
        let a = key(-1.0, 60.0, 1);
        let b = key(-2.0, 60.0, 1);
        let d = key(-3.0, 60.0, 1);
        c.insert(a, results(1));
        c.insert(b, results(1));
        // Touch `a` so `b` is the LRU victim.
        assert!(c.get(&a).is_some());
        c.insert(d, results(1));
        assert_eq!(c.len(), 2);
        assert!(c.get(&b).is_none(), "LRU entry should have been evicted");
        assert!(c.get(&a).is_some());
        assert!(c.get(&d).is_some());
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let c = QueryCache::new(2);
        let a = key(-1.0, 60.0, 1);
        let b = key(-2.0, 60.0, 1);
        c.insert(a, results(1));
        c.insert(b, results(1));
        c.insert(a, results(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&a).unwrap().len(), 3);
        assert!(c.get(&b).is_some());
    }

    #[test]
    fn clear_empties() {
        let c = QueryCache::new(4);
        c.insert(key(-1.0, 60.0, 1), results(1));
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn concurrent_mixed_access() {
        let c = Arc::new(QueryCache::new(16));
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = key(-((i % 24) as f64) - 1.0, 60.0 * (t + 1) as f64, 1);
                        if let Some(r) = c.get(&k) {
                            assert!(r.len() <= 3);
                        } else {
                            c.insert(k, results((i % 4) as usize));
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 16);
    }
}
