//! Request routing and query execution against a shared index.
//!
//! The service is the pure request→response core of the server: it owns
//! no sockets and no threads, which makes every route unit-testable
//! without networking. Handlers run concurrently on worker threads over
//! one shared read-only [`SegDiffIndex`], so everything here takes
//! `&self`.
//!
//! Every request is traced: the service assigns a process-unique trace
//! id, installs it in the handler thread (whence it propagates onto the
//! executor's worker pool), collects the span tree, and records the
//! finished request into the tail-sampling
//! [`TraceStore`](obs::tracering::TraceStore) — slow or erroring
//! requests are retained in a separate ring that fast traffic cannot
//! evict. `GET /debug/traces` serves both rings; `GET /series` and
//! `GET /alerts` serve the sampled metric history and the standing
//! drop/jump alerts (see [`crate::observer`]).

use crate::http::{Request, Response};
use crate::observer::Observability;
use obs::export::Exporter;
use obs::json::Json;
use obs::tracering::TraceRecord;
use obs::TraceNode;
use pagestore::StoreError;
use parking_lot::RwLock;
use segdiff::{QueryPlan, QueryStats, SegDiffIndex, SegmentPair, ShardResults, TransectIndex};
use sensorgen::HOUR;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default bytes of WAL frames (or file chunk) per shipping response.
const SHIP_DEFAULT_BYTES: u64 = 1 << 20;
/// Upper bound a client may request per shipping response (stays well
/// under the transport's 4 MiB body cap).
const SHIP_MAX_BYTES: u64 = 2 << 20;

/// Which role this process plays in a cluster deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardRole {
    /// Owns its sensors: ingests, serves queries, ships WAL frames.
    #[default]
    Primary,
    /// Tails a primary's WAL and serves read queries from the applied
    /// state; never writes through its own engine.
    Replica,
}

impl ShardRole {
    /// The wire name reported by `GET /healthz`.
    pub fn name(self) -> &'static str {
        match self {
            ShardRole::Primary => "primary",
            ShardRole::Replica => "replica",
        }
    }
}

/// The query backend a [`Service`] executes against: one sensor's index,
/// or a whole transect fanned out on the worker pool
/// ([`TransectIndex::query_all_with_threads`]).
#[derive(Clone)]
pub enum Engine {
    /// One sensor's index, answered through its epoch-tagged result cache.
    Single(Arc<SegDiffIndex>),
    /// A transect of per-sensor indexes queried in parallel; results are
    /// concatenated in sensor order, so responses are deterministic for
    /// every `threads` value.
    Transect {
        /// The per-sensor index collection.
        index: Arc<TransectIndex>,
        /// Worker threads per fan-out query.
        threads: usize,
    },
    /// An engine behind a hot-swappable cell, so a replica's WAL tail
    /// loop can atomically replace the whole index after applying
    /// shipped frames while queries keep flowing.
    Swappable(Arc<EngineCell>),
}

/// A hot-swappable engine slot shared between serving threads and a
/// replica's tail loop.
///
/// The slot briefly holds `None` mid-refresh: the outgoing engine must
/// drop (closing its buffer pools and file handles) before the
/// refreshed one recovers over the same files. Queries landing in that
/// window get a typed "engine reloading" error instead of torn reads.
/// The cell must hold a non-swappable engine; nesting cells would
/// self-deadlock.
pub struct EngineCell {
    engine: RwLock<Option<Engine>>,
    /// Highest primary LSN a tailing replica has applied (0 until the
    /// first refresh; primaries never set it).
    applied_lsn: AtomicU64,
}

impl EngineCell {
    /// A cell initially holding `engine`.
    pub fn new(engine: Engine) -> Arc<EngineCell> {
        Arc::new(EngineCell {
            engine: RwLock::new(Some(engine)),
            applied_lsn: AtomicU64::new(0),
        })
    }

    /// An initially empty cell (queries get the typed reload error
    /// until [`EngineCell::set`] installs an engine).
    pub fn empty() -> Arc<EngineCell> {
        Arc::new(EngineCell {
            engine: RwLock::new(None),
            applied_lsn: AtomicU64::new(0),
        })
    }

    /// Empties the slot, dropping the current engine (and with it every
    /// open file handle) before a refresh reopens the same directory.
    pub fn clear(&self) {
        self.engine.write().take();
    }

    /// Installs a fresh engine.
    pub fn set(&self, engine: Engine) {
        *self.engine.write() = Some(engine);
    }

    /// Whether the slot currently holds an engine.
    pub fn is_loaded(&self) -> bool {
        self.engine.read().is_some()
    }

    /// Records the highest primary LSN applied by the replica tail loop.
    pub fn set_applied_lsn(&self, lsn: u64) {
        self.applied_lsn.store(lsn, Ordering::Release);
    }

    /// The highest primary LSN applied so far (0 on primaries).
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::Acquire)
    }

    /// Runs `f` on the held engine, or returns `default` mid-refresh.
    fn with_engine<R>(&self, default: R, f: impl FnOnce(&Engine) -> R) -> R {
        let guard = self.engine.read();
        match guard.as_ref() {
            Some(engine) => f(engine),
            None => default,
        }
    }
}

/// The typed error queries see while an [`EngineCell`] is mid-refresh.
fn engine_reloading() -> StoreError {
    StoreError::NotFound("engine unavailable: reload in progress".to_string())
}

/// Aggregates per-sensor recovery reports into `(clean, replayed_pages,
/// truncated_rows)`; sensors without a report count as clean.
fn recovery_of<'a>(sensors: impl Iterator<Item = &'a SegDiffIndex>) -> (bool, u64, u64) {
    let (mut clean, mut replayed, mut truncated) = (true, 0u64, 0u64);
    for idx in sensors {
        if let Some(r) = idx.recovery_report() {
            clean &= r.clean;
            replayed += r.replayed_pages;
            truncated += r.truncated_rows;
        }
    }
    (clean, replayed, truncated)
}

impl Engine {
    /// A transect engine with an explicit worker-pool size (min 1).
    pub fn transect(index: Arc<TransectIndex>, threads: usize) -> Engine {
        Engine::Transect {
            index,
            threads: threads.max(1),
        }
    }

    /// Executes one query; the bool reports whether the answer came from
    /// a result cache (the transect path is always computed fresh).
    fn query(
        &self,
        region: &featurespace::QueryRegion,
        plan: QueryPlan,
    ) -> pagestore::Result<(Arc<Vec<SegmentPair>>, QueryStats, bool)> {
        match self {
            Engine::Single(idx) => idx.query_cached(region, plan),
            Engine::Transect { index, threads } => {
                let (per_sensor, stats) = index.query_all_with_threads(region, plan, *threads)?;
                let flat: Vec<SegmentPair> = per_sensor.into_iter().flatten().collect();
                Ok((Arc::new(flat), stats, false))
            }
            Engine::Swappable(cell) => {
                let guard = cell.engine.read();
                match guard.as_ref() {
                    Some(engine) => engine.query(region, plan),
                    None => Err(engine_reloading()),
                }
            }
        }
    }

    /// Executes one query restricted to `sensors` (None = all served),
    /// returning per-sensor result lists in ascending sensor order — the
    /// shape a scatter–gather router merges with
    /// [`segdiff::merge_sharded`]. Unknown sensor ids are a `NotFound`
    /// error.
    fn query_by_sensor(
        &self,
        region: &featurespace::QueryRegion,
        plan: QueryPlan,
        sensors: Option<&[u32]>,
    ) -> pagestore::Result<(ShardResults, QueryStats, bool)> {
        match self {
            Engine::Single(idx) => {
                if let Some(&bad) = sensors.unwrap_or(&[]).iter().find(|&&sensor| sensor != 0) {
                    return Err(StoreError::NotFound(format!(
                        "sensor {bad} (this shard serves sensor 0 only)"
                    )));
                }
                let (results, stats, cached) = idx.query_cached(region, plan)?;
                Ok((vec![(0, results.as_ref().clone())], stats, cached))
            }
            Engine::Transect { index, threads } => {
                let all;
                let ids = match sensors {
                    Some(ids) => ids,
                    None => {
                        all = index.sensor_ids().to_vec();
                        &all
                    }
                };
                let (parts, stats) =
                    index.query_subset_with_threads(ids, region, plan, *threads)?;
                Ok((parts, stats, false))
            }
            Engine::Swappable(cell) => {
                let guard = cell.engine.read();
                match guard.as_ref() {
                    Some(engine) => engine.query_by_sensor(region, plan, sensors),
                    None => Err(engine_reloading()),
                }
            }
        }
    }

    /// The invalidation epoch versioning responses.
    pub fn epoch(&self) -> u64 {
        match self {
            Engine::Single(idx) => idx.epoch(),
            Engine::Transect { index, .. } => index.epoch(),
            Engine::Swappable(cell) => cell.with_engine(0, Engine::epoch),
        }
    }

    /// Entries currently held in result caches.
    fn cache_entries(&self) -> usize {
        match self {
            Engine::Single(idx) => idx.result_cache().len(),
            Engine::Transect { .. } => 0,
            Engine::Swappable(cell) => cell.with_engine(0, Engine::cache_entries),
        }
    }

    /// Number of sensors served.
    pub fn num_sensors(&self) -> u32 {
        match self {
            Engine::Single(_) => 1,
            Engine::Transect { index, .. } => index.num_sensors(),
            Engine::Swappable(cell) => cell.with_engine(0, Engine::num_sensors),
        }
    }

    /// The global sensor ids this engine serves, ascending.
    pub fn sensor_ids(&self) -> Vec<u32> {
        match self {
            Engine::Single(_) => vec![0],
            Engine::Transect { index, .. } => index.sensor_ids().to_vec(),
            Engine::Swappable(cell) => cell.with_engine(Vec::new(), Engine::sensor_ids),
        }
    }

    /// The on-disk directory backing `sensor`, when this engine serves
    /// it (the WAL-shipping routes read `wal.log` and data files here).
    pub fn sensor_dir(&self, sensor: u32) -> Option<PathBuf> {
        match self {
            Engine::Single(idx) => (sensor == 0).then(|| idx.database().dir().to_path_buf()),
            Engine::Transect { index, .. } => index
                .sensor(sensor)
                .ok()
                .map(|s| s.database().dir().to_path_buf()),
            Engine::Swappable(cell) => cell.with_engine(None, |e| e.sensor_dir(sensor)),
        }
    }

    /// The highest LSN durably appended to any backing WAL (0 when the
    /// engine runs without logs).
    pub fn last_durable_lsn(&self) -> u64 {
        fn of(idx: &SegDiffIndex) -> u64 {
            idx.database()
                .wal()
                .map(|w| w.next_lsn().saturating_sub(1))
                .unwrap_or(0)
        }
        match self {
            Engine::Single(idx) => of(idx),
            Engine::Transect { index, .. } => index
                .sensor_ids()
                .iter()
                .filter_map(|&sensor| index.sensor(sensor).ok())
                .map(of)
                .max()
                .unwrap_or(0),
            Engine::Swappable(cell) => cell.with_engine(0, Engine::last_durable_lsn),
        }
    }

    /// What recovery did when the backing databases opened, aggregated
    /// as `(all clean, pages replayed, rows truncated)`.
    pub fn recovery_summary(&self) -> (bool, u64, u64) {
        match self {
            Engine::Single(idx) => recovery_of(std::iter::once(idx.as_ref())),
            Engine::Transect { index, .. } => recovery_of(
                index
                    .sensor_ids()
                    .iter()
                    .filter_map(|&sensor| index.sensor(sensor).ok()),
            ),
            Engine::Swappable(cell) => cell.with_engine((true, 0, 0), Engine::recovery_summary),
        }
    }

    /// The highest primary LSN applied by a tailing replica (0 unless
    /// this is a swappable replica engine).
    pub fn applied_lsn(&self) -> u64 {
        match self {
            Engine::Swappable(cell) => cell.applied_lsn(),
            _ => 0,
        }
    }

    /// Flushes dirty pages (and checkpoints the WAL) on every backing
    /// database; called once the server has drained.
    pub fn flush(&self) -> pagestore::Result<()> {
        match self {
            Engine::Single(idx) => idx.database().flush(),
            Engine::Transect { index, .. } => index.flush_all(),
            Engine::Swappable(cell) => {
                let guard = cell.engine.read();
                match guard.as_ref() {
                    Some(engine) => engine.flush(),
                    None => Ok(()),
                }
            }
        }
    }
}

impl From<Arc<SegDiffIndex>> for Engine {
    fn from(index: Arc<SegDiffIndex>) -> Engine {
        Engine::Single(index)
    }
}

impl From<Arc<TransectIndex>> for Engine {
    fn from(index: Arc<TransectIndex>) -> Engine {
        let threads = index.num_sensors() as usize;
        Engine::transect(index, threads)
    }
}

/// `server.*` telemetry published to the global registry.
struct ServiceMetrics {
    requests: Arc<obs::Counter>,
    queries: Arc<obs::Counter>,
    bad_requests: Arc<obs::Counter>,
    not_found: Arc<obs::Counter>,
    errors: Arc<obs::Counter>,
    inflight: Arc<obs::Gauge>,
    request_nanos: Arc<obs::Histogram>,
    query_nanos: Arc<obs::Histogram>,
    ship_requests: Arc<obs::Counter>,
    ship_bytes: Arc<obs::Counter>,
    ship_restarts: Arc<obs::Counter>,
}

impl ServiceMetrics {
    fn new() -> Self {
        let r = obs::global();
        ServiceMetrics {
            requests: r.counter("server.requests"),
            queries: r.counter("server.queries"),
            bad_requests: r.counter("server.bad_requests"),
            not_found: r.counter("server.not_found"),
            errors: r.counter("server.errors"),
            inflight: r.gauge("server.inflight"),
            request_nanos: r.histogram("server.request_nanos"),
            query_nanos: r.histogram("server.query_nanos"),
            ship_requests: r.counter("wal.ship.requests"),
            ship_bytes: r.counter("wal.ship.bytes"),
            ship_restarts: r.counter("wal.ship.restarts"),
        }
    }
}

/// The HTTP-facing facade over one query engine.
pub struct Service {
    engine: Engine,
    role: ShardRole,
    shutdown: Arc<AtomicBool>,
    in_flight: AtomicU64,
    metrics: ServiceMetrics,
    observability: Arc<Observability>,
}

/// A validated `/query` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Optional caller-supplied series label, echoed in the response.
    pub series: Option<String>,
    /// `"drop"` or `"jump"`.
    pub kind: String,
    /// Value threshold `V` (negative for drops, positive for jumps).
    pub v: f64,
    /// Time threshold `T` in hours.
    pub t_hours: f64,
    /// `"scan"` or `"index"`.
    pub plan: String,
    /// Restrict execution to these global sensor ids (empty = all).
    pub sensors: Vec<u32>,
    /// Group results per sensor (`by_sensor`) instead of flattening —
    /// the shape a scatter–gather router merges deterministically.
    pub per_sensor: bool,
    /// Whether to attach an `EXPLAIN ANALYZE`-style trace.
    pub trace: bool,
}

impl QuerySpec {
    /// Parses and validates a JSON body. Every constraint the checked
    /// [`featurespace::QueryRegion`] constructors would `assert!` is
    /// verified here first, so invalid input becomes a `400`, never a
    /// worker-thread panic.
    pub fn from_json(body: &str) -> Result<QuerySpec, String> {
        let doc = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing field: kind (\"drop\" or \"jump\")")?
            .to_string();
        if kind != "drop" && kind != "jump" {
            return Err(format!("kind must be \"drop\" or \"jump\", got {kind:?}"));
        }
        let v = doc
            .get("v")
            .and_then(Json::as_f64)
            .ok_or("missing field: v (number)")?;
        let t_hours = match doc.get("t_hours").and_then(Json::as_f64) {
            Some(h) => h,
            None => {
                doc.get("t_seconds")
                    .and_then(Json::as_f64)
                    .ok_or("missing field: t_hours (number)")?
                    / HOUR
            }
        };
        if !t_hours.is_finite() || t_hours <= 0.0 {
            return Err(format!(
                "t_hours must be positive and finite, got {t_hours}"
            ));
        }
        if kind == "drop" && !(v.is_finite() && v < 0.0) {
            return Err(format!("v must be negative for a drop search, got {v}"));
        }
        if kind == "jump" && !(v.is_finite() && v > 0.0) {
            return Err(format!("v must be positive for a jump search, got {v}"));
        }
        let plan = doc
            .get("plan")
            .and_then(Json::as_str)
            .unwrap_or("scan")
            .to_string();
        if plan != "scan" && plan != "index" {
            return Err(format!("plan must be \"scan\" or \"index\", got {plan:?}"));
        }
        let trace = matches!(doc.get("trace"), Some(Json::Bool(true)));
        let series = doc
            .get("series")
            .and_then(Json::as_str)
            .map(|s| s.to_string());
        let sensors = match doc.get("sensors") {
            None => Vec::new(),
            Some(Json::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let id = item
                        .as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .ok_or("sensors must be an array of non-negative sensor ids")?;
                    out.push(id as u32);
                }
                out
            }
            Some(_) => return Err("sensors must be an array of sensor ids".to_string()),
        };
        let per_sensor = match doc.get("per_sensor") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("per_sensor must be a boolean".to_string()),
        };
        Ok(QuerySpec {
            series,
            kind,
            v,
            t_hours,
            plan,
            sensors,
            per_sensor,
            trace,
        })
    }

    /// The parsed plan.
    pub fn query_plan(&self) -> QueryPlan {
        if self.plan == "index" {
            QueryPlan::Index
        } else {
            QueryPlan::SeqScan
        }
    }

    /// The validated region (safe: `from_json` already enforced the
    /// constructor preconditions).
    pub fn region(&self) -> featurespace::QueryRegion {
        if self.kind == "drop" {
            featurespace::QueryRegion::drop(self.t_hours * HOUR, self.v)
        } else {
            featurespace::QueryRegion::jump(self.t_hours * HOUR, self.v)
        }
    }
}

/// A validated `POST /subscribe` request body: the standing query's
/// `(V, T)` region plus an optional label and sensor restriction.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscribeSpec {
    /// Caller-supplied label echoed in listings (default empty).
    pub label: String,
    /// `"drop"` or `"jump"`.
    pub kind: String,
    /// Value threshold `V` (negative for drops, positive for jumps).
    pub v: f64,
    /// Time threshold `T` in hours.
    pub t_hours: f64,
    /// Sensors the subscription watches; empty means all.
    pub sensors: Vec<u32>,
}

impl SubscribeSpec {
    /// Parses and validates a JSON body with the same rigor as
    /// [`QuerySpec::from_json`]: every constraint the checked
    /// [`featurespace::QueryRegion`] constructors would `assert!` becomes
    /// a `400` here.
    pub fn from_json(body: &str) -> Result<SubscribeSpec, String> {
        let doc = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing field: kind (\"drop\" or \"jump\")")?
            .to_string();
        if kind != "drop" && kind != "jump" {
            return Err(format!("kind must be \"drop\" or \"jump\", got {kind:?}"));
        }
        let v = doc
            .get("v")
            .and_then(Json::as_f64)
            .ok_or("missing field: v (number)")?;
        let t_hours = match doc.get("t_hours").and_then(Json::as_f64) {
            Some(h) => h,
            None => {
                doc.get("t_seconds")
                    .and_then(Json::as_f64)
                    .ok_or("missing field: t_hours (number)")?
                    / HOUR
            }
        };
        if !t_hours.is_finite() || t_hours <= 0.0 {
            return Err(format!(
                "t_hours must be positive and finite, got {t_hours}"
            ));
        }
        if kind == "drop" && !(v.is_finite() && v < 0.0) {
            return Err(format!("v must be negative for a drop search, got {v}"));
        }
        if kind == "jump" && !(v.is_finite() && v > 0.0) {
            return Err(format!("v must be positive for a jump search, got {v}"));
        }
        let label = doc
            .get("label")
            .map(|l| {
                l.as_str()
                    .map(|s| s.to_string())
                    .ok_or("label must be a string")
            })
            .transpose()?
            .unwrap_or_default();
        let sensors = match doc.get("sensors") {
            None => Vec::new(),
            Some(Json::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let id = item
                        .as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .ok_or("sensors must be an array of non-negative sensor ids")?;
                    out.push(id as u32);
                }
                out
            }
            Some(_) => return Err("sensors must be an array of sensor ids".to_string()),
        };
        Ok(SubscribeSpec {
            label,
            kind,
            v,
            t_hours,
            sensors,
        })
    }

    /// The validated region (safe: `from_json` already enforced the
    /// constructor preconditions).
    pub fn region(&self) -> featurespace::QueryRegion {
        if self.kind == "drop" {
            featurespace::QueryRegion::drop(self.t_hours * HOUR, self.v)
        } else {
            featurespace::QueryRegion::jump(self.t_hours * HOUR, self.v)
        }
    }
}

/// Parses a `/series` window parameter: plain seconds (`"90"`) or a
/// number with an `s`/`m`/`h` suffix (`"90s"`, `"5m"`, `"2h"`).
fn parse_window(raw: &str) -> Result<Duration, String> {
    let (digits, unit_secs) = match raw.as_bytes().last() {
        Some(b's') => (&raw[..raw.len() - 1], 1u64),
        Some(b'm') => (&raw[..raw.len() - 1], 60),
        Some(b'h') => (&raw[..raw.len() - 1], 3600),
        _ => (raw, 1),
    };
    match digits.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(Duration::from_secs(n.saturating_mul(unit_secs))),
        _ => Err(format!(
            "window must be a positive duration like 90, 90s, 5m or 2h, got {raw:?}"
        )),
    }
}

/// Uniform query-string validation: every pair must be `key=value` with
/// a key in `allowed`. Routes apply this before doing any work, so a
/// typo'd or unsupported parameter is a structured `400` on every route
/// rather than silently ignored on some and rejected on others.
pub(crate) fn check_query_params(req: &Request, allowed: &[&str]) -> Result<(), String> {
    for pair in req.query.split('&').filter(|p| !p.is_empty()) {
        let Some((key, _)) = pair.split_once('=') else {
            return Err(format!(
                "malformed query parameter {pair:?} (expected key=value)"
            ));
        };
        if !allowed.contains(&key) {
            return Err(if allowed.is_empty() {
                format!("unknown query parameter {key:?} (route takes none)")
            } else {
                format!(
                    "unknown query parameter {key:?} (allowed: {})",
                    allowed.join(", ")
                )
            });
        }
    }
    Ok(())
}

/// Parses an optional unsigned query parameter, with a default.
pub(crate) fn parse_u64_param(req: &Request, key: &str, default: u64) -> Result<u64, String> {
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse::<u64>()
            .map_err(|_| format!("{key} must be a non-negative integer, got {raw:?}")),
    }
}

/// Result shape of one `/query` execution: flat (the classic response)
/// or grouped per sensor (the scatter–gather shape).
enum QueryOutput {
    Flat(Arc<Vec<SegmentPair>>),
    Parts(Vec<(u32, Vec<SegmentPair>)>),
}

/// Serializes result pairs in the canonical field order.
fn pairs_to_json(results: &[SegmentPair]) -> Json {
    Json::Array(
        results
            .iter()
            .map(|p| {
                Json::obj([
                    ("t_d", Json::Float(p.t_d)),
                    ("t_c", Json::Float(p.t_c)),
                    ("t_b", Json::Float(p.t_b)),
                    ("t_a", Json::Float(p.t_a)),
                ])
            })
            .collect(),
    )
}

fn trace_to_json(node: &TraceNode) -> Json {
    let mut fields = vec![
        ("span".to_string(), Json::Str(node.name.clone())),
        ("wall_nanos".to_string(), Json::Uint(node.wall_nanos)),
    ];
    for (k, v) in &node.attrs {
        fields.push((k.clone(), v.clone()));
    }
    if !node.children.is_empty() {
        fields.push((
            "children".to_string(),
            Json::Array(node.children.iter().map(trace_to_json).collect()),
        ));
    }
    Json::Object(fields)
}

impl Service {
    /// Creates a service over `engine` (a single index or a transect).
    /// Setting `shutdown` (from any thread, or via `POST /shutdown`)
    /// makes the accept loop drain.
    pub fn new(engine: impl Into<Engine>, shutdown: Arc<AtomicBool>) -> Self {
        Service::with_observability(engine, shutdown, Arc::new(Observability::default()))
    }

    /// [`Service::new`] with explicitly configured observability stores
    /// (series capacity, alert rules, trace slow threshold).
    pub fn with_observability(
        engine: impl Into<Engine>,
        shutdown: Arc<AtomicBool>,
        observability: Arc<Observability>,
    ) -> Self {
        Service {
            engine: engine.into(),
            role: ShardRole::Primary,
            shutdown,
            in_flight: AtomicU64::new(0),
            metrics: ServiceMetrics::new(),
            observability,
        }
    }

    /// Sets the role `GET /healthz` reports (default primary).
    pub fn set_role(&mut self, role: ShardRole) {
        self.role = role;
    }

    /// The role this process serves as.
    pub fn role(&self) -> ShardRole {
        self.role
    }

    /// The engine queries execute against.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The observability stores the service records into and serves from.
    pub fn observability(&self) -> &Arc<Observability> {
        &self.observability
    }

    /// The shared shutdown flag.
    pub fn shutdown_flag(&self) -> &Arc<AtomicBool> {
        &self.shutdown
    }

    /// Number of requests currently executing.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Dispatches one request.
    ///
    /// Tracing is always on: every request gets a process-unique trace
    /// id (propagated to executor worker threads via
    /// [`obs::TraceIdScope`]) and lands in the tail-sampling trace ring
    /// when it finishes — with its span tree for `/query`, summary-only
    /// for the cheap routes.
    pub fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        let started_ms = obs::unix_ms();
        self.metrics.requests.inc();
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        self.metrics.inflight.add(1);
        let trace_id = obs::next_trace_id();
        let scope = obs::TraceIdScope::enter(trace_id);
        let (resp, root) = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/query") => self.query(req, trace_id),
            ("GET", "/metrics") => (self.metrics_dump(req), None),
            ("GET", "/healthz") => (self.healthz(req), None),
            ("GET", "/wal") => (self.wal_ship(req), None),
            ("GET", "/wal/manifest") => (self.wal_manifest(req), None),
            ("GET", "/wal/file") => (self.wal_file(req), None),
            ("GET", "/series") => (self.series_dump(req), None),
            ("GET", "/alerts") => (self.alerts_dump(req), None),
            ("GET", "/debug/traces") => (self.traces_dump(req), None),
            ("POST", "/subscribe") => (self.subscribe_create(req), None),
            ("GET", "/subscribe") => (self.subscribe_list(req), None),
            ("GET", "/notifications") => (self.notifications(req), None),
            ("POST", "/shutdown") => (self.initiate_shutdown(), None),
            (method, path) if path.starts_with("/subscribe/") => {
                (self.subscribe_item(method, path), None)
            }
            (_, path) if crate::routes::is_known_path(path) => (
                Response::error(405, format!("method {} not allowed", req.method)),
                None,
            ),
            _ => {
                self.metrics.not_found.inc();
                (
                    Response::error(404, format!("no route for {}", req.path)),
                    None,
                )
            }
        };
        drop(scope);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.metrics.inflight.sub(1);
        if resp.status >= 400 {
            self.metrics.errors.inc();
        }
        let wall = start.elapsed();
        self.metrics.request_nanos.record_duration(wall);
        self.observability.traces.record(TraceRecord {
            trace_id,
            name: format!("{} {}", req.method, req.path),
            started_ms,
            wall_nanos: wall.as_nanos().min(u64::MAX as u128) as u64,
            status: resp.status,
            error: resp.status >= 400,
            root,
        });
        resp
    }

    /// A structured `400`, counted in `server.bad_requests`.
    fn bad_request(&self, message: String) -> Response {
        self.metrics.bad_requests.inc();
        Response::error(400, message)
    }

    fn query(&self, req: &Request, trace_id: u64) -> (Response, Option<TraceNode>) {
        if let Err(e) = check_query_params(req, &[]) {
            return (self.bad_request(e), None);
        }
        let body = match req.body_str() {
            Ok(b) => b,
            Err(e) => {
                self.metrics.bad_requests.inc();
                return (Response::error(400, e.to_string()), None);
            }
        };
        let spec = match QuerySpec::from_json(body) {
            Ok(s) => s,
            Err(e) => {
                self.metrics.bad_requests.inc();
                return (Response::error(400, e), None);
            }
        };
        self.metrics.queries.inc();
        let start = Instant::now();
        obs::trace_begin();
        let grouped = spec.per_sensor || !spec.sensors.is_empty();
        let outcome = if grouped {
            let subset = (!spec.sensors.is_empty()).then_some(spec.sensors.as_slice());
            self.engine
                .query_by_sensor(&spec.region(), spec.query_plan(), subset)
                .map(|(parts, stats, cached)| (QueryOutput::Parts(parts), stats, cached))
        } else {
            self.engine
                .query(&spec.region(), spec.query_plan())
                .map(|(flat, stats, cached)| (QueryOutput::Flat(flat), stats, cached))
        };
        let trace = obs::trace_take();
        let (output, stats, cached) = match outcome {
            Ok(t) => t,
            Err(StoreError::NotFound(m)) if grouped => {
                self.metrics.bad_requests.inc();
                return (
                    Response::error(400, format!("bad sensor filter: {m}")),
                    trace,
                );
            }
            Err(e) => {
                return (Response::error(500, format!("query failed: {e}")), trace);
            }
        };
        self.metrics.query_nanos.record_duration(start.elapsed());

        let count = match &output {
            QueryOutput::Flat(results) => results.len(),
            QueryOutput::Parts(parts) => parts.iter().map(|(_, r)| r.len()).sum(),
        };
        let mut fields = Vec::new();
        if let Some(series) = &spec.series {
            fields.push(("series".to_string(), Json::Str(series.clone())));
        }
        fields.extend([
            ("kind".to_string(), Json::Str(spec.kind.clone())),
            ("v".to_string(), Json::Float(spec.v)),
            ("t_hours".to_string(), Json::Float(spec.t_hours)),
            ("plan".to_string(), Json::Str(spec.plan.clone())),
            ("epoch".to_string(), Json::Uint(self.engine.epoch())),
            ("cached".to_string(), Json::Bool(cached)),
            ("count".to_string(), Json::Uint(count as u64)),
            (
                "rows_considered".to_string(),
                Json::Uint(stats.rows_considered),
            ),
            ("wall_ms".to_string(), Json::Float(stats.wall_seconds * 1e3)),
        ]);
        match output {
            QueryOutput::Flat(results) => {
                fields.push(("results".to_string(), pairs_to_json(&results)));
            }
            QueryOutput::Parts(parts) if spec.per_sensor => {
                fields.push((
                    "by_sensor".to_string(),
                    Json::Array(
                        parts
                            .iter()
                            .map(|(sensor, results)| {
                                Json::obj([
                                    ("sensor", Json::Uint(u64::from(*sensor))),
                                    ("count", Json::Uint(results.len() as u64)),
                                    ("results", pairs_to_json(results)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            QueryOutput::Parts(parts) => {
                // Flatten in ascending sensor order — byte-identical to
                // the unfiltered single-process response over the same
                // sensors (the merge_sharded contract).
                let flat: Vec<SegmentPair> = parts.into_iter().flat_map(|(_, r)| r).collect();
                fields.push(("results".to_string(), pairs_to_json(&flat)));
            }
        }
        if let Engine::Transect { .. } | Engine::Swappable(_) = &self.engine {
            fields.push((
                "sensors".to_string(),
                Json::Uint(self.engine.num_sensors() as u64),
            ));
        }
        fields.push(("trace_id".to_string(), Json::Uint(trace_id)));
        if spec.trace {
            if let Some(node) = &trace {
                fields.push(("trace".to_string(), trace_to_json(node)));
            }
        }
        (Response::json(200, &Json::Object(fields)), trace)
    }

    fn metrics_dump(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["format"]) {
            return self.bad_request(e);
        }
        let snapshot = obs::global().snapshot();
        match req.query_param("format") {
            Some("json") => Response::text(
                200,
                obs::export::JsonLinesExporter::default().export(&snapshot),
            ),
            None | Some("text") => Response::text(200, obs::export::TextExporter.export(&snapshot)),
            Some(other) => self.bad_request(format!(
                "format must be \"text\" or \"json\", got {other:?}"
            )),
        }
    }

    /// `GET /series` — the sampled metric history. Without a `name`
    /// parameter, lists the sampled series; with one, returns the points
    /// inside `window` (e.g. `60s`, `5m`, `2h`; default the whole ring).
    fn series_dump(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["name", "window"]) {
            return self.bad_request(e);
        }
        let store = &self.observability.series;
        let Some(name) = req.query_param("name") else {
            let names = store.names();
            return Response::json(
                200,
                &Json::obj([
                    ("count", Json::from(names.len() as u64)),
                    (
                        "series",
                        Json::Array(names.into_iter().map(Json::Str).collect()),
                    ),
                ]),
            );
        };
        let window = match req.query_param("window").map(parse_window) {
            None => None,
            Some(Ok(w)) => Some(w),
            Some(Err(e)) => {
                self.metrics.bad_requests.inc();
                return Response::error(400, e);
            }
        };
        let points = match window {
            Some(w) => store.window(name, w, obs::unix_ms()),
            None => store.since(name, 0),
        };
        if points.is_empty() && !store.names().iter().any(|n| n == name) {
            return Response::error(404, format!("no sampled series named {name:?}"));
        }
        Response::json(
            200,
            &Json::obj([
                ("name", Json::from(name)),
                ("count", Json::from(points.len() as u64)),
                (
                    "points",
                    Json::Array(
                        points
                            .iter()
                            .map(|p| {
                                Json::obj([
                                    ("ts_ms", Json::from(p.ts_ms)),
                                    ("value", Json::Float(p.value)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        )
    }

    /// `GET /alerts` — the standing rules and the bounded log of alerts
    /// they have fired, oldest first. `?after=N` returns only alerts
    /// with sequence number > N (the polling cursor `segdiff alerts
    /// --follow` rides on); each alert then carries its `seq` and the
    /// response a `next_after` to resume from.
    fn alerts_dump(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["after"]) {
            return self.bad_request(e);
        }
        let after = match parse_u64_param(req, "after", 0) {
            Ok(n) => n,
            Err(e) => return self.bad_request(e),
        };
        let engine = &self.observability.alerts;
        let rules: Vec<Json> = engine
            .rules()
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::from(r.name.as_str())),
                    ("metric", Json::from(r.metric.as_str())),
                    ("kind", Json::from(r.kind.name())),
                    ("v", Json::Float(r.v)),
                    ("t_seconds", Json::Float(r.t_seconds)),
                    ("epsilon", Json::Float(r.epsilon)),
                    ("scale", Json::Float(r.scale)),
                ])
            })
            .collect();
        let alerts = engine.alerts_since(after);
        let next_after = alerts.last().map(|(seq, _)| *seq).unwrap_or(after);
        Response::json(
            200,
            &Json::obj([
                ("rules", Json::Array(rules)),
                ("fired", Json::from(alerts.len() as u64)),
                ("next_after", Json::from(next_after)),
                (
                    "alerts",
                    Json::Array(
                        alerts
                            .iter()
                            .map(|(seq, a)| {
                                let mut obj = a.to_json();
                                if let Json::Object(fields) = &mut obj {
                                    fields.insert(0, ("seq".to_string(), Json::from(*seq)));
                                }
                                obj
                            })
                            .collect(),
                    ),
                ),
            ]),
        )
    }

    /// `GET /debug/traces` — recently finished requests from the trace
    /// rings. `?ring=slow` selects the tail-sampled slow/error ring,
    /// `?n=` bounds the count (default 20), `?full=1` includes span
    /// trees.
    fn traces_dump(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["n", "ring", "full"]) {
            return self.bad_request(e);
        }
        let store = &self.observability.traces;
        let n = match req.query_param("n") {
            None => 20,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n >= 1 => n.min(4096),
                _ => {
                    self.metrics.bad_requests.inc();
                    return Response::error(
                        400,
                        format!("n must be a positive integer, got {raw:?}"),
                    );
                }
            },
        };
        let ring = req.query_param("ring").unwrap_or("recent");
        let records = match ring {
            "recent" => store.recent(n),
            "slow" => store.slow(n),
            other => {
                self.metrics.bad_requests.inc();
                return Response::error(
                    400,
                    format!("ring must be \"recent\" or \"slow\", got {other:?}"),
                );
            }
        };
        let full = match req.query_param("full") {
            None | Some("0") => false,
            Some("1") => true,
            Some(other) => {
                return self.bad_request(format!("full must be \"0\" or \"1\", got {other:?}"));
            }
        };
        Response::json(
            200,
            &Json::obj([
                ("ring", Json::from(ring)),
                ("count", Json::from(records.len() as u64)),
                (
                    "slow_threshold_ms",
                    Json::Float(store.slow_threshold().as_secs_f64() * 1e3),
                ),
                (
                    "traces",
                    Json::Array(
                        records
                            .iter()
                            .map(|r| {
                                if full {
                                    r.to_json_full()
                                } else {
                                    r.to_json_summary()
                                }
                            })
                            .collect(),
                    ),
                ),
            ]),
        )
    }

    /// `POST /subscribe` — register a standing query. The body is a
    /// [`SubscribeSpec`]; the response echoes the stored subscription,
    /// including the `id` used by `GET /notifications?sub=` and
    /// `GET /subscribe/<id>/stream`.
    fn subscribe_create(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &[]) {
            return self.bad_request(e);
        }
        let body = match req.body_str() {
            Ok(b) => b,
            Err(e) => return self.bad_request(e.to_string()),
        };
        let spec = match SubscribeSpec::from_json(body) {
            Ok(s) => s,
            Err(e) => return self.bad_request(e),
        };
        let sub = self.observability.subs.subscribe(
            &spec.label,
            spec.region(),
            &spec.sensors,
            obs::unix_ms(),
        );
        Response::json(200, &sub.to_json())
    }

    /// `GET /subscribe` — every registered subscription plus the
    /// per-sensor event-frequency characterization (events observed and
    /// the expected rate per hour over the observed span).
    fn subscribe_list(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &[]) {
            return self.bad_request(e);
        }
        let registry = &self.observability.subs;
        let subs = registry.subscriptions();
        let sensors: Vec<Json> = registry
            .sensor_stats()
            .iter()
            .map(|(sensor, f)| {
                Json::obj([
                    ("sensor", Json::from(u64::from(*sensor))),
                    ("events", Json::from(f.events)),
                    ("first_ms", Json::from(f.first_ms)),
                    ("last_ms", Json::from(f.last_ms)),
                    ("expected_per_hour", Json::Float(f.expected_per_hour())),
                ])
            })
            .collect();
        Response::json(
            200,
            &Json::obj([
                ("count", Json::from(subs.len() as u64)),
                (
                    "subscriptions",
                    Json::Array(subs.iter().map(|s| s.to_json()).collect()),
                ),
                ("sensors", Json::Array(sensors)),
            ]),
        )
    }

    /// `GET /notifications?sub=<id>` — the durable polling cursor.
    /// Returns notifications with sequence number > `after` (default 0,
    /// i.e. everything retained), at most `max` (default 100), plus a
    /// `next_after` to resume from.
    fn notifications(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["sub", "after", "max"]) {
            return self.bad_request(e);
        }
        let sub = match req.query_param("sub") {
            None => return self.bad_request("missing query parameter \"sub\"".to_string()),
            Some(raw) => match raw.parse::<u64>() {
                Ok(n) => n,
                Err(_) => {
                    return self.bad_request(format!("sub must be a subscription id, got {raw:?}"));
                }
            },
        };
        let after = match parse_u64_param(req, "after", 0) {
            Ok(n) => n,
            Err(e) => return self.bad_request(e),
        };
        let max = match parse_u64_param(req, "max", 100) {
            Ok(n) if (1..=1000).contains(&n) => n as usize,
            Ok(n) => return self.bad_request(format!("max must be in 1..=1000, got {n}")),
            Err(e) => return self.bad_request(e),
        };
        match self.observability.subs.since(sub, after, max) {
            None => Response::error(404, format!("no subscription {sub}")),
            Some((items, next_after)) => Response::json(
                200,
                &Json::obj([
                    ("sub", Json::from(sub)),
                    ("count", Json::from(items.len() as u64)),
                    ("next_after", Json::from(next_after)),
                    (
                        "notifications",
                        Json::Array(items.iter().map(|n| n.to_json()).collect()),
                    ),
                ]),
            ),
        }
    }

    /// Routes `/subscribe/<id>` (GET one, DELETE to unsubscribe) and the
    /// `/subscribe/<id>/stream` tail. The stream variant is intercepted
    /// by the connection handler before [`Service::handle`] (it takes
    /// over the socket for a chunked live feed); reaching it here means
    /// the transport cannot stream.
    fn subscribe_item(&self, method: &str, path: &str) -> Response {
        let rest = &path["/subscribe/".len()..];
        if let Some(id_raw) = rest.strip_suffix("/stream") {
            return if method == "GET" && id_raw.parse::<u64>().is_ok() {
                Response::error(
                    400,
                    "the stream endpoint requires a dedicated streaming connection",
                )
            } else if method == "GET" {
                self.bad_request(format!(
                    "subscription id must be an integer, got {id_raw:?}"
                ))
            } else {
                Response::error(405, format!("method {method} not allowed"))
            };
        }
        let id = match rest.parse::<u64>() {
            Ok(id) => id,
            Err(_) => {
                return self
                    .bad_request(format!("subscription id must be an integer, got {rest:?}"))
            }
        };
        match method {
            "GET" => match self.observability.subs.subscription(id) {
                Some(sub) => Response::json(200, &sub.to_json()),
                None => Response::error(404, format!("no subscription {id}")),
            },
            "DELETE" => {
                if self.observability.subs.unsubscribe(id) {
                    Response::json(
                        200,
                        &Json::obj([
                            ("status", Json::from("unsubscribed")),
                            ("id", Json::from(id)),
                        ]),
                    )
                } else {
                    Response::error(404, format!("no subscription {id}"))
                }
            }
            other => Response::error(405, format!("method {other} not allowed")),
        }
    }

    /// The subscription id when `req` is `GET /subscribe/<id>/stream` —
    /// the connection handler checks this before dispatching to
    /// [`Service::handle`] and, on a hit, takes over the socket for a
    /// chunked live notification feed.
    pub fn stream_target(req: &Request) -> Option<u64> {
        if req.method != "GET" {
            return None;
        }
        let rest = req.path.strip_prefix("/subscribe/")?;
        rest.strip_suffix("/stream")?.parse().ok()
    }

    /// `GET /healthz` — liveness plus the shard's cluster-facing state:
    /// role, served sensor ids, last durable WAL LSN, what recovery did
    /// at open, and (on replicas) the highest primary LSN applied.
    fn healthz(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &[]) {
            return self.bad_request(e);
        }
        let ids = self.engine.sensor_ids();
        let (clean, replayed_pages, truncated_rows) = self.engine.recovery_summary();
        let mut fields = vec![
            ("status".to_string(), Json::from("ok")),
            ("role".to_string(), Json::from(self.role.name())),
            ("epoch".to_string(), Json::Uint(self.engine.epoch())),
            (
                "sensors".to_string(),
                Json::Uint(self.engine.num_sensors() as u64),
            ),
            (
                "sensor_ids".to_string(),
                Json::Array(ids.iter().map(|&g| Json::Uint(u64::from(g))).collect()),
            ),
            (
                "cache_entries".to_string(),
                Json::from(self.engine.cache_entries()),
            ),
            (
                "last_durable_lsn".to_string(),
                Json::Uint(self.engine.last_durable_lsn()),
            ),
        ];
        if self.role == ShardRole::Replica {
            fields.push((
                "applied_lsn".to_string(),
                Json::Uint(self.engine.applied_lsn()),
            ));
        }
        fields.push((
            "recovery".to_string(),
            Json::obj([
                ("clean", Json::Bool(clean)),
                ("replayed_pages", Json::Uint(replayed_pages)),
                ("truncated_rows", Json::Uint(truncated_rows)),
            ]),
        ));
        Response::json(200, &Json::Object(fields))
    }

    /// `GET /wal?sensor=G&after_lsn=N[&max_bytes=M]` — raw WAL frames
    /// with LSN > N for one served sensor, wrapped in the
    /// [`crate::ship`] header. A warm replica tails this to stay fresh.
    fn wal_ship(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["sensor", "after_lsn", "max_bytes"]) {
            return self.bad_request(e);
        }
        let sensor = match self.sensor_param(req) {
            Ok(sensor) => sensor,
            Err(resp) => return *resp,
        };
        let after = match parse_u64_param(req, "after_lsn", 0) {
            Ok(n) => n,
            Err(e) => return self.bad_request(e),
        };
        let max_bytes = match parse_u64_param(req, "max_bytes", SHIP_DEFAULT_BYTES) {
            Ok(n) => n.min(SHIP_MAX_BYTES) as usize,
            Err(e) => return self.bad_request(e),
        };
        let Some(dir) = self.engine.sensor_dir(sensor) else {
            return Response::error(404, format!("no sensor {sensor}"));
        };
        match pagestore::wal::read_after(&dir.join(pagestore::WAL_FILE), after, max_bytes) {
            Ok(seg) => {
                self.metrics.ship_requests.inc();
                self.metrics.ship_bytes.add(seg.frames.len() as u64);
                if seg.restart {
                    self.metrics.ship_restarts.inc();
                }
                Response::binary(200, crate::ship::encode_segment(&seg))
            }
            Err(e) => Response::error(500, format!("wal read failed: {e}")),
        }
    }

    /// `GET /wal/manifest` — role and served sensor ids; with
    /// `?sensor=G`, the sensor directory's file list (name + length) a
    /// replica copies to bootstrap. Volatile companions (`*.tmp`, the
    /// replica cursor) are excluded.
    fn wal_manifest(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["sensor"]) {
            return self.bad_request(e);
        }
        if req.query_param("sensor").is_none() {
            let ids = self.engine.sensor_ids();
            return Response::json(
                200,
                &Json::obj([
                    ("role", Json::from(self.role.name())),
                    (
                        "sensors",
                        Json::Array(ids.iter().map(|&g| Json::Uint(u64::from(g))).collect()),
                    ),
                ]),
            );
        }
        let sensor = match self.sensor_param(req) {
            Ok(sensor) => sensor,
            Err(resp) => return *resp,
        };
        let Some(dir) = self.engine.sensor_dir(sensor) else {
            return Response::error(404, format!("no sensor {sensor}"));
        };
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) => return Response::error(500, format!("read_dir failed: {e}")),
        };
        let mut files = Vec::new();
        for entry in entries.flatten() {
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if name.ends_with(".tmp") || name == crate::replica::CURSOR_FILE {
                continue;
            }
            let Ok(meta) = entry.metadata() else {
                continue;
            };
            if !meta.is_file() {
                continue;
            }
            files.push((name, meta.len()));
        }
        files.sort();
        Response::json(
            200,
            &Json::obj([
                ("sensor", Json::Uint(u64::from(sensor))),
                (
                    "files",
                    Json::Array(
                        files
                            .iter()
                            .map(|(name, len)| {
                                Json::obj([
                                    ("name", Json::from(name.as_str())),
                                    ("len", Json::Uint(*len)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        )
    }

    /// `GET /wal/file?sensor=G&name=F&offset=O[&len=L]` — one bounded
    /// chunk of a sensor data file, for replica bootstrap. An empty body
    /// means EOF at `offset`.
    fn wal_file(&self, req: &Request) -> Response {
        if let Err(e) = check_query_params(req, &["sensor", "name", "offset", "len"]) {
            return self.bad_request(e);
        }
        let sensor = match self.sensor_param(req) {
            Ok(sensor) => sensor,
            Err(resp) => return *resp,
        };
        let Some(name) = req.query_param("name") else {
            return self.bad_request("missing query parameter \"name\"".to_string());
        };
        if name.is_empty() || name.contains('/') || name.contains('\\') || name.contains("..") {
            return self.bad_request(format!("invalid file name {name:?}"));
        }
        let offset = match parse_u64_param(req, "offset", 0) {
            Ok(n) => n,
            Err(e) => return self.bad_request(e),
        };
        let len = match parse_u64_param(req, "len", SHIP_DEFAULT_BYTES) {
            Ok(n) => n.min(SHIP_MAX_BYTES),
            Err(e) => return self.bad_request(e),
        };
        let Some(dir) = self.engine.sensor_dir(sensor) else {
            return Response::error(404, format!("no sensor {sensor}"));
        };
        let path = dir.join(name);
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Response::error(404, format!("no file {name:?} for sensor {sensor}"));
            }
            Err(e) => return Response::error(500, format!("open failed: {e}")),
        };
        if let Err(e) = file.seek(SeekFrom::Start(offset)) {
            return Response::error(500, format!("seek failed: {e}"));
        }
        let mut buf = Vec::new();
        if let Err(e) = file.take(len).read_to_end(&mut buf) {
            return Response::error(500, format!("read failed: {e}"));
        }
        Response::binary(200, buf)
    }

    /// Parses the required `sensor` query parameter; the error side is a
    /// ready-to-return response (boxed to keep the Ok path lean).
    fn sensor_param(&self, req: &Request) -> Result<u32, Box<Response>> {
        match req.query_param("sensor") {
            None => Err(Box::new(
                self.bad_request("missing query parameter \"sensor\"".to_string()),
            )),
            Some(raw) => raw.parse::<u32>().map_err(|_| {
                Box::new(self.bad_request(format!("sensor must be a sensor id, got {raw:?}")))
            }),
        }
    }

    fn initiate_shutdown(&self) -> Response {
        obs::info!("shutdown requested over HTTP");
        self.shutdown.store(true, Ordering::Release);
        Response::json(200, &Json::obj([("status", Json::from("shutting down"))])).with_close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query_spec() {
        let s = QuerySpec::from_json(r#"{"kind":"drop","v":-3,"t_hours":1}"#).unwrap();
        assert_eq!(s.kind, "drop");
        assert_eq!(s.v, -3.0);
        assert_eq!(s.t_hours, 1.0);
        assert_eq!(s.plan, "scan");
        assert!(!s.trace);
        assert!(s.series.is_none());
        assert_eq!(s.query_plan(), QueryPlan::SeqScan);
    }

    #[test]
    fn accepts_t_seconds_alternative() {
        let s = QuerySpec::from_json(r#"{"kind":"jump","v":2,"t_seconds":1800}"#).unwrap();
        assert_eq!(s.t_hours, 0.5);
    }

    #[test]
    fn parses_full_query_spec() {
        let s = QuerySpec::from_json(
            r#"{"series":"cad-12","kind":"jump","v":1.5,"t_hours":0.5,"plan":"index","trace":true}"#,
        )
        .unwrap();
        assert_eq!(s.series.as_deref(), Some("cad-12"));
        assert_eq!(s.query_plan(), QueryPlan::Index);
        assert!(s.trace);
        let r = s.region();
        assert_eq!(r.v, 1.5);
        assert_eq!(r.t, 0.5 * HOUR);
    }

    #[test]
    fn parses_subscribe_spec() {
        let s = SubscribeSpec::from_json(
            r#"{"label":"canyon","kind":"drop","v":-3,"t_hours":1,"sensors":[0,2]}"#,
        )
        .unwrap();
        assert_eq!(s.label, "canyon");
        assert_eq!(s.sensors, vec![0, 2]);
        let r = s.region();
        assert_eq!(r.v, -3.0);
        assert_eq!(r.t, HOUR);

        let s = SubscribeSpec::from_json(r#"{"kind":"jump","v":2,"t_seconds":1800}"#).unwrap();
        assert!(s.label.is_empty());
        assert!(s.sensors.is_empty(), "no sensors means all sensors");
        assert_eq!(s.t_hours, 0.5);
    }

    #[test]
    fn rejects_invalid_subscribe_specs() {
        for body in [
            "not json",
            "{}",
            r#"{"kind":"drop","v":1,"t_hours":1}"#,
            r#"{"kind":"jump","v":-1,"t_hours":1}"#,
            r#"{"kind":"drop","v":-1,"t_hours":0}"#,
            r#"{"kind":"drop","v":-1,"t_hours":1,"sensors":7}"#,
            r#"{"kind":"drop","v":-1,"t_hours":1,"sensors":[-1]}"#,
            r#"{"kind":"drop","v":-1,"t_hours":1,"label":7}"#,
        ] {
            assert!(SubscribeSpec::from_json(body).is_err(), "accepted: {body}");
        }
    }

    fn get(path_and_query: &str) -> crate::http::Request {
        let raw = format!("GET {path_and_query} HTTP/1.1\r\n\r\n");
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn query_param_checks_reject_unknown_and_malformed() {
        let req = get("/series?name=x&window=5m");
        assert!(check_query_params(&req, &["name", "window"]).is_ok());
        let req = get("/series?nam=x");
        assert!(check_query_params(&req, &["name", "window"]).is_err());
        let req = get("/series?name");
        assert!(check_query_params(&req, &["name", "window"]).is_err());
        let req = get("/healthz");
        assert!(check_query_params(&req, &[]).is_ok());
    }

    #[test]
    fn stream_targets_are_recognized() {
        assert_eq!(Service::stream_target(&get("/subscribe/7/stream")), Some(7));
        assert_eq!(Service::stream_target(&get("/subscribe/7")), None);
        assert_eq!(Service::stream_target(&get("/subscribe/x/stream")), None);
        assert_eq!(Service::stream_target(&get("/notifications")), None);
    }

    #[test]
    fn rejects_invalid_specs() {
        // Each of these would have tripped a QueryRegion assert.
        for body in [
            "not json",
            "{}",
            r#"{"kind":"sideways","v":-1,"t_hours":1}"#,
            r#"{"kind":"drop","v":1,"t_hours":1}"#,
            r#"{"kind":"drop","v":0,"t_hours":1}"#,
            r#"{"kind":"jump","v":-1,"t_hours":1}"#,
            r#"{"kind":"drop","v":-1,"t_hours":0}"#,
            r#"{"kind":"drop","v":-1,"t_hours":-2}"#,
            r#"{"kind":"drop","v":-1}"#,
            r#"{"kind":"drop","t_hours":1}"#,
            r#"{"kind":"drop","v":-1,"t_hours":1,"plan":"turbo"}"#,
        ] {
            assert!(QuerySpec::from_json(body).is_err(), "accepted: {body}");
        }
    }
}
