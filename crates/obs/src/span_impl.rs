//! RAII span timers and trace-tree collection.
//!
//! A [`span`] measures the wall time of a scope and records it into the
//! global histogram `span.<name>`. When a trace is being collected on
//! the current thread ([`trace_begin`]), finished spans additionally
//! assemble into a [`TraceNode`] call-tree, which [`trace_take`]
//! returns — this is what powers `segdiff query --trace`.
//!
//! Collection is thread-local: tracing one query never observes spans
//! from concurrently executing threads, and costs nothing when no trace
//! is active beyond one histogram record per span.

use std::cell::RefCell;
use std::time::Instant;

use crate::json_impl::Json;

/// One node of a collected trace: a named phase with its wall time,
/// free-form attributes, and child phases in execution order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceNode {
    /// Span name (e.g. `query`, `scan`, `refine`).
    pub name: String,
    /// Wall time of the span in nanoseconds.
    pub wall_nanos: u64,
    /// Attributes recorded via [`SpanGuard::record`], in insertion order.
    pub attrs: Vec<(String, Json)>,
    /// Child spans, in the order they finished opening.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&Json> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes the node (recursively) as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("name".to_string(), Json::from(self.name.as_str())),
            ("wall_nanos".to_string(), Json::from(self.wall_nanos)),
        ];
        for (k, v) in &self.attrs {
            obj.push((k.clone(), v.clone()));
        }
        if !self.children.is_empty() {
            obj.push((
                "children".to_string(),
                Json::Array(self.children.iter().map(|c| c.to_json()).collect()),
            ));
        }
        Json::Object(obj)
    }
}

struct OpenSpan {
    name: &'static str,
    started: Instant,
    attrs: Vec<(String, Json)>,
    children: Vec<TraceNode>,
}

#[derive(Default)]
struct Collector {
    /// Stack of open spans; `roots` receives spans that close with no parent.
    stack: Vec<OpenSpan>,
    roots: Vec<TraceNode>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    /// The request's trace id, propagated across layers (0 = none).
    static TRACE_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

static NEXT_TRACE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Allocates a fresh process-unique trace id (never 0).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Tags the current thread with a trace id. The server sets this at
/// request entry; layers below read it with [`current_trace_id`] to
/// stamp their spans, and worker pools copy it into spawned closures so
/// the id follows the request across threads. Set 0 to clear.
pub fn set_current_trace_id(id: u64) {
    TRACE_ID.with(|t| t.set(id));
}

/// The trace id tagged on the current thread, if any.
pub fn current_trace_id() -> Option<u64> {
    let id = TRACE_ID.with(|t| t.get());
    if id == 0 {
        None
    } else {
        Some(id)
    }
}

/// RAII scope for [`set_current_trace_id`]: restores the previous id on
/// drop, so nested scopes (e.g. a worker thread reused across requests)
/// cannot leak an id into unrelated work.
#[derive(Debug)]
pub struct TraceIdScope {
    prev: u64,
}

impl TraceIdScope {
    /// Tags the current thread with `id` until the scope drops.
    pub fn enter(id: u64) -> TraceIdScope {
        let prev = TRACE_ID.with(|t| t.replace(id));
        TraceIdScope { prev }
    }
}

impl Drop for TraceIdScope {
    fn drop(&mut self) {
        TRACE_ID.with(|t| t.set(self.prev));
    }
}

/// Starts collecting a trace on the current thread, discarding any
/// previously collected one.
pub fn trace_begin() {
    COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::default()));
}

/// Whether a trace is being collected on the current thread.
pub fn trace_active() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Stops collection and returns the last completed root span, if any.
pub fn trace_take() -> Option<TraceNode> {
    COLLECTOR
        .with(|c| c.borrow_mut().take())
        .and_then(|col| col.roots.into_iter().next_back())
}

/// Opens a span named `name`; the span closes when the guard drops.
///
/// The wall time is always recorded into the global histogram
/// `span.<name>`; if a trace is active on this thread the span is also
/// added to the trace tree under the currently open span.
pub fn span(name: &'static str) -> SpanGuard {
    let collecting = COLLECTOR.with(|c| {
        let mut borrow = c.borrow_mut();
        if let Some(col) = borrow.as_mut() {
            col.stack.push(OpenSpan {
                name,
                started: Instant::now(),
                attrs: Vec::new(),
                children: Vec::new(),
            });
            true
        } else {
            false
        }
    });
    SpanGuard {
        name,
        started: Instant::now(),
        collecting,
    }
}

/// RAII guard returned by [`span`]; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    started: Instant,
    collecting: bool,
}

impl SpanGuard {
    /// Attaches an attribute to the span (visible in the trace tree).
    /// A no-op when no trace is being collected.
    pub fn record(&self, key: &str, value: impl Into<Json>) {
        if !self.collecting {
            return;
        }
        let value = value.into();
        COLLECTOR.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                if let Some(open) = col.stack.last_mut() {
                    open.attrs.push((key.to_string(), value));
                }
            }
        });
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        crate::global()
            .histogram(&format!("span.{}", self.name))
            .record_duration(elapsed);
        if !self.collecting {
            return;
        }
        COLLECTOR.with(|c| {
            let mut borrow = c.borrow_mut();
            let Some(col) = borrow.as_mut() else { return };
            // Guards drop in reverse creation order within a thread, so
            // the top of the stack is this span.
            let Some(open) = col.stack.pop() else { return };
            let node = TraceNode {
                name: open.name.to_string(),
                wall_nanos: open.started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                attrs: open.attrs,
                children: open.children,
            };
            match col.stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => col.roots.push(node),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_histograms_without_trace() {
        {
            let _s = span("unit_no_trace");
        }
        let h = crate::global().histogram("span.unit_no_trace");
        assert!(h.count() >= 1);
        assert!(trace_take().is_none());
    }

    #[test]
    fn trace_builds_nested_tree() {
        trace_begin();
        {
            let root = span("root");
            root.record("plan", "Index");
            {
                let child = span("child_a");
                child.record("rows", 7u64);
            }
            {
                let _child = span("child_b");
            }
        }
        let t = trace_take().expect("trace collected");
        assert_eq!(t.name, "root");
        assert_eq!(t.attr("plan"), Some(&Json::from("Index")));
        assert_eq!(t.children.len(), 2);
        assert_eq!(t.children[0].name, "child_a");
        assert_eq!(t.children[0].attr("rows"), Some(&Json::from(7u64)));
        assert_eq!(t.children[1].name, "child_b");
        // Children's wall time is bounded by the parent's.
        assert!(t.children.iter().map(|c| c.wall_nanos).sum::<u64>() <= t.wall_nanos);
    }

    #[test]
    fn trace_keeps_last_root() {
        trace_begin();
        {
            let _a = span("first_root");
        }
        {
            let _b = span("second_root");
        }
        let t = trace_take().expect("trace collected");
        assert_eq!(t.name, "second_root");
    }

    #[test]
    fn trace_ids_are_unique_and_scoped() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(current_trace_id(), None);
        {
            let _outer = TraceIdScope::enter(a);
            assert_eq!(current_trace_id(), Some(a));
            {
                let _inner = TraceIdScope::enter(b);
                assert_eq!(current_trace_id(), Some(b));
            }
            assert_eq!(current_trace_id(), Some(a));
        }
        assert_eq!(current_trace_id(), None);
        // Plain set/clear round-trip.
        set_current_trace_id(a);
        assert_eq!(current_trace_id(), Some(a));
        set_current_trace_id(0);
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn trace_is_thread_local() {
        trace_begin();
        std::thread::spawn(|| {
            assert!(!trace_active());
            let _s = span("other_thread");
        })
        .join()
        .unwrap();
        {
            let _s = span("this_thread");
        }
        let t = trace_take().expect("trace collected");
        assert_eq!(t.name, "this_thread");
    }
}
