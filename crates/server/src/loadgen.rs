//! Closed-loop HTTP load generator for the query service.
//!
//! Each of `concurrency` workers keeps one persistent connection and
//! issues requests back-to-back (closed loop: a worker never has more
//! than one request outstanding, so offered load adapts to service
//! capacity instead of overrunning it). Latency is recorded per request
//! into a run-local histogram — p50/p90/p99 come from the same
//! log-bucketed estimator the server uses — and also mirrored into the
//! global registry as `loadgen.request_nanos`.

use crate::http::{read_response, write_request, HttpError};
use obs::HistogramSummary;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a load run should do.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target `host:port`.
    pub host: String,
    /// Concurrent closed-loop workers.
    pub concurrency: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// JSON bodies for `POST /query`, rotated round-robin per worker
    /// (each worker starts at a different offset so the mix interleaves).
    pub bodies: Vec<String>,
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that completed with a 2xx status.
    pub ok: u64,
    /// Responses with a non-2xx status.
    pub non_2xx: u64,
    /// Transport failures that persisted after one reconnect retry.
    pub errors: u64,
    /// Transport failures per query body, parallel to
    /// [`LoadgenConfig::bodies`] — a dead shard shows up as errors
    /// concentrated on the bodies routed to it.
    pub errors_by_body: Vec<u64>,
    /// Measured wall time of the run in seconds.
    pub elapsed: f64,
    /// Request latency distribution (nanoseconds).
    pub latency: HistogramSummary,
}

impl LoadReport {
    /// Completed 2xx requests per second.
    pub fn qps(&self) -> f64 {
        if self.elapsed > 0.0 {
            self.ok as f64 / self.elapsed
        } else {
            0.0
        }
    }

    /// Total requests attempted.
    pub fn total(&self) -> u64 {
        self.ok + self.non_2xx + self.errors
    }
}

/// Extracts `host:port` from `http://host:port[/...]` (scheme optional).
pub fn parse_url(url: &str) -> Result<String, String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    if rest.starts_with("https://") {
        return Err("https is not supported".to_string());
    }
    let authority = rest.split('/').next().unwrap_or("");
    let (host, port) = authority
        .rsplit_once(':')
        .ok_or_else(|| format!("URL must include a port: {url}"))?;
    if host.is_empty() || port.parse::<u16>().is_err() {
        return Err(format!("cannot parse host:port from {url}"));
    }
    Ok(authority.to_string())
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// First sleep after a transport error.
const BACKOFF_BASE: Duration = Duration::from_millis(10);

/// Ceiling for the exponential backoff.
const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Bounded exponential backoff with multiplicative jitter for the
/// worker error path. A flat retry delay hammers a dead server at
/// connect-failure speed and makes every worker retry in lockstep,
/// which skews tail latency the moment the server returns; doubling
/// with a ±50% jitter spreads the herd out.
struct Backoff {
    current: Duration,
    rng: u64,
}

impl Backoff {
    fn new(seed: u64) -> Backoff {
        Backoff {
            current: BACKOFF_BASE,
            // xorshift needs a nonzero state.
            rng: seed | 1,
        }
    }

    /// Back to the base delay after a successful request.
    fn reset(&mut self) {
        self.current = BACKOFF_BASE;
    }

    /// The next sleep: current step scaled by a jitter in [0.5, 1.5),
    /// then the step doubles up to [`BACKOFF_CAP`].
    fn next_delay(&mut self) -> Duration {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let jitter = 0.5 + (self.rng % 1000) as f64 / 1000.0;
        let delay = self.current.mul_f64(jitter);
        self.current = (self.current * 2).min(BACKOFF_CAP);
        delay
    }
}

fn connect(host: &str) -> Result<TcpStream, HttpError> {
    let stream = TcpStream::connect(host)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn roundtrip_once(
    stream: &mut TcpStream,
    host: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, Vec<u8>), HttpError> {
    write_request(stream, method, path, host, body)?;
    // A fresh BufReader per request wastes a little but guarantees no
    // buffered bytes survive a connection swap on retry.
    let mut reader = BufReader::new(stream.try_clone().map_err(HttpError::Io)?);
    read_response(&mut reader)
}

/// One request over a pooled connection with a single reconnect retry:
/// a keep-alive connection the server idled out looks like an EOF or a
/// reset exactly once, and a retry on a fresh connection recovers it.
pub fn pooled_request(
    conn: &mut Option<TcpStream>,
    host: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, Vec<u8>), HttpError> {
    let reused = conn.is_some();
    let stream = match conn.take() {
        Some(s) => s,
        None => connect(host)?,
    };
    match roundtrip_once(conn.insert(stream), host, method, path, body) {
        Ok(out) => Ok(out),
        Err(e) => {
            *conn = None;
            if !reused {
                return Err(e);
            }
            match roundtrip_once(conn.insert(connect(host)?), host, method, path, body) {
                Ok(out) => Ok(out),
                Err(e) => {
                    *conn = None;
                    Err(e)
                }
            }
        }
    }
}

/// One-shot request on a fresh connection; returns `(status, body)`.
pub fn fetch(
    host: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut conn = None;
    let (status, bytes) =
        pooled_request(&mut conn, host, method, path, body).map_err(|e| e.to_string())?;
    String::from_utf8(bytes)
        .map(|text| (status, text))
        .map_err(|_| "response body is not UTF-8".to_string())
}

/// One-shot request on a fresh connection; returns the raw body bytes
/// (for binary endpoints like WAL shipping).
pub fn fetch_bytes(
    host: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, Vec<u8>), String> {
    let mut conn = None;
    pooled_request(&mut conn, host, method, path, body).map_err(|e| e.to_string())
}

/// Runs the closed loop and aggregates a [`LoadReport`].
pub fn run(config: &LoadgenConfig) -> Result<LoadReport, String> {
    if config.bodies.is_empty() {
        return Err("loadgen needs at least one query body".to_string());
    }
    if config.concurrency == 0 {
        return Err("loadgen needs at least one worker".to_string());
    }
    let latency = Arc::new(obs::Histogram::new());
    let global_latency = obs::global().histogram("loadgen.request_nanos");
    let ok = Arc::new(AtomicU64::new(0));
    let non_2xx = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let errors_by_body: Arc<Vec<AtomicU64>> =
        Arc::new(config.bodies.iter().map(|_| AtomicU64::new(0)).collect());
    let start = Instant::now();

    std::thread::scope(|s| {
        for worker in 0..config.concurrency {
            let latency = Arc::clone(&latency);
            let global_latency = Arc::clone(&global_latency);
            let ok = Arc::clone(&ok);
            let non_2xx = Arc::clone(&non_2xx);
            let errors = Arc::clone(&errors);
            let errors_by_body = Arc::clone(&errors_by_body);
            let host = config.host.clone();
            let bodies = &config.bodies;
            let duration = config.duration;
            s.spawn(move || {
                let mut conn: Option<TcpStream> = None;
                let mut backoff = Backoff::new(worker as u64 + 1);
                let mut i = worker; // offset so workers interleave the mix
                while start.elapsed() < duration {
                    let idx = i % bodies.len();
                    let body = &bodies[idx];
                    i += 1;
                    let t0 = Instant::now();
                    match pooled_request(&mut conn, &host, "POST", "/query", Some(body)) {
                        Ok((status, _body)) => {
                            let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            latency.record(nanos);
                            global_latency.record(nanos);
                            backoff.reset();
                            if (200..300).contains(&status) {
                                ok.fetch_add(1, Ordering::Relaxed);
                            } else {
                                non_2xx.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            errors_by_body[idx].fetch_add(1, Ordering::Relaxed);
                            // Never sleep past the end of the run.
                            let delay = backoff.next_delay();
                            let left = duration.saturating_sub(start.elapsed());
                            std::thread::sleep(delay.min(left));
                        }
                    }
                }
            });
        }
    });

    Ok(LoadReport {
        ok: ok.load(Ordering::Relaxed),
        non_2xx: non_2xx.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        errors_by_body: errors_by_body
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        elapsed: start.elapsed().as_secs_f64(),
        latency: latency.summary(),
    })
}

/// Builds the standard query mix for one `(kind, v, t_hours)` target:
/// both plans over four time thresholds, so a run exercises scan and
/// index paths and produces plenty of repeat queries for the cache.
pub fn query_mix(kind: &str, v: f64, t_hours: f64) -> Vec<String> {
    let mut bodies = Vec::new();
    for plan in ["scan", "index"] {
        for frac in [1.0, 0.75, 0.5, 0.25] {
            bodies.push(format!(
                r#"{{"kind":"{kind}","v":{v},"t_hours":{},"plan":"{plan}"}}"#,
                t_hours * frac
            ));
        }
    }
    bodies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_urls() {
        assert_eq!(
            parse_url("http://127.0.0.1:7878").unwrap(),
            "127.0.0.1:7878"
        );
        assert_eq!(
            parse_url("http://localhost:80/query").unwrap(),
            "localhost:80"
        );
        assert_eq!(parse_url("10.0.0.1:9000").unwrap(), "10.0.0.1:9000");
        assert!(parse_url("http://nohost").is_err());
        assert!(parse_url("https://h:1").is_err());
        assert!(parse_url(":123").is_err());
    }

    #[test]
    fn query_mix_is_distinct_and_valid_json() {
        let mix = query_mix("drop", -3.0, 1.0);
        assert_eq!(mix.len(), 8);
        let mut seen = std::collections::HashSet::new();
        for body in &mix {
            assert!(obs::json::Json::parse(body).is_ok(), "bad body: {body}");
            assert!(seen.insert(body.clone()), "duplicate body: {body}");
        }
    }

    #[test]
    fn report_math() {
        let r = LoadReport {
            ok: 100,
            non_2xx: 2,
            errors: 1,
            errors_by_body: vec![1, 0],
            elapsed: 4.0,
            latency: HistogramSummary::default(),
        };
        assert_eq!(r.qps(), 25.0);
        assert_eq!(r.total(), 103);
        assert_eq!(r.errors_by_body.iter().sum::<u64>(), r.errors);
    }

    #[test]
    fn backoff_grows_jitters_and_resets() {
        let mut b = Backoff::new(7);
        let mut prev_step = BACKOFF_BASE;
        for _ in 0..12 {
            let step = b.current;
            let delay = b.next_delay();
            // Jitter keeps each delay within [0.5, 1.5) of the step.
            assert!(
                delay >= step.mul_f64(0.5),
                "delay {delay:?} under step {step:?}"
            );
            assert!(
                delay < step.mul_f64(1.5),
                "delay {delay:?} over step {step:?}"
            );
            assert!(step >= prev_step, "steps never shrink mid-streak");
            assert!(b.current <= BACKOFF_CAP, "step is capped");
            prev_step = step;
        }
        assert_eq!(b.current, BACKOFF_CAP);
        b.reset();
        assert_eq!(b.current, BACKOFF_BASE);

        // Two workers with different seeds de-synchronize.
        let (mut x, mut y) = (Backoff::new(1), Backoff::new(2));
        let same = (0..8).filter(|_| x.next_delay() == y.next_delay()).count();
        assert!(same < 8, "seeded jitter must differ between workers");
    }
}
