//! Fault injection: the engine must fail *cleanly* — with a typed error,
//! never a panic or silent corruption — when on-disk state is damaged.

#![cfg(test)]

use crate::{BTree, BufferPool, Database, HeapFile, PageFile, StoreError, TableSpec, PAGE_SIZE};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pagestore-fault-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn truncated_page_file_rejected() {
    let dir = tmpdir("truncated");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("t.tbl");
    std::fs::write(&p, vec![0u8; PAGE_SIZE + 100]).unwrap();
    assert!(matches!(PageFile::open(&p), Err(StoreError::Corrupt(_))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heap_with_wrong_magic_rejected() {
    let dir = tmpdir("magic");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("h.tbl");
    std::fs::write(&p, vec![0xAB; PAGE_SIZE]).unwrap();
    let pool = Arc::new(BufferPool::new(16));
    let fid = pool.register_file(PageFile::open(&p).unwrap());
    assert!(matches!(
        HeapFile::open(pool, fid),
        Err(StoreError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn btree_with_wrong_magic_rejected() {
    let dir = tmpdir("btmagic");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("i.idx");
    std::fs::write(&p, vec![0x17; PAGE_SIZE * 2]).unwrap();
    let pool = Arc::new(BufferPool::new(16));
    let fid = pool.register_file(PageFile::open(&p).unwrap());
    assert!(matches!(
        BTree::open(pool, fid),
        Err(StoreError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbled_catalog_rejected() {
    let dir = tmpdir("catalog");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("catalog.txt"), "definitely not a catalog line\n").unwrap();
    assert!(matches!(
        Database::open(&dir, 64),
        Err(StoreError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn catalog_column_mismatch_rejected() {
    let dir = tmpdir("mismatch");
    {
        let db = Database::create(&dir, 64).unwrap();
        db.create_table(TableSpec::new("t", &["a", "b"])).unwrap();
        db.flush().unwrap();
    }
    // Tamper: claim three columns in the catalog while the heap has two.
    std::fs::write(dir.join("catalog.txt"), "table t a,b,c\n").unwrap();
    assert!(matches!(
        Database::open(&dir, 64),
        Err(StoreError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_table_file_fails_cleanly() {
    let dir = tmpdir("missing-file");
    {
        let db = Database::create(&dir, 64).unwrap();
        db.create_table(TableSpec::new("t", &["a"])).unwrap();
        db.flush().unwrap();
    }
    std::fs::remove_file(dir.join("t.tbl")).unwrap();
    assert!(Database::open(&dir, 64).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_on_nondatabase_directory() {
    let dir = tmpdir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(matches!(
        Database::open(&dir, 64),
        Err(StoreError::NotFound(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn data_survives_crash_before_flush_of_clean_pages() {
    // Everything written through insert + flush must persist even when the
    // process "crashes" (we simply drop the structs without further work).
    let dir = tmpdir("crashy");
    {
        let db = Database::create(&dir, 16).unwrap(); // tiny pool: evictions write pages early
        let t = db.create_table(TableSpec::new("t", &["x"])).unwrap();
        for i in 0..5000 {
            t.insert(&[i as f64]).unwrap();
        }
        db.flush().unwrap();
        // No clean shutdown beyond flush.
    }
    let db = Database::open(&dir, 16).unwrap();
    let t = db.table("t").unwrap();
    assert_eq!(t.num_rows(), 5000);
    let mut sum = 0.0;
    t.seq_scan(|_, row| {
        sum += row[0];
        true
    })
    .unwrap();
    assert_eq!(sum, (4999.0 * 5000.0) / 2.0);
    std::fs::remove_dir_all(&dir).ok();
}
