//! The exhaustive baseline must agree *exactly* with the brute-force
//! oracle on sampled observations — Exh has no approximation.

use segdiff_repro::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("segdiff-exh-it-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn walk_series(n: usize, seed: u64) -> TimeSeries {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut v = 0.0;
    let mut s = TimeSeries::with_capacity(n);
    for _ in 0..n {
        t += 120.0 + rng.random::<f64>() * 400.0;
        v += (rng.random::<f64>() - 0.5) * 3.0;
        s.push(t, v);
    }
    s
}

#[test]
fn exh_equals_oracle_for_many_queries() {
    let dir = tmpdir("oracle");
    let series = walk_series(600, 5);
    let w = 6.0 * HOUR;
    let mut exh = ExhIndex::create(&dir, w, 1024).unwrap();
    exh.ingest_series(&series).unwrap();
    exh.finish().unwrap();
    exh.build_indexes().unwrap();

    let regions = [
        QueryRegion::drop(1.0 * HOUR, -2.0),
        QueryRegion::drop(0.25 * HOUR, -0.5),
        QueryRegion::drop(6.0 * HOUR, -5.0),
        QueryRegion::jump(2.0 * HOUR, 1.0),
        QueryRegion::jump(0.5 * HOUR, 3.0),
    ];
    // Exh stores (dt, dv, t2) — the paper's 3-column row — so t1 comes back
    // as t2 - dt with ulp-level error; sort on a microsecond-rounded key so
    // both sides order identically.
    let sort_key = |p: &(f64, f64)| ((p.0 * 1e6).round() as i64, (p.1 * 1e6).round() as i64);
    for region in &regions {
        let mut want: Vec<(f64, f64)> = oracle::true_events(&series, region);
        want.sort_by_key(sort_key);
        for plan in [QueryPlan::SeqScan, QueryPlan::Index] {
            let (events, stats) = exh.query(region, plan).unwrap();
            let mut got: Vec<(f64, f64)> = events.iter().map(|e| (e.t1, e.t2)).collect();
            got.sort_by_key(sort_key);
            assert_eq!(got.len(), want.len(), "plan {plan:?} region {region:?}");
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.0 - w.0).abs() < 1e-6 && g.1 == w.1,
                    "plan {plan:?} region {region:?}: got {g:?}, want {w:?}"
                );
            }
            assert_eq!(stats.results as usize, got.len());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exh_row_count_formula() {
    // With regular sampling every p seconds and window w, each observation
    // past the warm-up emits floor(w/p) rows.
    let dir = tmpdir("count");
    let p = 300.0;
    let w = 8.0 * HOUR;
    let per = (w / p) as u64; // 96
    let n = 500u64;
    let series: TimeSeries = (0..n).map(|i| (i as f64 * p, (i % 7) as f64)).collect();
    let mut exh = ExhIndex::create(&dir, w, 512).unwrap();
    exh.ingest_series(&series).unwrap();
    // Warm-up: observation i < per emits i rows; afterwards `per` rows.
    let expected: u64 = (0..n).map(|i| i.min(per)).sum();
    assert_eq!(exh.stats().n_rows, expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn segdiff_results_cover_every_exh_event() {
    // Cross-system consistency: anything Exh finds, SegDiff must cover
    // (SegDiff may return more — its 2-epsilon tolerance).
    let dir_e = tmpdir("cover-exh");
    let dir_s = tmpdir("cover-seg");
    let series = walk_series(500, 42);
    let w = 4.0 * HOUR;

    let mut exh = ExhIndex::create(&dir_e, w, 512).unwrap();
    exh.ingest_series(&series).unwrap();
    let mut seg = SegDiffIndex::create(
        &dir_s,
        SegDiffConfig::default().with_epsilon(0.3).with_window(w),
    )
    .unwrap();
    seg.ingest_series(&series).unwrap();
    seg.finish().unwrap();

    let region = QueryRegion::drop(1.0 * HOUR, -1.5);
    let (events, _) = exh.query(&region, QueryPlan::SeqScan).unwrap();
    let (pairs, _) = seg.query(&region, QueryPlan::SeqScan).unwrap();
    assert!(!events.is_empty(), "test needs events to compare");
    // Tolerance on t1: Exh reconstructs it as t2 - dt (ulp-level error).
    let covers_approx = |p: &SegmentPair, t1: f64, t2: f64| {
        p.t_d - 1e-6 <= t1 && t1 <= p.t_c + 1e-6 && p.t_b - 1e-6 <= t2 && t2 <= p.t_a + 1e-6
    };
    for e in &events {
        assert!(
            pairs.iter().any(|p| covers_approx(p, e.t1, e.t2)),
            "SegDiff missed Exh event ({}, {})",
            e.t1,
            e.t2
        );
    }
    std::fs::remove_dir_all(&dir_e).ok();
    std::fs::remove_dir_all(&dir_s).ok();
}
