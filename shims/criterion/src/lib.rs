//! Offline shim for the `criterion` API surface used by this workspace's
//! benches. It times each benchmark with a simple mean-of-N protocol and
//! prints one line per benchmark — no statistics engine, no HTML reports —
//! so `cargo bench` keeps working without network access.

use std::time::{Duration, Instant};

/// Passes a value through while defeating constant-propagation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let overrides = self.clone();
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            overrides,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.clone();
        run_one(&id.into_benchmark_id().render(), &settings, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    overrides: Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.overrides.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.overrides.measurement_time = d;
        self
    }

    /// Sets the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.overrides.warm_up_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_one(&label, &self.overrides, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_one(&label, &self.overrides, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

/// Conversion into a [`BenchmarkId`] (strings or ready-made ids).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// Timing callback handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
}

impl Bencher {
    /// Times `f`: a warm-up period, then `sample_size` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            black_box(f());
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, settings: &Criterion, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: settings.sample_size,
        warm_up: settings.warm_up_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    b.samples.sort();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{label:<50} mean {:>12?}  median {:>12?}  n={}",
        mean,
        median,
        b.samples.len()
    );
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(3);
            group.bench_function("counter", |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &p| {
                b.iter(|| black_box(p * 2))
            });
            group.finish();
        }
        assert!(runs >= 3, "timed runs executed");
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).render(), "9");
        assert_eq!("plain".into_benchmark_id().render(), "plain");
    }
}
