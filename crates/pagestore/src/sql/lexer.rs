//! SQL tokenizer.

use crate::error::Result;
use crate::StoreError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `*`.
    Star,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `=`.
    Eq,
    /// `!=` or `<>`.
    Ne,
    /// `;` (allowed, ignored at end).
    Semicolon,
}

/// Tokenizes SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // Could be a comment `--`.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(StoreError::InvalidArgument("stray '!' in SQL".into()));
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &sql[start..i];
                let n: f64 = text.parse().map_err(|_| {
                    StoreError::InvalidArgument(format!("bad number literal `{text}`"))
                })?;
                out.push(Token::Number(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(StoreError::InvalidArgument(format!(
                    "unexpected character `{other}` in SQL"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let toks = tokenize("SELECT a, b FROM t WHERE a <= 3.5 AND b != -2e-1").unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Number(3.5)));
        assert!(toks.contains(&Token::Number(0.2)));
        assert!(toks.contains(&Token::Minus), "unary minus is a token");
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT * -- the works\nFROM t").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT @ FROM t").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn operators_distinct() {
        let toks = tokenize("< <= > >= = != <>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }
}
