//! Durability: indexes survive process restarts (reopen) and ingestion
//! resumes across the restart without losing events near the boundary.

use segdiff_repro::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("segdiff-persist-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn walk(n: usize, seed: u64) -> TimeSeries {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = 5.0;
    (0..n)
        .map(|i| {
            v += (rng.random::<f64>() - 0.5) * 2.0;
            (i as f64 * 300.0, v)
        })
        .collect()
}

#[test]
fn segdiff_reopen_answers_identically() {
    let dir = tmpdir("seg-reopen");
    let series = walk(500, 3);
    let region = QueryRegion::drop(1.0 * HOUR, -1.5);
    let before = {
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        idx.build_indexes().unwrap();
        idx.query(&region, QueryPlan::SeqScan).unwrap().0
    };
    let idx = SegDiffIndex::open(&dir, 1024).unwrap();
    let (scan, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
    let (indexed, _) = idx.query(&region, QueryPlan::Index).unwrap();
    assert_eq!(before, scan);
    assert_eq!(before, indexed);
    // Stats (histograms, counts) survive too.
    let s = idx.stats();
    assert_eq!(s.n_observations, 500);
    assert!(s.n_segments > 0);
    assert_eq!(s.corner_hist().total(), s.n_rows);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn segdiff_resumed_ingest_preserves_completeness() {
    // Ingest the first half, finish, reopen, ingest the second half.
    // Theorem 1's completeness must hold over the whole series, including
    // events that straddle the restart.
    let dir = tmpdir("seg-resume");
    let series = walk(600, 17);
    let half = series.len() / 2;
    {
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        for i in 0..half {
            let (t, v) = series.get(i);
            idx.push(t, v).unwrap();
        }
        idx.finish().unwrap();
    }
    let mut idx = SegDiffIndex::open(&dir, 1024).unwrap();
    for i in half..series.len() {
        let (t, v) = series.get(i);
        idx.push(t, v).unwrap();
    }
    idx.finish().unwrap();

    let region = QueryRegion::drop(1.0 * HOUR, -1.5);
    let events = oracle::true_events(&series, &region);
    assert!(!events.is_empty());
    let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
    assert_eq!(
        oracle::find_missed_event(&events, &results),
        None,
        "an event was lost across the restart"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exh_reopen_and_resume() {
    let dir = tmpdir("exh-resume");
    let series = walk(400, 5);
    let half = series.len() / 2;
    {
        let mut exh = ExhIndex::create(&dir, 4.0 * HOUR, 512).unwrap();
        for i in 0..half {
            let (t, v) = series.get(i);
            exh.push(t, v).unwrap();
        }
        exh.finish().unwrap();
    }
    let mut exh = ExhIndex::open(&dir, 512).unwrap();
    for i in half..series.len() {
        let (t, v) = series.get(i);
        exh.push(t, v).unwrap();
    }
    exh.finish().unwrap();

    // Exh must remain *exactly* the brute force — including the pairs that
    // straddle the restart, which the persisted window tail provides.
    let region = QueryRegion::drop(1.0 * HOUR, -1.0);
    let want = oracle::true_events(&series, &region);
    let (events, _) = exh.query(&region, QueryPlan::SeqScan).unwrap();
    assert_eq!(events.len(), want.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopen_missing_directory_fails_cleanly() {
    let dir = tmpdir("nope");
    assert!(SegDiffIndex::open(&dir, 128).is_err());
    assert!(ExhIndex::open(&dir, 128).is_err());
}

mod torn_tails {
    use super::*;
    use proptest::prelude::*;
    use segdiff_repro::pagestore::StoreError;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// A crash can tear the last page of any file: the tail of the WAL
        /// or of a heap file may come back truncated or garbled. Whatever
        /// the damage, reopening must either succeed with a consistent
        /// prefix (verified by replay) or fail with a *typed* error —
        /// never panic, never return silently wrong data.
        #[test]
        fn torn_tails_recover_or_fail_typed(
            seed in 0u64..1_000,
            damage in 1usize..3_000,
            which in 0usize..8,
        ) {
            let dir = tmpdir(&format!("torn-{seed}-{damage}-{which}"));
            let series = walk(250, seed);
            {
                let mut idx = SegDiffIndex::create(
                    &dir,
                    SegDiffConfig::default().with_sync(false).with_pool_pages(256),
                )
                .unwrap();
                idx.ingest_series(&series).unwrap();
                // Simulated crash: no finish(), dirty pages die with the
                // pool; only the WAL and evicted pages are on disk.
            }
            // Damage the tail of the WAL or of one heap file.
            let mut victims: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.extension().is_some_and(|x| x == "tbl")
                        || p.file_name().is_some_and(|n| n == "wal.log")
                })
                .collect();
            victims.sort();
            let victim = &victims[which % victims.len()];
            let len = std::fs::metadata(victim).unwrap().len();
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(victim)
                .unwrap();
            if which & 4 == 0 {
                file.set_len(len.saturating_sub(damage as u64)).unwrap();
            } else {
                use std::io::{Seek, SeekFrom, Write};
                let mut file = file;
                let n = (damage as u64).min(len);
                file.seek(SeekFrom::Start(len - n)).unwrap();
                file.write_all(&vec![0xA5u8; n as usize]).unwrap();
            }
            match SegDiffIndex::open(&dir, 256) {
                Ok(idx) => {
                    // Whatever survived must be a consistent prefix that
                    // still answers queries.
                    idx.verify_consistency().unwrap();
                    let region = QueryRegion::drop(1.0 * HOUR, -1.5);
                    idx.query(&region, QueryPlan::SeqScan).unwrap();
                }
                Err(StoreError::Corrupt(_)) | Err(StoreError::NotFound(_)) => {}
                Err(e) => panic!("unexpected error kind: {e}"),
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
