//! Measurement noise and anomalies.
//!
//! The paper preprocesses the raw transect data with a robust smoother "so
//! that anomalies are removed". To exercise that pipeline the generator
//! injects the kinds of artifacts wireless sensors actually produce:
//! per-sample Gaussian noise, isolated spikes (radio glitches, direct sun on
//! the shield), and missing stretches (battery/radio dropouts, which make the
//! sampling irregular).

use crate::rng::normal;
use rand::{Rng, RngExt};

/// Noise and anomaly parameters for one sensor.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Standard deviation of per-sample Gaussian noise (°C).
    pub white_sd: f64,
    /// Per-sample probability of a spike anomaly.
    pub spike_prob: f64,
    /// Spike magnitude range (°C); sign is random.
    pub spike_magnitude: (f64, f64),
    /// Per-sample probability that a dropout begins.
    pub dropout_prob: f64,
    /// Dropout length range in samples.
    pub dropout_len: (u32, u32),
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            white_sd: 0.12,
            spike_prob: 8e-4,
            spike_magnitude: (2.0, 10.0),
            dropout_prob: 2e-4,
            dropout_len: (2, 24),
        }
    }
}

impl NoiseConfig {
    /// A configuration with no noise and no anomalies (clean signal).
    pub fn none() -> Self {
        Self {
            white_sd: 0.0,
            spike_prob: 0.0,
            spike_magnitude: (0.0, 0.0),
            dropout_prob: 0.0,
            dropout_len: (0, 0),
        }
    }

    /// Per-sample white noise.
    pub fn white<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.white_sd == 0.0 {
            0.0
        } else {
            normal(rng, 0.0, self.white_sd)
        }
    }

    /// Returns a spike offset for this sample, or zero.
    pub fn spike<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.spike_prob > 0.0 && rng.random::<f64>() < self.spike_prob {
            let (lo, hi) = self.spike_magnitude;
            let mag = lo + (hi - lo) * rng.random::<f64>();
            if rng.random::<bool>() {
                mag
            } else {
                -mag
            }
        } else {
            0.0
        }
    }

    /// If a dropout starts at this sample, returns its length in samples.
    pub fn dropout<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        if self.dropout_prob > 0.0 && rng.random::<f64>() < self.dropout_prob {
            let (lo, hi) = self.dropout_len;
            Some(rng.random_range(lo..=hi.max(lo + 1)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn none_is_silent() {
        let cfg = NoiseConfig::none();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(cfg.white(&mut rng), 0.0);
            assert_eq!(cfg.spike(&mut rng), 0.0);
            assert_eq!(cfg.dropout(&mut rng), None);
        }
    }

    #[test]
    fn spikes_respect_magnitude_range() {
        let cfg = NoiseConfig {
            spike_prob: 1.0,
            spike_magnitude: (2.0, 10.0),
            ..NoiseConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_pos = false;
        let mut seen_neg = false;
        for _ in 0..1000 {
            let s = cfg.spike(&mut rng);
            assert!((2.0..=10.0).contains(&s.abs()), "spike {s}");
            seen_pos |= s > 0.0;
            seen_neg |= s < 0.0;
        }
        assert!(seen_pos && seen_neg);
    }

    #[test]
    fn spike_rate_matches_probability() {
        let cfg = NoiseConfig {
            spike_prob: 0.05,
            ..NoiseConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| cfg.spike(&mut rng) != 0.0).count();
        assert!((hits as f64 - 5000.0).abs() < 500.0, "hits {hits}");
    }

    #[test]
    fn dropout_lengths_in_range() {
        let cfg = NoiseConfig {
            dropout_prob: 1.0,
            dropout_len: (2, 24),
            ..NoiseConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let len = cfg.dropout(&mut rng).unwrap();
            assert!((2..=24).contains(&len));
        }
    }
}
