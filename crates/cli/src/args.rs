//! Command-line parsing (no external dependencies).

use std::path::PathBuf;

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage:
  segdiff generate --csv FILE --days N [--sensor K] [--seed S] [--raw]
  segdiff ingest   --index DIR --csv FILE [--epsilon E] [--window-hours H] [--no-smooth]
  segdiff query    --index DIR --kind drop|jump --v V --t-hours H
                   [--plan scan|index] [--refine FILE] [--limit N] [--trace]
                   [--all-sensors] [--threads N]
  segdiff stats    --index DIR [--json] [--series]
  segdiff recover  --index DIR [--json]
  segdiff metrics  --index DIR [--json]
  segdiff sql      --index DIR \"SELECT ...\"
  segdiff serve    --index DIR [--port P] [--threads N] [--queue-depth Q]
                   [--all-sensors] [--sensors 1,2,...] [--json]
                   [--sample-ms MS] [--slow-ms MS] [--alert-rules FILE]
  segdiff serve    --index DIR --replica-of http://HOST:PORT [--port P]
                   [--threads N] [--poll-ms MS] [--json]
  segdiff router   --shard PRIMARY[,REPLICA] [--shard ...] [--port P]
                   [--threads N] [--queue-depth Q] [--health-interval-ms MS]
                   [--json]
  segdiff cluster  --index DIR --shards N [--print-plan] [--port P]
                   [--threads N] [--json]
  segdiff loadgen  --url http://HOST:PORT [--concurrency N] [--duration-secs S]
                   [--kind drop|jump] [--v V] [--t-hours H] [--guard FILE]
  segdiff alerts   --url http://HOST:PORT [--json] [--follow] [--after N]
                   [--interval-ms MS] [--iterations N]
  segdiff top      --url http://HOST:PORT [--interval-ms MS] [--iterations N]
  segdiff subscribe --url http://HOST:PORT --kind drop|jump --v V --t-hours H
                   [--label NAME] [--sensors 1,2,...] [--json]
  segdiff subscribe --url http://HOST:PORT --list | --delete ID  [--json]
  segdiff watch    --url http://HOST:PORT --sub ID [--after N]
                   [--interval-ms MS] [--iterations N] [--json]

environment:
  SEGDIFF_LOG=off|error|warn|info|debug   diagnostic verbosity (default warn)";

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Produce synthetic CAD data as CSV.
    Generate {
        /// Output CSV path.
        csv: PathBuf,
        /// Days of data.
        days: u32,
        /// Sensor position (0-24).
        sensor: u32,
        /// RNG seed.
        seed: u64,
        /// Skip the robust smoother (emit raw data with anomalies).
        raw: bool,
    },
    /// Create-or-resume an index from a CSV.
    Ingest {
        /// Index directory.
        index: PathBuf,
        /// Input CSV path.
        csv: PathBuf,
        /// Error tolerance (used only on creation).
        epsilon: f64,
        /// Window in hours (used only on creation).
        window_hours: f64,
        /// Skip smoothing before ingest.
        no_smooth: bool,
    },
    /// Search an index.
    Query {
        /// Index directory.
        index: PathBuf,
        /// "drop" or "jump".
        kind: String,
        /// Threshold V (negative for drops).
        v: f64,
        /// Threshold T in hours.
        t_hours: f64,
        /// "scan" or "index".
        plan: String,
        /// Optional raw CSV to refine against.
        refine: Option<PathBuf>,
        /// Max results to print.
        limit: usize,
        /// Print an EXPLAIN ANALYZE-style per-phase trace.
        trace: bool,
        /// Treat `--index` as a transect root and fan out over every
        /// `sensor-<k>/` index in parallel.
        all_sensors: bool,
        /// Worker threads for the `--all-sensors` fan-out.
        threads: usize,
    },
    /// Print index statistics.
    Stats {
        /// Index directory.
        index: PathBuf,
        /// Emit machine-readable JSON instead of text.
        json: bool,
        /// Also run the metric sampler over a probe query and print the
        /// derived time series (rates, quantiles, gauges).
        series: bool,
    },
    /// Open an index (running WAL recovery if needed), verify its
    /// consistency, and report what recovery did — an fsck for indexes.
    Recover {
        /// Index directory.
        index: PathBuf,
        /// Emit machine-readable JSON instead of text.
        json: bool,
    },
    /// Print the telemetry registry after probing the index.
    Metrics {
        /// Index directory.
        index: PathBuf,
        /// Emit line-delimited JSON instead of text.
        json: bool,
    },
    /// Execute a SQL statement against the index's database.
    Sql {
        /// Index directory.
        index: PathBuf,
        /// The statement.
        statement: String,
    },
    /// Run the HTTP query service over an index.
    Serve {
        /// Index directory.
        index: PathBuf,
        /// TCP port (0 picks an ephemeral port).
        port: u16,
        /// Worker threads.
        threads: usize,
        /// Bounded accept-queue depth (503s beyond it).
        queue_depth: usize,
        /// Serve a transect root (every `sensor-<k>/` index) instead of
        /// a single-sensor index.
        all_sensors: bool,
        /// Restrict a transect root to these global sensor ids — how a
        /// cluster shard serves its ring slice (requires --all-sensors).
        sensors: Vec<u32>,
        /// Run as a warm replica of this primary (`http://host:port`):
        /// bootstrap `--index` as the replica root, tail the primary's
        /// WAL, and serve reads with role "replica".
        replica_of: Option<String>,
        /// Replica tail-poll interval in milliseconds.
        poll_ms: u64,
        /// Emit the final telemetry snapshot as JSON lines.
        json: bool,
        /// Self-observation sampling period in milliseconds.
        sample_ms: u64,
        /// Requests at least this slow are tail-sampled into the
        /// slow-trace ring.
        slow_ms: u64,
        /// Alert-rules TOML file (defaults to the built-in rules, which
        /// mirror `ci/alert-rules.toml`).
        alert_rules: Option<PathBuf>,
    },
    /// Run the cluster front-end: consistent-hash routing and
    /// scatter-gather over shard servers.
    Router {
        /// TCP port (0 picks an ephemeral port).
        port: u16,
        /// Worker threads.
        threads: usize,
        /// Bounded accept-queue depth.
        queue_depth: usize,
        /// One `PRIMARY[,REPLICA]` spec per shard, in ring order.
        shards: Vec<String>,
        /// Health-probe interval in milliseconds (failover latency).
        health_interval_ms: u64,
        /// Emit the final telemetry snapshot as JSON lines.
        json: bool,
    },
    /// One-process cluster quickstart (N shard servers + a router), or
    /// print the ring's sensor assignment with --print-plan.
    Cluster {
        /// Transect root directory.
        index: PathBuf,
        /// Number of shards to partition the sensors over.
        shards: usize,
        /// Print the sensor→shard assignment as JSON and exit.
        print_plan: bool,
        /// Router TCP port (shards always bind ephemeral ports).
        port: u16,
        /// Worker threads per shard server and for the router.
        threads: usize,
        /// Emit the final telemetry snapshot as JSON lines.
        json: bool,
    },
    /// Drive a running server with a closed-loop load generator.
    Loadgen {
        /// Base URL of the server (`http://host:port`).
        url: String,
        /// Concurrent closed-loop workers.
        concurrency: usize,
        /// Run duration in seconds.
        duration_secs: f64,
        /// "drop" or "jump".
        kind: String,
        /// Threshold V for the query mix.
        v: f64,
        /// Threshold T in hours for the query mix.
        t_hours: f64,
        /// p99 regression-guard file (JSON with `max_p99_ms`).
        guard: Option<PathBuf>,
    },
    /// Show a running server's standing alert rules and fired alerts.
    Alerts {
        /// Base URL of the server (`http://host:port`).
        url: String,
        /// Print the server's raw `/alerts` JSON instead of text.
        json: bool,
        /// Keep polling `/alerts?after=` and print each alert once as it
        /// fires, instead of dumping the current log and exiting.
        follow: bool,
        /// Resume the follow cursor from this sequence number.
        after: u64,
        /// Poll interval in milliseconds (follow mode).
        interval_ms: u64,
        /// Polls before exiting in follow mode (0 = until interrupted).
        iterations: u64,
    },
    /// Live terminal view of a running server's self-observed telemetry.
    Top {
        /// Base URL of the server (`http://host:port`).
        url: String,
        /// Refresh interval in milliseconds.
        interval_ms: u64,
        /// Frames to render before exiting (0 = until interrupted).
        iterations: u64,
    },
    /// Register, list, or remove standing queries on a running server.
    Subscribe {
        /// Base URL of the server (`http://host:port`).
        url: String,
        /// List existing subscriptions instead of registering one.
        list: bool,
        /// Remove this subscription instead of registering one.
        delete: Option<u64>,
        /// "drop" or "jump" (register mode).
        kind: String,
        /// Threshold V (negative for drops).
        v: f64,
        /// Threshold T in hours.
        t_hours: f64,
        /// Human-readable label stored with the subscription.
        label: String,
        /// Sensors the subscription listens to (empty = all).
        sensors: Vec<u32>,
        /// Print the server's raw JSON response instead of text.
        json: bool,
    },
    /// Follow a subscription's notification cursor on a running server.
    Watch {
        /// Base URL of the server (`http://host:port`).
        url: String,
        /// Subscription id to follow.
        sub: u64,
        /// Resume the cursor from this sequence number (0 replays the
        /// retained backlog first).
        after: u64,
        /// Poll interval in milliseconds.
        interval_ms: u64,
        /// Polls before exiting (0 = until interrupted).
        iterations: u64,
        /// Print one raw JSON object per notification instead of text.
        json: bool,
    },
}

/// Parses a `--sensors 1,2,3` comma list (None or blanks allowed).
fn parse_sensor_list(csv: Option<&str>) -> Result<Vec<u32>, String> {
    match csv {
        None => Ok(Vec::new()),
        Some(s) => s
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(|p| {
                p.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("--sensors: {p:?} is not a sensor id"))
            })
            .collect(),
    }
}

fn take_value<'a>(argv: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    argv.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let sub = argv.first().ok_or("missing subcommand")?.as_str();
    let mut csv: Option<PathBuf> = None;
    let mut index: Option<PathBuf> = None;
    let mut days: Option<u32> = None;
    let mut sensor = 12u32;
    let mut seed = 42u64;
    let mut raw = false;
    let mut epsilon = 0.2f64;
    let mut window_hours = 8.0f64;
    let mut no_smooth = false;
    let mut kind: Option<String> = None;
    let mut v: Option<f64> = None;
    let mut t_hours: Option<f64> = None;
    let mut plan = "scan".to_string();
    let mut refine: Option<PathBuf> = None;
    let mut limit = 50usize;
    let mut statement: Option<String> = None;
    let mut trace = false;
    let mut all_sensors = false;
    let mut json = false;
    let mut port = 7878u16;
    let mut threads = 8usize;
    let mut queue_depth = 64usize;
    let mut url: Option<String> = None;
    let mut concurrency = 8usize;
    let mut duration_secs = 5.0f64;
    let mut guard: Option<PathBuf> = None;
    let mut series = false;
    let mut sample_ms = 500u64;
    let mut slow_ms = 25u64;
    let mut alert_rules: Option<PathBuf> = None;
    let mut interval_ms = 1000u64;
    let mut iterations = 0u64;
    let mut follow = false;
    let mut after = 0u64;
    let mut label: Option<String> = None;
    let mut sensors: Option<String> = None;
    let mut sub_id: Option<u64> = None;
    let mut list = false;
    let mut delete: Option<u64> = None;
    let mut replica_of: Option<String> = None;
    let mut poll_ms = 200u64;
    let mut shard_specs: Vec<String> = Vec::new();
    let mut shard_count: Option<usize> = None;
    let mut health_interval_ms = 500u64;
    let mut print_plan = false;

    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--csv" => csv = Some(PathBuf::from(take_value(argv, &mut i, "--csv")?)),
            "--index" => index = Some(PathBuf::from(take_value(argv, &mut i, "--index")?)),
            "--days" => {
                days = Some(
                    take_value(argv, &mut i, "--days")?
                        .parse()
                        .map_err(|_| "--days must be an integer")?,
                )
            }
            "--sensor" => {
                sensor = take_value(argv, &mut i, "--sensor")?
                    .parse()
                    .map_err(|_| "--sensor must be an integer")?
            }
            "--seed" => {
                seed = take_value(argv, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?
            }
            "--raw" => raw = true,
            "--epsilon" => {
                epsilon = take_value(argv, &mut i, "--epsilon")?
                    .parse()
                    .map_err(|_| "--epsilon must be a number")?
            }
            "--window-hours" => {
                window_hours = take_value(argv, &mut i, "--window-hours")?
                    .parse()
                    .map_err(|_| "--window-hours must be a number")?
            }
            "--no-smooth" => no_smooth = true,
            "--kind" => kind = Some(take_value(argv, &mut i, "--kind")?.to_string()),
            "--v" => {
                v = Some(
                    take_value(argv, &mut i, "--v")?
                        .parse()
                        .map_err(|_| "--v must be a number")?,
                )
            }
            "--t-hours" => {
                t_hours = Some(
                    take_value(argv, &mut i, "--t-hours")?
                        .parse()
                        .map_err(|_| "--t-hours must be a number")?,
                )
            }
            "--plan" => plan = take_value(argv, &mut i, "--plan")?.to_string(),
            "--refine" => refine = Some(PathBuf::from(take_value(argv, &mut i, "--refine")?)),
            "--limit" => {
                limit = take_value(argv, &mut i, "--limit")?
                    .parse()
                    .map_err(|_| "--limit must be an integer")?
            }
            "--trace" => trace = true,
            "--all-sensors" => all_sensors = true,
            "--json" => json = true,
            "--port" => {
                port = take_value(argv, &mut i, "--port")?
                    .parse()
                    .map_err(|_| "--port must be an integer")?
            }
            "--threads" => {
                threads = take_value(argv, &mut i, "--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer")?
            }
            "--queue-depth" => {
                queue_depth = take_value(argv, &mut i, "--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth must be an integer")?
            }
            "--url" => url = Some(take_value(argv, &mut i, "--url")?.to_string()),
            "--concurrency" => {
                concurrency = take_value(argv, &mut i, "--concurrency")?
                    .parse()
                    .map_err(|_| "--concurrency must be an integer")?
            }
            "--duration-secs" => {
                duration_secs = take_value(argv, &mut i, "--duration-secs")?
                    .parse()
                    .map_err(|_| "--duration-secs must be a number")?
            }
            "--guard" => guard = Some(PathBuf::from(take_value(argv, &mut i, "--guard")?)),
            "--series" => series = true,
            "--sample-ms" => {
                sample_ms = take_value(argv, &mut i, "--sample-ms")?
                    .parse()
                    .map_err(|_| "--sample-ms must be an integer")?
            }
            "--slow-ms" => {
                slow_ms = take_value(argv, &mut i, "--slow-ms")?
                    .parse()
                    .map_err(|_| "--slow-ms must be an integer")?
            }
            "--alert-rules" => {
                alert_rules = Some(PathBuf::from(take_value(argv, &mut i, "--alert-rules")?))
            }
            "--interval-ms" => {
                interval_ms = take_value(argv, &mut i, "--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms must be an integer")?
            }
            "--iterations" => {
                iterations = take_value(argv, &mut i, "--iterations")?
                    .parse()
                    .map_err(|_| "--iterations must be an integer")?
            }
            "--follow" => follow = true,
            "--after" => {
                after = take_value(argv, &mut i, "--after")?
                    .parse()
                    .map_err(|_| "--after must be an integer")?
            }
            "--label" => label = Some(take_value(argv, &mut i, "--label")?.to_string()),
            "--sensors" => sensors = Some(take_value(argv, &mut i, "--sensors")?.to_string()),
            "--sub" => {
                sub_id = Some(
                    take_value(argv, &mut i, "--sub")?
                        .parse()
                        .map_err(|_| "--sub must be an integer")?,
                )
            }
            "--replica-of" => {
                replica_of = Some(take_value(argv, &mut i, "--replica-of")?.to_string())
            }
            "--poll-ms" => {
                poll_ms = take_value(argv, &mut i, "--poll-ms")?
                    .parse()
                    .map_err(|_| "--poll-ms must be an integer")?
            }
            "--shard" => shard_specs.push(take_value(argv, &mut i, "--shard")?.to_string()),
            "--shards" => {
                shard_count = Some(
                    take_value(argv, &mut i, "--shards")?
                        .parse()
                        .map_err(|_| "--shards must be an integer")?,
                )
            }
            "--health-interval-ms" => {
                health_interval_ms = take_value(argv, &mut i, "--health-interval-ms")?
                    .parse()
                    .map_err(|_| "--health-interval-ms must be an integer")?
            }
            "--print-plan" => print_plan = true,
            "--list" => list = true,
            "--delete" => {
                delete = Some(
                    take_value(argv, &mut i, "--delete")?
                        .parse()
                        .map_err(|_| "--delete must be a subscription id")?,
                )
            }
            other if !other.starts_with("--") && sub == "sql" && statement.is_none() => {
                statement = Some(other.to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }

    match sub {
        "generate" => Ok(Command::Generate {
            csv: csv.ok_or("generate needs --csv")?,
            days: days.ok_or("generate needs --days")?,
            sensor,
            seed,
            raw,
        }),
        "ingest" => Ok(Command::Ingest {
            index: index.ok_or("ingest needs --index")?,
            csv: csv.ok_or("ingest needs --csv")?,
            epsilon,
            window_hours,
            no_smooth,
        }),
        "query" => {
            let kind = kind.ok_or("query needs --kind drop|jump")?;
            if kind != "drop" && kind != "jump" {
                return Err("--kind must be drop or jump".into());
            }
            if plan != "scan" && plan != "index" {
                return Err("--plan must be scan or index".into());
            }
            if all_sensors && refine.is_some() {
                return Err("--refine needs a single sensor's raw CSV; \
                            it cannot be combined with --all-sensors"
                    .into());
            }
            if all_sensors && trace {
                return Err("--trace is per-sensor; \
                            it cannot be combined with --all-sensors"
                    .into());
            }
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            Ok(Command::Query {
                index: index.ok_or("query needs --index")?,
                kind,
                v: v.ok_or("query needs --v")?,
                t_hours: t_hours.ok_or("query needs --t-hours")?,
                plan,
                refine,
                limit,
                trace,
                all_sensors,
                threads,
            })
        }
        "stats" => Ok(Command::Stats {
            index: index.ok_or("stats needs --index")?,
            json,
            series,
        }),
        "recover" => Ok(Command::Recover {
            index: index.ok_or("recover needs --index")?,
            json,
        }),
        "metrics" => Ok(Command::Metrics {
            index: index.ok_or("metrics needs --index")?,
            json,
        }),
        "sql" => Ok(Command::Sql {
            index: index.ok_or("sql needs --index")?,
            statement: statement.ok_or("sql needs a statement argument")?,
        }),
        "serve" => {
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            if sample_ms == 0 {
                return Err("--sample-ms must be at least 1".into());
            }
            if poll_ms == 0 {
                return Err("--poll-ms must be at least 1".into());
            }
            let sensors = parse_sensor_list(sensors.as_deref())?;
            if !sensors.is_empty() && !all_sensors {
                return Err("--sensors restricts a transect root; add --all-sensors".into());
            }
            if replica_of.is_some() && (all_sensors || !sensors.is_empty()) {
                return Err("--replica-of mirrors whatever the primary serves; \
                            it cannot be combined with --all-sensors or --sensors"
                    .into());
            }
            Ok(Command::Serve {
                index: index.ok_or("serve needs --index")?,
                port,
                threads,
                queue_depth: queue_depth.max(1),
                all_sensors,
                sensors,
                replica_of,
                poll_ms,
                json,
                sample_ms,
                slow_ms,
                alert_rules,
            })
        }
        "router" => {
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            if health_interval_ms == 0 {
                return Err("--health-interval-ms must be at least 1".into());
            }
            if shard_specs.is_empty() {
                return Err("router needs at least one --shard PRIMARY[,REPLICA]".into());
            }
            Ok(Command::Router {
                port,
                threads,
                queue_depth: queue_depth.max(1),
                shards: shard_specs,
                health_interval_ms,
                json,
            })
        }
        "cluster" => {
            let shards = shard_count.ok_or("cluster needs --shards N")?;
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            Ok(Command::Cluster {
                index: index.ok_or("cluster needs --index")?,
                shards,
                print_plan,
                port,
                threads,
                json,
            })
        }
        "loadgen" => {
            let kind = kind.unwrap_or_else(|| "drop".to_string());
            if kind != "drop" && kind != "jump" {
                return Err("--kind must be drop or jump".into());
            }
            if concurrency == 0 {
                return Err("--concurrency must be at least 1".into());
            }
            if !(duration_secs.is_finite() && duration_secs > 0.0) {
                return Err("--duration-secs must be positive".into());
            }
            let v = v.unwrap_or(if kind == "drop" { -1.0 } else { 1.0 });
            if kind == "drop" && v >= 0.0 {
                return Err("--v must be negative for drop queries".into());
            }
            if kind == "jump" && v <= 0.0 {
                return Err("--v must be positive for jump queries".into());
            }
            Ok(Command::Loadgen {
                url: url.ok_or("loadgen needs --url")?,
                concurrency,
                duration_secs,
                kind,
                v,
                t_hours: t_hours.unwrap_or(1.0),
                guard,
            })
        }
        "alerts" => {
            if interval_ms == 0 {
                return Err("--interval-ms must be at least 1".into());
            }
            Ok(Command::Alerts {
                url: url.ok_or("alerts needs --url")?,
                json,
                follow,
                after,
                interval_ms,
                iterations,
            })
        }
        "top" => {
            if interval_ms == 0 {
                return Err("--interval-ms must be at least 1".into());
            }
            Ok(Command::Top {
                url: url.ok_or("top needs --url")?,
                interval_ms,
                iterations,
            })
        }
        "subscribe" => {
            let url = url.ok_or("subscribe needs --url")?;
            if list && delete.is_some() {
                return Err("--list and --delete are mutually exclusive".into());
            }
            if list || delete.is_some() {
                return Ok(Command::Subscribe {
                    url,
                    list,
                    delete,
                    kind: String::new(),
                    v: 0.0,
                    t_hours: 0.0,
                    label: String::new(),
                    sensors: Vec::new(),
                    json,
                });
            }
            let kind = kind.ok_or("subscribe needs --kind drop|jump (or --list / --delete)")?;
            if kind != "drop" && kind != "jump" {
                return Err("--kind must be drop or jump".into());
            }
            let v = v.ok_or("subscribe needs --v")?;
            if kind == "drop" && v >= 0.0 {
                return Err("--v must be negative for drop subscriptions".into());
            }
            if kind == "jump" && v <= 0.0 {
                return Err("--v must be positive for jump subscriptions".into());
            }
            let t_hours = t_hours.ok_or("subscribe needs --t-hours")?;
            if !(t_hours.is_finite() && t_hours > 0.0) {
                return Err("--t-hours must be positive".into());
            }
            let sensors = parse_sensor_list(sensors.as_deref())?;
            Ok(Command::Subscribe {
                url,
                list: false,
                delete: None,
                kind,
                v,
                t_hours,
                label: label.unwrap_or_default(),
                sensors,
                json,
            })
        }
        "watch" => {
            if interval_ms == 0 {
                return Err("--interval-ms must be at least 1".into());
            }
            Ok(Command::Watch {
                url: url.ok_or("watch needs --url")?,
                sub: sub_id.ok_or("watch needs --sub ID")?,
                after,
                interval_ms,
                iterations,
                json,
            })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_generate() {
        let c = parse(&argv("generate --csv out.csv --days 30 --sensor 3 --raw")).unwrap();
        assert_eq!(
            c,
            Command::Generate {
                csv: "out.csv".into(),
                days: 30,
                sensor: 3,
                seed: 42,
                raw: true,
            }
        );
    }

    #[test]
    fn parses_query_with_defaults() {
        let c = parse(&argv("query --index d --kind drop --v -3 --t-hours 1")).unwrap();
        match c {
            Command::Query {
                plan,
                limit,
                refine,
                trace,
                all_sensors,
                threads,
                ..
            } => {
                assert_eq!(plan, "scan");
                assert_eq!(limit, 50);
                assert!(refine.is_none());
                assert!(!trace);
                assert!(!all_sensors);
                assert_eq!(threads, 8);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_all_sensors_query() {
        match parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --all-sensors --threads 4",
        ))
        .unwrap()
        {
            Command::Query {
                all_sensors,
                threads,
                ..
            } => {
                assert!(all_sensors);
                assert_eq!(threads, 4);
            }
            _ => panic!(),
        }
        // Refinement needs one sensor's raw CSV; rejected with the fan-out.
        assert!(parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --all-sensors --refine raw.csv"
        ))
        .is_err());
        assert!(parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --threads 0"
        ))
        .is_err());
        match parse(&argv("serve --index d --all-sensors")).unwrap() {
            Command::Serve { all_sensors, .. } => assert!(all_sensors),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_trace_and_json_flags() {
        match parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --trace",
        ))
        .unwrap()
        {
            Command::Query { trace, .. } => assert!(trace),
            _ => panic!(),
        }
        match parse(&argv("stats --index d --json")).unwrap() {
            Command::Stats { json, .. } => assert!(json),
            _ => panic!(),
        }
        match parse(&argv("stats --index d")).unwrap() {
            Command::Stats { json, .. } => assert!(!json),
            _ => panic!(),
        }
        match parse(&argv("metrics --index d --json")).unwrap() {
            Command::Metrics { json, .. } => assert!(json),
            _ => panic!(),
        }
        assert!(parse(&argv("metrics")).is_err());
    }

    #[test]
    fn parses_recover() {
        assert_eq!(
            parse(&argv("recover --index d --json")).unwrap(),
            Command::Recover {
                index: "d".into(),
                json: true,
            }
        );
        match parse(&argv("recover --index d")).unwrap() {
            Command::Recover { json, .. } => assert!(!json),
            _ => panic!(),
        }
        assert!(parse(&argv("recover")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("generate --days 3")).is_err());
        assert!(parse(&argv("query --index d --kind sideways --v -3 --t-hours 1")).is_err());
        assert!(parse(&argv(
            "query --index d --kind drop --v -3 --t-hours 1 --plan turbo"
        ))
        .is_err());
        assert!(parse(&argv("ingest --index d --csv f --epsilon nope")).is_err());
    }

    #[test]
    fn parses_serve_with_defaults() {
        let c = parse(&argv("serve --index d")).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                index: "d".into(),
                port: 7878,
                threads: 8,
                queue_depth: 64,
                all_sensors: false,
                sensors: Vec::new(),
                replica_of: None,
                poll_ms: 200,
                json: false,
                sample_ms: 500,
                slow_ms: 25,
                alert_rules: None,
            }
        );
        let c = parse(&argv(
            "serve --index d --port 0 --threads 2 --queue-depth 4 --json \
             --sample-ms 100 --slow-ms 5 --alert-rules ci/alert-rules.toml",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                index: "d".into(),
                port: 0,
                threads: 2,
                queue_depth: 4,
                all_sensors: false,
                sensors: Vec::new(),
                replica_of: None,
                poll_ms: 200,
                json: true,
                sample_ms: 100,
                slow_ms: 5,
                alert_rules: Some("ci/alert-rules.toml".into()),
            }
        );
        assert!(parse(&argv("serve")).is_err());
        assert!(parse(&argv("serve --index d --threads 0")).is_err());
        assert!(parse(&argv("serve --index d --sample-ms 0")).is_err());
    }

    #[test]
    fn parses_shard_serve() {
        match parse(&argv("serve --index d --all-sensors --sensors 3,7,11")).unwrap() {
            Command::Serve {
                all_sensors,
                sensors,
                ..
            } => {
                assert!(all_sensors);
                assert_eq!(sensors, vec![3, 7, 11]);
            }
            _ => panic!(),
        }
        // A sensor slice only makes sense over a transect root.
        assert!(parse(&argv("serve --index d --sensors 1,2")).is_err());
        assert!(parse(&argv("serve --index d --all-sensors --sensors x")).is_err());
    }

    #[test]
    fn parses_replica_serve() {
        match parse(&argv(
            "serve --index r --replica-of http://h:1 --poll-ms 50",
        ))
        .unwrap()
        {
            Command::Serve {
                replica_of,
                poll_ms,
                ..
            } => {
                assert_eq!(replica_of.as_deref(), Some("http://h:1"));
                assert_eq!(poll_ms, 50);
            }
            _ => panic!(),
        }
        // A replica mirrors the primary's sensor set; slicing it is a
        // contradiction.
        assert!(parse(&argv("serve --index r --replica-of u --all-sensors")).is_err());
        assert!(parse(&argv("serve --index r --replica-of u --sensors 1")).is_err());
        assert!(parse(&argv("serve --index r --replica-of u --poll-ms 0")).is_err());
    }

    #[test]
    fn parses_router() {
        assert_eq!(
            parse(&argv(
                "router --shard 127.0.0.1:7001,127.0.0.1:8001 --shard 127.0.0.1:7002 \
                 --port 7900 --health-interval-ms 100 --json"
            ))
            .unwrap(),
            Command::Router {
                port: 7900,
                threads: 8,
                queue_depth: 64,
                shards: vec![
                    "127.0.0.1:7001,127.0.0.1:8001".into(),
                    "127.0.0.1:7002".into(),
                ],
                health_interval_ms: 100,
                json: true,
            }
        );
        assert!(parse(&argv("router")).is_err(), "needs at least one shard");
        assert!(parse(&argv("router --shard h:1 --health-interval-ms 0")).is_err());
        assert!(parse(&argv("router --shard h:1 --threads 0")).is_err());
    }

    #[test]
    fn parses_cluster() {
        assert_eq!(
            parse(&argv("cluster --index d --shards 4 --port 7900")).unwrap(),
            Command::Cluster {
                index: "d".into(),
                shards: 4,
                print_plan: false,
                port: 7900,
                threads: 8,
                json: false,
            }
        );
        match parse(&argv("cluster --index d --shards 2 --print-plan")).unwrap() {
            Command::Cluster {
                print_plan, shards, ..
            } => {
                assert!(print_plan);
                assert_eq!(shards, 2);
            }
            _ => panic!(),
        }
        assert!(parse(&argv("cluster --index d")).is_err(), "needs --shards");
        assert!(parse(&argv("cluster --shards 2")).is_err(), "needs --index");
        assert!(parse(&argv("cluster --index d --shards 0")).is_err());
    }

    #[test]
    fn parses_stats_series_flag() {
        match parse(&argv("stats --index d --series --json")).unwrap() {
            Command::Stats { json, series, .. } => {
                assert!(json);
                assert!(series);
            }
            _ => panic!(),
        }
        match parse(&argv("stats --index d")).unwrap() {
            Command::Stats { series, .. } => assert!(!series),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_alerts_and_top() {
        assert_eq!(
            parse(&argv("alerts --url http://h:1 --json")).unwrap(),
            Command::Alerts {
                url: "http://h:1".into(),
                json: true,
                follow: false,
                after: 0,
                interval_ms: 1000,
                iterations: 0,
            }
        );
        assert_eq!(
            parse(&argv(
                "alerts --url http://h:1 --follow --after 7 --interval-ms 50 --iterations 2"
            ))
            .unwrap(),
            Command::Alerts {
                url: "http://h:1".into(),
                json: false,
                follow: true,
                after: 7,
                interval_ms: 50,
                iterations: 2,
            }
        );
        assert!(parse(&argv("alerts")).is_err());
        assert!(parse(&argv("alerts --url u --follow --interval-ms 0")).is_err());
        assert_eq!(
            parse(&argv("top --url http://h:1")).unwrap(),
            Command::Top {
                url: "http://h:1".into(),
                interval_ms: 1000,
                iterations: 0,
            }
        );
        assert_eq!(
            parse(&argv(
                "top --url http://h:1 --interval-ms 50 --iterations 3"
            ))
            .unwrap(),
            Command::Top {
                url: "http://h:1".into(),
                interval_ms: 50,
                iterations: 3,
            }
        );
        assert!(parse(&argv("top")).is_err());
        assert!(parse(&argv("top --url u --interval-ms 0")).is_err());
    }

    #[test]
    fn parses_loadgen_with_defaults() {
        let c = parse(&argv("loadgen --url http://127.0.0.1:7878")).unwrap();
        assert_eq!(
            c,
            Command::Loadgen {
                url: "http://127.0.0.1:7878".into(),
                concurrency: 8,
                duration_secs: 5.0,
                kind: "drop".into(),
                v: -1.0,
                t_hours: 1.0,
                guard: None,
            }
        );
        let c = parse(&argv(
            "loadgen --url http://h:1 --concurrency 2 --duration-secs 0.5 \
             --kind jump --v 2 --t-hours 0.5 --guard ci/serving-guard.json",
        ))
        .unwrap();
        match c {
            Command::Loadgen { kind, v, guard, .. } => {
                assert_eq!(kind, "jump");
                assert_eq!(v, 2.0);
                assert_eq!(guard, Some("ci/serving-guard.json".into()));
            }
            _ => panic!(),
        }
        assert!(parse(&argv("loadgen")).is_err());
        assert!(parse(&argv("loadgen --url u --kind drop --v 3")).is_err());
        assert!(parse(&argv("loadgen --url u --duration-secs -1")).is_err());
    }

    #[test]
    fn parses_subscribe_and_watch() {
        assert_eq!(
            parse(&argv(
                "subscribe --url http://h:1 --kind drop --v -2 --t-hours 1.5 \
                 --label coolant --sensors 3,7,11 --json"
            ))
            .unwrap(),
            Command::Subscribe {
                url: "http://h:1".into(),
                list: false,
                delete: None,
                kind: "drop".into(),
                v: -2.0,
                t_hours: 1.5,
                label: "coolant".into(),
                sensors: vec![3, 7, 11],
                json: true,
            }
        );
        match parse(&argv("subscribe --url u --list")).unwrap() {
            Command::Subscribe { list, delete, .. } => {
                assert!(list);
                assert!(delete.is_none());
            }
            _ => panic!(),
        }
        match parse(&argv("subscribe --url u --delete 9")).unwrap() {
            Command::Subscribe { list, delete, .. } => {
                assert!(!list);
                assert_eq!(delete, Some(9));
            }
            _ => panic!(),
        }
        // Register mode validates the region like `query` does.
        assert!(parse(&argv("subscribe --url u")).is_err());
        assert!(parse(&argv("subscribe --url u --list --delete 1")).is_err());
        assert!(parse(&argv("subscribe --url u --kind drop --v 2 --t-hours 1")).is_err());
        assert!(parse(&argv("subscribe --url u --kind jump --v -2 --t-hours 1")).is_err());
        assert!(parse(&argv("subscribe --url u --kind drop --v -2 --t-hours 0")).is_err());
        assert!(parse(&argv(
            "subscribe --url u --kind drop --v -2 --t-hours 1 --sensors x"
        ))
        .is_err());

        assert_eq!(
            parse(&argv(
                "watch --url http://h:1 --sub 4 --after 10 --iterations 3"
            ))
            .unwrap(),
            Command::Watch {
                url: "http://h:1".into(),
                sub: 4,
                after: 10,
                interval_ms: 1000,
                iterations: 3,
                json: false,
            }
        );
        assert!(parse(&argv("watch --url u")).is_err());
        assert!(parse(&argv("watch --url u --sub 1 --interval-ms 0")).is_err());
    }

    #[test]
    fn parses_sql_statement() {
        let args = vec![
            "sql".to_string(),
            "--index".to_string(),
            "d".to_string(),
            "SELECT COUNT(*) FROM drop1".to_string(),
        ];
        let c = parse(&args).unwrap();
        match c {
            Command::Sql { statement, .. } => {
                assert!(statement.starts_with("SELECT"));
            }
            _ => panic!(),
        }
    }
}
