#![warn(missing_docs)]

//! **segdiff-lint** — the workspace invariant checker.
//!
//! The concurrent, crash-safe layers grown in PRs 1–3 rely on
//! invariants the compiler cannot see: lock acquisition order across
//! the striped buffer pool and the WAL, WAL-before-data call
//! discipline, a hand-maintained metric namespace, panic-free worker
//! loops. In the spirit of the paper's own conservative guarantees
//! (SegDiff's "no false negatives, bounded false positives",
//! Theorem 1), this crate enforces those invariants as named,
//! individually suppressable rules over a lightweight Rust lexer — no
//! rustc plumbing, no external dependencies:
//!
//! | rule | invariant |
//! |------|-----------|
//! | L0 | `// lint: allow(…)` suppressions name known rules and carry a reason |
//! | L1 | no `.unwrap()`/`.expect()`/`panic!`/`unimplemented!`/`todo!` in production paths |
//! | L2 | every `unsafe` is immediately preceded by `// SAFETY:` |
//! | L3 | lock order follows `ci/lock-order.toml` |
//! | L4 | metric names round-trip through `crates/obs/src/names.rs` (and the README table) |
//! | L5 | no `let _ =` result discards in `pagestore`/`core` |
//!
//! Run as `cargo run -p lint` (binary `segdiff-lint`); it emits
//! rustc-style `file:line:col` diagnostics (or `--format json` for CI
//! artifacts) and exits nonzero on any violation.

pub mod config;
pub mod context;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod toml;

use config::{LockOrder, LOCK_ORDER_PATH, NAMES_RS_PATH};
use context::FileCtx;
use diag::{Diagnostic, Rule};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// What to check and where.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root.
    pub root: PathBuf,
    /// Enabled rules (default: all).
    pub rules: BTreeSet<Rule>,
}

impl Options {
    /// All rules at the given root.
    pub fn new(root: PathBuf) -> Options {
        Options {
            root,
            rules: Rule::ALL.into_iter().collect(),
        }
    }
}

/// A fatal error (I/O, config) as opposed to lint findings.
#[derive(Debug)]
pub struct Fatal(pub String);

impl std::fmt::Display for Fatal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runs every enabled rule over the workspace and returns the sorted
/// findings.
pub fn run(opts: &Options) -> Result<Vec<Diagnostic>, Fatal> {
    let files = workspace_files(&opts.root)?;
    let lock_order = if opts.rules.contains(&Rule::L3) {
        let path = opts.root.join(LOCK_ORDER_PATH);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| Fatal(format!("cannot read {}: {e}", path.display())))?;
        Some(LockOrder::parse(&src).map_err(|e| Fatal(format!("{LOCK_ORDER_PATH}: {e}")))?)
    } else {
        None
    };

    let mut diags = Vec::new();
    let mut collected = rules::names::Collected::default();
    for rel in &files {
        let abs = opts.root.join(rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| Fatal(format!("cannot read {}: {e}", abs.display())))?;
        let ctx = FileCtx::new(rel, &src);
        if opts.rules.contains(&Rule::L0) {
            diags.extend(ctx.audit_suppressions());
        }
        if opts.rules.contains(&Rule::L1) {
            diags.extend(rules::panics::check(&ctx));
        }
        if opts.rules.contains(&Rule::L2) {
            diags.extend(rules::safety::check(&ctx));
        }
        if let Some(order) = &lock_order {
            diags.extend(rules::locks::check(&ctx, order));
        }
        if opts.rules.contains(&Rule::L4) {
            rules::names::collect(&ctx, &mut collected);
        }
        if opts.rules.contains(&Rule::L5) {
            diags.extend(rules::discard::check(&ctx));
        }
    }

    if opts.rules.contains(&Rule::L4) {
        let registry = load_registry(&opts.root)?;
        let readme = std::fs::read_to_string(opts.root.join("README.md")).ok();
        diags.extend(rules::names::reconcile(
            &collected,
            &registry,
            readme.as_deref(),
        ));
    }

    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(diags)
}

/// Parses the checked-in metric registry.
pub fn load_registry(root: &Path) -> Result<Vec<rules::names::RegistryEntry>, Fatal> {
    let path = root.join(NAMES_RS_PATH);
    let src = std::fs::read_to_string(&path)
        .map_err(|e| Fatal(format!("cannot read {}: {e}", path.display())))?;
    let registry = rules::names::parse_registry(&src);
    if registry.is_empty() {
        return Err(Fatal(format!(
            "{NAMES_RS_PATH}: no MetricDef entries found"
        )));
    }
    Ok(registry)
}

/// Every `.rs` file the lint walks: `crates/*/src/**` plus the facade
/// crate's `src/**`, workspace-relative with forward slashes, sorted.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, Fatal> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| Fatal(format!("cannot read {}: {e}", crates_dir.display())))?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk(&src, root, &mut out)?;
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        walk(&facade, root, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), Fatal> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| Fatal(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Finds the workspace root: walks up from `start` looking for the
/// lock-order declaration next to a `Cargo.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join(LOCK_ORDER_PATH).is_file() && d.join("Cargo.toml").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
