//! Rule L3: lock acquisitions respect the partial order declared in
//! `ci/lock-order.toml`.
//!
//! The pass is lexical, not type-aware: an *acquisition site* is a
//! zero-argument `.lock()` / `.read()` / `.write()` call (the
//! zero-argument requirement filters out `io::Read::read` and friends,
//! which always take a buffer). The receiver path — `self.shards[si]`
//! → `self.shards[]` — is matched against the class patterns from the
//! config, scoped per file so short names like `s` only mean "a pool
//! shard" inside `buffer.rs`.
//!
//! Guard lifetime model (deliberately conservative):
//! * `let g = <acquisition>;` — the guard lives until its enclosing
//!   block closes or `drop(g)` / `std::mem::drop(g)` is seen;
//! * any other acquisition (chained, passed to a call, match/if-let
//!   scrutinee) — the guard lives until the next `;` at the same brace
//!   depth, which over-approximates Rust's temporary lifetime rules.
//!
//! A violation is: acquiring class B while a live guard holds class A
//! with `order(A) > order(B)`, or re-acquiring the same class while a
//! guard of it is live (same receiver path always; different paths
//! unless the class is declared `reentrant = true`).

use crate::config::LockOrder;
use crate::context::FileCtx;
use crate::diag::{Diagnostic, Rule};
use crate::lexer::TokKind;

/// Runs L3 over one file with the given declaration.
pub fn check(ctx: &FileCtx, order: &LockOrder) -> Vec<Diagnostic> {
    if ctx.test_file {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &ctx.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text(ctx.src) == "fn" {
            // Find the body: the first `{` before any `;` (a `;` first
            // means a bodiless trait/extern declaration).
            let mut j = i + 1;
            let mut body = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct(b'{') => {
                        body = Some(j);
                        break;
                    }
                    TokKind::Punct(b';') => break,
                    _ => j += 1,
                }
            }
            if let (Some(open), Some(close)) = (body, body.and_then(|b| ctx.close_of(b))) {
                check_body(ctx, order, open, close, &mut out);
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

struct Guard {
    class_rank: usize,
    class_name: String,
    path: String,
    /// `Some(name)` for `let name = …;` bindings (scope-lived),
    /// `None` for temporaries (statement-lived).
    binding: Option<String>,
    /// Brace depth at acquisition (relative to function body).
    depth: usize,
    line: u32,
}

/// Walks one function body tracking live guards.
fn check_body(
    ctx: &FileCtx,
    order: &LockOrder,
    open: usize,
    close: usize,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &ctx.toks;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i <= close {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                // Block end drops let-bound guards created inside it
                // (and any temporary that leaked this far).
                guards.retain(|g| g.depth <= depth);
            }
            TokKind::Punct(b';') => {
                // Statement end drops temporaries at this depth.
                guards.retain(|g| g.binding.is_some() || g.depth != depth);
            }
            // drop(name) kills the named guard.
            TokKind::Ident
                if t.text(ctx.src) == "drop"
                    && toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct(b'('))
                    && toks.get(i + 2).map(|n| n.kind) == Some(TokKind::Ident)
                    && toks.get(i + 3).map(|n| n.kind) == Some(TokKind::Punct(b')')) =>
            {
                let name = toks[i + 2].text(ctx.src);
                guards.retain(|g| g.binding.as_deref() != Some(name));
            }
            TokKind::Ident
                if matches!(t.text(ctx.src), "lock" | "read" | "write")
                    && i > 0
                    && toks[i - 1].kind == TokKind::Punct(b'.')
                    && toks.get(i + 1).map(|n| n.kind) == Some(TokKind::Punct(b'('))
                    && toks.get(i + 2).map(|n| n.kind) == Some(TokKind::Punct(b')')) =>
            {
                if let Some(path) = receiver_path(ctx, i - 1) {
                    if let Some(class) = order.classify(&ctx.path, &path) {
                        if !ctx.in_test(t.line) && !ctx.suppressed(Rule::L3, t.line) {
                            for g in &guards {
                                let bad_order = g.class_rank > class.rank;
                                let double = g.class_name == class.name
                                    && (g.path == path || !class.reentrant);
                                if bad_order || double {
                                    let what = if bad_order {
                                        format!(
                                            "acquires `{}` while holding `{}` (declared order: {} before {})",
                                            class.name, g.class_name, class.name, g.class_name
                                        )
                                    } else {
                                        format!(
                                            "re-acquires `{}` (guard from line {} still live) — self-deadlock",
                                            class.name, g.line
                                        )
                                    };
                                    out.push(ctx.diag(
                                        Rule::L3,
                                        t.line,
                                        t.col,
                                        what,
                                        "release the earlier guard first, fix ci/lock-order.toml, or justify with `// lint: allow(L3) <reason>`"
                                            .into(),
                                    ));
                                }
                            }
                        }
                        guards.push(Guard {
                            class_rank: class.rank,
                            class_name: class.name.clone(),
                            path,
                            binding: binding_of(ctx, i),
                            depth,
                            line: t.line,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Reconstructs the receiver path left of the `.` at token `dot`:
/// identifiers and field accesses, with index expressions collapsed to
/// `[]`. Returns `None` when the receiver is not a simple path (e.g. a
/// call result).
fn receiver_path(ctx: &FileCtx, dot: usize) -> Option<String> {
    let toks = &ctx.toks;
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot; // points at the `.`
    loop {
        if i == 0 {
            break;
        }
        let prev = &toks[i - 1];
        match prev.kind {
            TokKind::Ident => {
                parts.push(prev.text(ctx.src).to_string());
                i -= 1;
                // A further `.` continues the path.
                if i > 0 && toks[i - 1].kind == TokKind::Punct(b'.') {
                    i -= 1;
                    continue;
                }
                break;
            }
            TokKind::Punct(b']') => {
                // Collapse the index expression: scan back to the
                // matching `[`.
                let mut depth = 1usize;
                let mut j = i - 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match toks[j].kind {
                        TokKind::Punct(b']') => depth += 1,
                        TokKind::Punct(b'[') => depth -= 1,
                        _ => {}
                    }
                }
                if depth != 0 {
                    return None;
                }
                parts.push("[]".to_string());
                i = j;
            }
            _ => break,
        }
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    // Join, attaching `[]` to the preceding segment.
    let mut path = String::new();
    for p in parts {
        if p == "[]" {
            path.push_str("[]");
        } else {
            if !path.is_empty() {
                path.push('.');
            }
            path.push_str(&p);
        }
    }
    Some(path)
}

/// `Some(name)` when the acquisition at token `i` (the `lock` ident)
/// is the whole right-hand side of a `let name = …;` statement — i.e.
/// the `()` is directly followed by `;` or `.unwrap…;`-free chain end.
fn binding_of(ctx: &FileCtx, i: usize) -> Option<String> {
    let toks = &ctx.toks;
    // After `lock ( )` the next token must end the statement for the
    // guard to be bound as-is; any chaining makes it a temporary.
    if toks.get(i + 3).map(|t| t.kind) != Some(TokKind::Punct(b';')) {
        return None;
    }
    // Scan back to the statement start: the nearest `;`, `{` or `}`.
    let mut j = i;
    while j > 0
        && !matches!(
            toks[j - 1].kind,
            TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}')
        )
    {
        j -= 1;
    }
    // Expect `let [mut] name =`.
    if toks.get(j).map(|t| (t.kind, t.text(ctx.src))) != Some((TokKind::Ident, "let")) {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k).map(|t| (t.kind, t.text(ctx.src))) == Some((TokKind::Ident, "mut")) {
        k += 1;
    }
    let name = toks.get(k)?;
    if name.kind == TokKind::Ident && toks.get(k + 1).map(|t| t.kind) == Some(TokKind::Punct(b'='))
    {
        Some(name.text(ctx.src).to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LockOrder;

    const ORDER: &str = r#"
order = ["files", "shard", "file", "wal"]

[[class]]
name = "files"
paths = ["*.files"]

[[class]]
name = "shard"
paths = ["*.shards[]", "s"]

[[class]]
name = "file"
paths = ["files[].file", "*.file"]

[[class]]
name = "wal"
paths = ["*.wal_inner"]
"#;

    fn run(src: &str) -> Vec<Diagnostic> {
        let order = LockOrder::parse(ORDER).unwrap();
        check(&FileCtx::new("crates/pagestore/src/buffer.rs", src), &order)
    }

    #[test]
    fn legal_nesting_passes() {
        let src = r#"
fn flush(&self) {
    let files = self.files.read();
    let mut shard = self.shards[si].lock();
    let mut file = files[fid].file.lock();
    file.write_page();
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn inverted_order_flagged() {
        let src = r#"
fn bad(&self) {
    let mut file = files[fid].file.lock();
    let files = self.files.read();
}
"#;
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(d[0]
            .message
            .contains("acquires `files` while holding `file`"));
    }

    #[test]
    fn double_lock_flagged() {
        let src = "fn bad(&self) {\n let a = self.shards[i].lock();\n let b = self.shards[j].lock();\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("re-acquires `shard`"));
    }

    #[test]
    fn scope_exit_releases() {
        let src = r#"
fn ok(&self) {
    {
        let mut file = files[fid].file.lock();
    }
    let files = self.files.read();
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn explicit_drop_releases() {
        let src = r#"
fn ok(&self) {
    let mut file = files[fid].file.lock();
    drop(file);
    let files = self.files.read();
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        let src = r#"
fn ok(&self) {
    let n = self.files.read().len();
    let pages = files[fid].file.lock().num_pages();
    let files = self.files.read();
}
"#;
        // Each statement's temporary guard dies at its `;`, so the
        // final read() sees nothing held.
        assert!(run(src).is_empty());
    }

    #[test]
    fn chained_temporaries_nest_within_statement() {
        // files.read() is still live while file.lock() happens inside
        // one statement — legal order, no diagnostic.
        let src = "fn ok(&self) {\n let p = self.files.read()[fid].file.lock();\n}\n";
        assert!(run(src).is_empty());
        // The inverse nesting inside one statement is flagged.
        let bad = "fn bad(&self) {\n let p = x.file.lock().files.read();\n}\n";
        // receiver of read() is `lock().files` → not a simple path, so
        // it is not classified; construct a real inversion instead:
        let bad2 =
            "fn bad(&self) {\n let w = self.wal_inner.lock().probe(self.shards[i].lock());\n}\n";
        assert!(run(bad).is_empty());
        let d = run(bad2);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("while holding `wal`"));
    }

    #[test]
    fn io_read_write_with_args_ignored() {
        let src = "fn ok(&self) {\n let n = stream.read(&mut buf);\n stream.write(&buf);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn suppression_honored() {
        let src = "fn f(&self) {\n let a = files[fid].file.lock();\n let b = self.files.read(); // lint: allow(L3) startup only, single-threaded\n}\n";
        assert!(run(src).is_empty());
    }
}
