//! Cold Air Drainage event scheduling and shape.
//!
//! A CAD event is "a sharp drop in temperature in early mornings" (paper §1);
//! when the collaboration started the biologists' working definition was a
//! drop of no less than 3 °C within one hour. We model an event as a rapid
//! ramp down of depth `depth` over `drop_duration`, followed by a slow
//! partial recovery — cold air pooling in the canyon and then mixing out
//! after sunrise.

use crate::rng::{normal, sample_exp};
use crate::{DAY, HOUR, MINUTE};
use rand::{Rng, RngExt};

/// One cold-air-drainage event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CadEvent {
    /// Time the drop starts (seconds from the recording origin).
    pub start: f64,
    /// Length of the drop phase in seconds (paper regime: tens of minutes).
    pub drop_duration: f64,
    /// Total temperature drop in degree Celsius (positive number).
    pub depth: f64,
    /// Length of the recovery phase in seconds.
    pub recovery_duration: f64,
    /// Fraction of the depth recovered by the end of the recovery phase.
    pub recovery_fraction: f64,
}

impl CadEvent {
    /// The event's additive temperature offset at time `t` (non-positive).
    pub fn offset(&self, t: f64) -> f64 {
        let dt = t - self.start;
        if dt <= 0.0 {
            return 0.0;
        }
        if dt < self.drop_duration {
            // Smoothstep ramp: steep in the middle, C1 at both ends.
            let x = dt / self.drop_duration;
            let s = x * x * (3.0 - 2.0 * x);
            return -self.depth * s;
        }
        let dr = dt - self.drop_duration;
        if dr < self.recovery_duration {
            let x = dr / self.recovery_duration;
            let s = x * x * (3.0 - 2.0 * x);
            return -self.depth * (1.0 - self.recovery_fraction * s);
        }
        -self.depth * (1.0 - self.recovery_fraction)
    }

    /// Time after which the event no longer changes, i.e. `offset` is
    /// constant for `t >= end`.
    pub fn end(&self) -> f64 {
        self.start + self.drop_duration + self.recovery_duration
    }
}

/// A schedule of CAD events over the recording period for one sensor.
#[derive(Debug, Clone, Default)]
pub struct EventSchedule {
    events: Vec<CadEvent>,
}

impl EventSchedule {
    /// Generates a schedule for `days` days.
    ///
    /// Events happen in the early morning (03:00–07:00). The per-day
    /// probability is `winter_daily_prob` at the coldest time of year and
    /// `summer_daily_prob` at the warmest; `depth_scale` scales the drop
    /// depth (used to express the sensor's position in the canyon: deeper
    /// drops near the canyon bottom).
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        days: u32,
        winter_daily_prob: f64,
        summer_daily_prob: f64,
        depth_scale: f64,
        coldest_day: f64,
    ) -> Self {
        let mut events = Vec::new();
        for day in 0..days {
            let season =
                0.5 - 0.5 * (std::f64::consts::TAU * (day as f64 - coldest_day) / 365.0).cos();
            let p = winter_daily_prob + season * (summer_daily_prob - winter_daily_prob);
            if rng.random::<f64>() >= p {
                continue;
            }
            let start_hour = 3.0 + 4.0 * rng.random::<f64>();
            let drop_minutes = (20.0 + 40.0 * rng.random::<f64>()).clamp(15.0, 70.0);
            // Depth: mostly 3–8 °C, occasionally deeper — the real data set
            // contains drops down to −35 °C over longer spans (paper §6.1).
            let depth =
                (3.0 + sample_exp(rng, 2.0) + normal(rng, 0.0, 0.5)).clamp(2.0, 30.0) * depth_scale;
            let recovery_hours = 1.5 + 2.5 * rng.random::<f64>();
            events.push(CadEvent {
                start: day as f64 * DAY + start_hour * HOUR,
                drop_duration: drop_minutes * MINUTE,
                depth,
                recovery_duration: recovery_hours * HOUR,
                recovery_fraction: 0.5 + 0.4 * rng.random::<f64>(),
            });
        }
        Self { events }
    }

    /// The events in chronological order.
    pub fn events(&self) -> &[CadEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sum of all event offsets at time `t`.
    ///
    /// Events are sorted by start time, so only the suffix of recent events
    /// can contribute; we scan backwards and stop once starts are more than
    /// a day older than `t` minus the longest possible event extent.
    pub fn offset(&self, t: f64) -> f64 {
        let mut total = 0.0;
        for e in self.events.iter().rev() {
            if e.start > t {
                continue;
            }
            total += e.offset(t);
            if t - e.start > 2.0 * DAY {
                break;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn event() -> CadEvent {
        CadEvent {
            start: 1000.0,
            drop_duration: 1800.0,
            depth: 4.0,
            recovery_duration: 7200.0,
            recovery_fraction: 0.5,
        }
    }

    #[test]
    fn offset_zero_before_start() {
        let e = event();
        assert_eq!(e.offset(0.0), 0.0);
        assert_eq!(e.offset(1000.0), 0.0);
    }

    #[test]
    fn offset_reaches_full_depth() {
        let e = event();
        let at_bottom = e.offset(1000.0 + 1800.0);
        assert!((at_bottom + 4.0).abs() < 1e-9, "offset {at_bottom}");
    }

    #[test]
    fn offset_monotone_during_drop() {
        let e = event();
        let mut prev = 0.0;
        for i in 1..=100 {
            let t = 1000.0 + 1800.0 * i as f64 / 100.0;
            let o = e.offset(t);
            assert!(o <= prev + 1e-12, "drop must be monotone at {t}");
            prev = o;
        }
    }

    #[test]
    fn offset_recovers_partially() {
        let e = event();
        let after = e.offset(e.end() + 10.0);
        assert!((after + 2.0).abs() < 1e-9, "half recovered: {after}");
    }

    #[test]
    fn schedule_rate_responds_to_season() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = EventSchedule::generate(&mut rng, 365, 0.8, 0.1, 1.0, 45.0);
        // Expect roughly 365 * mean(p) events; mean p ≈ 0.45.
        assert!(s.len() > 100 && s.len() < 250, "got {}", s.len());
        // Winter half (days near coldest_day) should contain more events.
        let winter = s
            .events()
            .iter()
            .filter(|e| {
                let d = (e.start / DAY - 45.0).rem_euclid(365.0);
                !(91.0..=274.0).contains(&d)
            })
            .count();
        assert!(
            winter * 2 > s.len(),
            "winter events {winter} of {}",
            s.len()
        );
    }

    #[test]
    fn schedule_event_times_early_morning() {
        let mut rng = StdRng::seed_from_u64(10);
        let s = EventSchedule::generate(&mut rng, 200, 0.9, 0.9, 1.0, 45.0);
        for e in s.events() {
            let hour = (e.start % DAY) / HOUR;
            assert!((3.0..7.0).contains(&hour), "start hour {hour}");
            assert!(e.depth >= 2.0);
        }
    }

    #[test]
    fn schedule_offset_sums_overlapping_events() {
        let s = EventSchedule {
            events: vec![
                CadEvent {
                    start: 0.0,
                    ..event()
                },
                CadEvent {
                    start: 900.0,
                    ..event()
                },
            ],
        };
        let t = 1800.0;
        let expected = s.events[0].offset(t) + s.events[1].offset(t);
        assert!((s.offset(t) - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_is_silent() {
        let s = EventSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.offset(123.0), 0.0);
    }
}
