//! Ablation studies over design choices called out in DESIGN.md:
//!
//! * the segmentation algorithm is interchangeable — all three satisfy
//!   Lemma 1, so Theorem 1's completeness holds over any of them;
//! * the reduced 1–3 corner storage returns exactly the pairs that full
//!   four-corner parallelogram intersection would return (the corner
//!   reduction of §4.3.1 loses nothing).

use segdiff_repro::featurespace::Parallelogram;
use segdiff_repro::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("segdiff-abl-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn walk_series(n: usize, seed: u64) -> TimeSeries {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut v = 5.0;
    let mut s = TimeSeries::with_capacity(n);
    for _ in 0..n {
        t += 300.0;
        v += (rng.random::<f64>() - 0.5) * 1.5;
        s.push(t, v);
    }
    s
}

#[test]
fn all_segmenters_preserve_completeness() {
    let series = walk_series(400, 11);
    let region = QueryRegion::drop(1.0 * HOUR, -1.5);
    let events = oracle::true_events(&series, &region);
    assert!(!events.is_empty());
    for (i, alg) in Segmenter::all().iter().enumerate() {
        let dir = tmpdir(&format!("seg-{i}"));
        let mut idx = SegDiffIndex::create(
            &dir,
            SegDiffConfig::default()
                .with_epsilon(0.2)
                .with_window(4.0 * HOUR),
        )
        .unwrap();
        let pla = alg.segment(&series, 0.2);
        idx.ingest_pla(&pla, series.len() as u64).unwrap();
        idx.finish().unwrap();
        let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        assert_eq!(
            oracle::find_missed_event(&events, &results),
            None,
            "{} missed an event",
            alg.name()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn offline_segmenters_compress_at_least_as_well() {
    let series = walk_series(3000, 12);
    let sw = Segmenter::SlidingWindow
        .segment(&series, 0.4)
        .num_segments();
    let bu = Segmenter::BottomUp.segment(&series, 0.4).num_segments();
    assert!(
        bu as f64 <= sw as f64 * 1.15,
        "bottom-up ({bu}) should not be much worse than sliding window ({sw})"
    );
}

/// Reference implementation: full four-corner parallelogram intersection
/// for every retained pair, bypassing the corner reduction entirely.
fn full_parallelogram_results(
    series: &TimeSeries,
    eps: f64,
    w: f64,
    region: &QueryRegion,
) -> Vec<SegmentPair> {
    let pla = segment_series(series, eps);
    let segs = pla.segments();
    let shift = match region.kind {
        SearchKind::Drop => -eps,
        SearchKind::Jump => eps,
    };
    // The shifted region equivalent: intersect the *unshifted* parallelogram
    // with the region translated up (down) by eps.
    let mut out = Vec::new();
    for (j, ab) in segs.iter().enumerate() {
        let win_start = ab.t_start - w;
        // Self pair: the degenerate parallelogram is the feature segment
        // (0,0) -> (dur, dv); sample it densely.
        let n_steps = 256;
        let mut self_hit = false;
        for k in 0..=n_steps {
            for l in k..=n_steps {
                // (t1, t2) on the segment
                let t1 = ab.t_start + ab.duration() * k as f64 / n_steps as f64;
                let t2 = ab.t_start + ab.duration() * l as f64 / n_steps as f64;
                let dv = ab.value_at(t2) - ab.value_at(t1) + shift;
                let dt = t2 - t1;
                let inside = dt <= region.t
                    && match region.kind {
                        SearchKind::Drop => dv <= region.v,
                        SearchKind::Jump => dv >= region.v,
                    };
                if inside {
                    self_hit = true;
                    break;
                }
            }
            if self_hit {
                break;
            }
        }
        if self_hit {
            out.push(SegmentPair {
                t_d: ab.t_start,
                t_c: ab.t_end,
                t_b: ab.t_start,
                t_a: ab.t_end,
            });
        }
        for cd in segs[..j].iter() {
            if cd.t_end <= win_start {
                continue;
            }
            let cd_eff = match cd.truncate_left(win_start) {
                Some(s) => s,
                None => continue,
            };
            let para = Parallelogram::from_pair(&cd_eff, ab);
            // Dense sampling of the shifted parallelogram against the region.
            let steps = 96;
            let mut hit = false;
            'outer: for k in 0..=steps {
                for l in 0..=steps {
                    let tc = cd_eff.t_start + cd_eff.duration() * k as f64 / steps as f64;
                    let tb = ab.t_start + ab.duration() * l as f64 / steps as f64;
                    let dt = tb - tc;
                    let dv = ab.value_at(tb) - cd_eff.value_at(tc) + shift;
                    let inside = dt <= region.t
                        && match region.kind {
                            SearchKind::Drop => dv <= region.v,
                            SearchKind::Jump => dv >= region.v,
                        };
                    if inside {
                        hit = true;
                        break 'outer;
                    }
                }
            }
            let _ = &para; // parallelogram constructed to assert pair validity
            if hit {
                out.push(SegmentPair {
                    t_d: cd_eff.t_start,
                    t_c: cd_eff.t_end,
                    t_b: ab.t_start,
                    t_a: ab.t_end,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        (a.t_d, a.t_c, a.t_b, a.t_a)
            .partial_cmp(&(b.t_d, b.t_c, b.t_b, b.t_a))
            .unwrap()
    });
    out
}

#[test]
fn corner_reduction_loses_nothing() {
    // Dense-sampled full-parallelogram membership is a *subset* check: any
    // pair it finds must also be returned by the reduced-corner store. (The
    // reverse can differ at region boundaries the grid fails to sample, so
    // we check containment, plus a size sanity bound.)
    let series = walk_series(300, 21);
    let eps = 0.25;
    let w = 4.0 * HOUR;
    let dir = tmpdir("corners");
    let mut idx = SegDiffIndex::create(
        &dir,
        SegDiffConfig::default().with_epsilon(eps).with_window(w),
    )
    .unwrap();
    idx.ingest_series(&series).unwrap();
    idx.finish().unwrap();

    for region in [
        QueryRegion::drop(1.0 * HOUR, -1.0),
        QueryRegion::drop(2.0 * HOUR, -2.5),
        QueryRegion::jump(1.0 * HOUR, 1.0),
    ] {
        let (reduced, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        let full = full_parallelogram_results(&series, eps, w, &region);
        for p in &full {
            assert!(
                reduced.contains(p),
                "reduced corners missed {p:?} for {region:?}"
            );
        }
        // And the reduced set cannot be wildly larger than the full set:
        // every reduced result is a genuine boundary intersection.
        assert!(
            reduced.len() <= full.len() + full.len() / 4 + 8,
            "reduced {} vs full {} for {region:?}",
            reduced.len(),
            full.len()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn window_parameter_bounds_results() {
    // Shrinking w (with T fixed <= both) must not change results; w only
    // controls the largest supported T.
    let series = walk_series(400, 31);
    let region = QueryRegion::drop(0.5 * HOUR, -1.0);
    let mut all_results = Vec::new();
    for (i, w) in [1.0 * HOUR, 4.0 * HOUR, 8.0 * HOUR].iter().enumerate() {
        let dir = tmpdir(&format!("w-{i}"));
        let mut idx = SegDiffIndex::create(
            &dir,
            SegDiffConfig::default().with_epsilon(0.2).with_window(*w),
        )
        .unwrap();
        idx.ingest_series(&series).unwrap();
        idx.finish().unwrap();
        let (results, _) = idx.query(&region, QueryPlan::SeqScan).unwrap();
        all_results.push(results);
        std::fs::remove_dir_all(&dir).ok();
    }
    // Window truncation can alter t_d of truncated pairs, so compare the
    // covered (t_c, t_b) cores, which identify the pairs.
    let core = |rs: &Vec<SegmentPair>| -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = rs
            .iter()
            .map(|p| (p.t_c.to_bits(), p.t_b.to_bits()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let a = core(&all_results[0]);
    let b = core(&all_results[1]);
    let c = core(&all_results[2]);
    assert_eq!(a, b, "results differ between w=1h and w=4h");
    assert_eq!(b, c, "results differ between w=4h and w=8h");
}

#[test]
fn online_ingest_equals_offline_pla_ingest() {
    // Pushing observations one at a time (segmenting online) must produce
    // exactly the same feature store — and therefore the same answers — as
    // segmenting offline and feeding the PLA wholesale.
    let series = walk_series(500, 41);
    let region = QueryRegion::drop(1.0 * HOUR, -1.5);
    let d1 = tmpdir("online");
    let d2 = tmpdir("offline");
    let cfg = SegDiffConfig::default()
        .with_epsilon(0.2)
        .with_window(4.0 * HOUR);

    let mut online = SegDiffIndex::create(&d1, cfg.clone()).unwrap();
    online.ingest_series(&series).unwrap();
    online.finish().unwrap();

    let mut offline = SegDiffIndex::create(&d2, cfg).unwrap();
    let pla = segment_series(&series, 0.2);
    offline.ingest_pla(&pla, series.len() as u64).unwrap();
    offline.finish().unwrap();

    let so = online.stats();
    let sf = offline.stats();
    assert_eq!(so.n_segments, sf.n_segments);
    assert_eq!(so.n_rows, sf.n_rows);
    assert_eq!(so.corner_hist(), sf.corner_hist());
    assert_eq!(so.compression_rate(), sf.compression_rate());

    let (a, _) = online.query(&region, QueryPlan::SeqScan).unwrap();
    let (b, _) = offline.query(&region, QueryPlan::SeqScan).unwrap();
    assert_eq!(a, b);
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d2).ok();
}
