//! Feature parallelograms (paper §4.2, Lemma 3).

use crate::FeaturePoint;
use segmentation::Segment;

/// The feature parallelogram of two data segments `CD` (earlier) and `AB`
/// (later, `t_B >= t_C`).
///
/// With `D`/`C` the start/end of the earlier segment and `B`/`A` the
/// start/end of the later one, the four corners are the feature points of
/// the four endpoint pairs:
///
/// * `bc = (t_B - t_C, v_B - v_C)` — closest pair,
/// * `bd = (t_B - t_D, v_B - v_D)`,
/// * `ac = (t_A - t_C, v_A - v_C)`,
/// * `ad = (t_A - t_D, v_A - v_D)` — farthest pair.
///
/// Lemma 3: this quadrangle is a parallelogram, and it contains the feature
/// point of every pair with one point on `CD` and the other on `AB`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Parallelogram {
    /// Corner for the pair (C, B).
    pub bc: FeaturePoint,
    /// Corner for the pair (D, B).
    pub bd: FeaturePoint,
    /// Corner for the pair (C, A).
    pub ac: FeaturePoint,
    /// Corner for the pair (D, A).
    pub ad: FeaturePoint,
}

impl Parallelogram {
    /// Builds the parallelogram for the earlier segment `cd` and the later
    /// segment `ab`.
    ///
    /// # Panics
    ///
    /// Panics unless `ab.t_start >= cd.t_end` (the segments must not
    /// overlap in time; Lemma 3's precondition `t_B >= t_C`).
    pub fn from_pair(cd: &Segment, ab: &Segment) -> Self {
        assert!(
            ab.t_start >= cd.t_end,
            "later segment must start at or after the earlier segment ends"
        );
        let (t_d, v_d) = (cd.t_start, cd.v_start);
        let (t_c, v_c) = (cd.t_end, cd.v_end);
        let (t_b, v_b) = (ab.t_start, ab.v_start);
        let (t_a, v_a) = (ab.t_end, ab.v_end);
        Self {
            bc: FeaturePoint::of_pair(t_c, v_c, t_b, v_b),
            bd: FeaturePoint::of_pair(t_d, v_d, t_b, v_b),
            ac: FeaturePoint::of_pair(t_c, v_c, t_a, v_a),
            ad: FeaturePoint::of_pair(t_d, v_d, t_a, v_a),
        }
    }

    /// The four corners in the paper's order `(BC, BD, AD, AC)`.
    pub fn corners(&self) -> [FeaturePoint; 4] {
        [self.bc, self.bd, self.ad, self.ac]
    }

    /// Whether `p` lies inside the parallelogram (within `tol` of it).
    ///
    /// Solves `p = bc + s * (bd - bc) + r * (ac - bc)` and checks
    /// `s, r ∈ [0, 1]`; degenerate parallelograms (equal slopes, or a
    /// segment paired with itself) fall back to a distance check against
    /// the diagonal `bc → ad`.
    pub fn contains(&self, p: FeaturePoint, tol: f64) -> bool {
        let u = self.bd - self.bc;
        let w = self.ac - self.bc;
        let q = p - self.bc;
        let det = u.dt * w.dv - u.dv * w.dt;
        let scale = (u.dt.abs() + w.dt.abs() + u.dv.abs() + w.dv.abs()).max(1.0);
        if det.abs() <= 1e-9 * scale * scale {
            // Degenerate: corners are collinear; the region is the segment
            // from bc to ad.
            return point_segment_distance(p, self.bc, self.ad) <= tol;
        }
        let s = (q.dt * w.dv - q.dv * w.dt) / det;
        let r = (u.dt * q.dv - u.dv * q.dt) / det;
        let eps = tol / scale.max(1e-12);
        (-eps..=1.0 + eps).contains(&s) && (-eps..=1.0 + eps).contains(&r)
    }
}

/// Distance from `p` to the segment `a -> b` in feature space.
fn point_segment_distance(p: FeaturePoint, a: FeaturePoint, b: FeaturePoint) -> f64 {
    let ab = b - a;
    let len2 = ab.dt * ab.dt + ab.dv * ab.dv;
    if len2 == 0.0 {
        return p.distance(&a);
    }
    let t = ((p.dt - a.dt) * ab.dt + (p.dv - a.dv) * ab.dv) / len2;
    let t = t.clamp(0.0, 1.0);
    let proj = FeaturePoint::new(a.dt + t * ab.dt, a.dv + t * ab.dv);
    p.distance(&proj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Segment, Segment) {
        // CD rises, AB falls; separated in time.
        let cd = Segment::new(0.0, 1.0, 10.0, 4.0); // D=(0,1), C=(10,4)
        let ab = Segment::new(25.0, 6.0, 40.0, 2.0); // B=(25,6), A=(40,2)
        (cd, ab)
    }

    #[test]
    fn corners_match_definitions() {
        let (cd, ab) = pair();
        let p = Parallelogram::from_pair(&cd, &ab);
        assert_eq!(p.bc, FeaturePoint::new(15.0, 2.0)); // B - C
        assert_eq!(p.bd, FeaturePoint::new(25.0, 5.0)); // B - D
        assert_eq!(p.ac, FeaturePoint::new(30.0, -2.0)); // A - C
        assert_eq!(p.ad, FeaturePoint::new(40.0, 1.0)); // A - D
    }

    #[test]
    fn is_a_parallelogram() {
        // Opposite sides are equal vectors: BD - BC == AD - AC.
        let (cd, ab) = pair();
        let p = Parallelogram::from_pair(&cd, &ab);
        let e1 = p.bd - p.bc;
        let e2 = p.ad - p.ac;
        assert!((e1.dt - e2.dt).abs() < 1e-12);
        assert!((e1.dv - e2.dv).abs() < 1e-12);
        // And the side (BC, BD) has CD's duration and slope (Lemma 3 proof).
        assert_eq!(e1.dt, cd.duration());
        assert!((e1.dv / e1.dt - cd.slope()).abs() < 1e-12);
    }

    #[test]
    fn contains_feature_points_of_cross_pairs() {
        let (cd, ab) = pair();
        let p = Parallelogram::from_pair(&cd, &ab);
        for i in 0..=10 {
            for j in 0..=10 {
                let tc = cd.t_start + cd.duration() * i as f64 / 10.0;
                let tb = ab.t_start + ab.duration() * j as f64 / 10.0;
                let q = FeaturePoint::of_pair(tc, cd.value_at(tc), tb, ab.value_at(tb));
                assert!(p.contains(q, 1e-9), "({i},{j}) -> {q:?} escaped");
            }
        }
    }

    #[test]
    fn excludes_far_points() {
        let (cd, ab) = pair();
        let p = Parallelogram::from_pair(&cd, &ab);
        assert!(!p.contains(FeaturePoint::new(0.0, 0.0), 1e-9));
        assert!(!p.contains(FeaturePoint::new(100.0, 0.0), 1e-9));
        assert!(!p.contains(FeaturePoint::new(27.0, 6.0), 1e-9));
    }

    #[test]
    fn degenerate_equal_slopes() {
        // Parallel segments: the parallelogram collapses to a segment.
        let cd = Segment::new(0.0, 0.0, 10.0, 1.0);
        let ab = Segment::new(20.0, 5.0, 30.0, 6.0);
        let p = Parallelogram::from_pair(&cd, &ab);
        // Midpoint of the bc -> ad diagonal is inside.
        let mid = FeaturePoint::new((p.bc.dt + p.ad.dt) / 2.0, (p.bc.dv + p.ad.dv) / 2.0);
        assert!(p.contains(mid, 1e-9));
        assert!(!p.contains(FeaturePoint::new(mid.dt, mid.dv + 1.0), 1e-3));
    }

    #[test]
    fn adjacent_segments_share_endpoint() {
        let cd = Segment::new(0.0, 0.0, 10.0, 2.0);
        let ab = Segment::new(10.0, 2.0, 30.0, -1.0);
        let p = Parallelogram::from_pair(&cd, &ab);
        assert_eq!(p.bc, FeaturePoint::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "later segment")]
    fn rejects_overlapping_pair() {
        let cd = Segment::new(0.0, 0.0, 10.0, 2.0);
        let ab = Segment::new(5.0, 1.0, 30.0, -1.0);
        Parallelogram::from_pair(&cd, &ab);
    }
}
