//! Online operation: both the segmenter and Algorithm 1 are streaming, so
//! "there is no considerable delay for users to search new data" (§4.3.2).
//!
//! This example simulates a live deployment: observations arrive one at a
//! time; every simulated day we pause the stream, run the standing CAD
//! query over everything ingested so far, and report what is new.
//!
//! ```sh
//! cargo run --release --example streaming_ingest
//! ```

use segdiff_repro::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("segdiff-stream-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let days = 14u32;
    let cfg = CadTransectConfig::default().with_days(days).clean();
    let series = generate_sensor(&cfg, 12, 99);

    let mut index = SegDiffIndex::create(&dir, SegDiffConfig::default()).expect("create");
    let region = QueryRegion::drop(1.0 * HOUR, -3.0);

    let mut next_checkpoint = DAY;
    let mut known = 0usize;
    println!("streaming {} observations ...\n", series.len());
    for (t, v) in series.iter() {
        index.push(t, v).expect("push");
        if t >= next_checkpoint {
            // NOTE: mid-stream queries see everything already *segmented*;
            // the observations still inside the open segment window become
            // searchable as soon as their segment closes (or at `finish`).
            let (results, stats) = index.query(&region, QueryPlan::SeqScan).expect("query");
            let fresh = results.len().saturating_sub(known);
            println!(
                "day {:2}: {:3} matching periods (+{fresh} new), query took {:.2} ms over {} rows",
                (t / DAY) as u32,
                results.len(),
                stats.wall_seconds * 1e3,
                stats.rows_considered
            );
            known = results.len();
            next_checkpoint += DAY;
        }
    }
    index.finish().expect("finish");

    let (final_results, _) = index.query(&region, QueryPlan::SeqScan).expect("query");
    let s = index.stats();
    println!(
        "\nfinal: {} periods; {} observations -> {} segments (r = {:.1}); feature store {} KiB",
        final_results.len(),
        s.n_observations,
        s.n_segments,
        s.compression_rate(),
        s.feature_payload_bytes / 1024
    );

    // Completeness holds at every point, including after streaming.
    let events = oracle::true_events(&series, &region);
    assert!(oracle::find_missed_event(&events, &final_results).is_none());
    println!(
        "oracle check passed: all {} true events covered",
        events.len()
    );

    // Everything above also fed the global telemetry registry: ingest and
    // pool counters, plus latency histograms for each query phase.
    use segdiff_repro::obs::export::Exporter;
    println!("\ntelemetry collected during the run:");
    print!(
        "{}",
        segdiff_repro::obs::export::TextExporter.export(&segdiff_repro::obs::global().snapshot())
    );

    std::fs::remove_dir_all(&dir).ok();
}
