//! Standing queries: registered `(V, T, sensors)` regions evaluated
//! against every feature the ingest path commits.
//!
//! The historical path stores features and waits for queries; a
//! *subscription* inverts it — the query arrives first and waits for
//! data. Clients register a [`Subscription`] (a [`QueryRegion`] plus an
//! optional sensor restriction); the ingest path calls
//! [`SubscriptionRegistry::on_features`] with each committed segment's
//! feature rows, and matches become [`Notification`]s readable through a
//! per-subscription monotone cursor ([`SubscriptionRegistry::since`]).
//!
//! Scaling: with thousands of standing queries a per-feature linear scan
//! is O(all regions). Registered regions therefore live in a
//! [`RegionIndex`] — the logarithmic `(T, |V|)` grid whose cell
//! representatives are pruned with `zone_may_intersect` — so each
//! committed feature tests O(matching) regions, exactly as the B+tree
//! made historical queries sublinear. The `subscribe.regions_tested` /
//! `subscribe.features_evaluated` counters expose the ratio.
//!
//! Delivery semantics: matches found by `on_features` are *staged*;
//! [`SubscriptionRegistry::flush`] assigns sequence numbers and publishes
//! them. The ingest hook flushes right after the WAL commit of the
//! segment that produced the features, so a published notification may
//! precede durability by at most one group-commit window — the same
//! window a crash can already un-commit. Per-subscription logs are
//! bounded; a slow consumer loses oldest-first (`notify.dropped`) rather
//! than stalling ingest. A feature seen twice — e.g. provisionally and
//! then committed, or across two evaluation ticks — notifies once per
//! subscription, keyed on the pair's start times like the
//! [`crate::alerts::AlertEngine`] dedup.
//!
//! Each sensor also accumulates an [`EventFrequency`] — observed event
//! count over the observation span, in the spirit of Albrecht et al.'s
//! event-series characterization on expected frequency — so `GET
//! /subscribe` can report how eventful each sensor has been.

use crate::ingest::FeatureRow;
use featurespace::{QueryRegion, RegionIndex, RegionMatchStats, SearchKind};
use obs::json::Json;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Notifications retained per subscription before the oldest are dropped.
pub const DEFAULT_NOTIFICATION_LOG_CAPACITY: usize = 1024;

/// Fired-pair keys retained per subscription before the dedup set is
/// cleared (same bound the alert engine uses).
const FIRED_PAIRS_BOUND: usize = 8192;

/// One registered standing query.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Registry-assigned id, unique for the registry's lifetime.
    pub id: u64,
    /// Caller-chosen label (shown in listings; not interpreted).
    pub label: String,
    /// The `(V, T)` region in feature space.
    pub region: QueryRegion,
    /// Sensors this subscription watches; empty means all sensors.
    pub sensors: Vec<u32>,
    /// Registration time, unix milliseconds.
    pub created_ms: u64,
}

impl Subscription {
    fn covers(&self, sensor: u32) -> bool {
        self.sensors.is_empty() || self.sensors.contains(&sensor)
    }

    /// Serializes the subscription as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id)),
            ("label", Json::from(self.label.as_str())),
            ("kind", Json::from(self.region.kind.name())),
            ("t", Json::from(self.region.t)),
            ("v", Json::from(self.region.v)),
            (
                "sensors",
                Json::Array(
                    self.sensors
                        .iter()
                        .map(|s| Json::from(u64::from(*s)))
                        .collect(),
                ),
            ),
            ("created_ms", Json::from(self.created_ms)),
        ])
    }
}

/// One pushed match: the offending segment pair, stamped with the
/// subscription's cursor position.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// Position in the subscription's cursor (1-based, monotone).
    pub seq: u64,
    /// The subscription this notification belongs to.
    pub sub_id: u64,
    /// Sensor whose ingest produced the feature.
    pub sensor: u32,
    /// Drop or jump.
    pub kind: SearchKind,
    /// Start of the earlier segment of the offending pair.
    pub t_d: f64,
    /// End of the earlier segment.
    pub t_c: f64,
    /// Start of the later segment.
    pub t_b: f64,
    /// End of the later segment.
    pub t_a: f64,
    /// The boundary corner change `Δv` with the largest magnitude.
    pub dv: f64,
    /// When the ingest path committed the feature, unix milliseconds.
    pub committed_ms: u64,
}

impl Notification {
    /// Serializes the notification as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("sub", Json::from(self.sub_id)),
            ("sensor", Json::from(u64::from(self.sensor))),
            ("kind", Json::from(self.kind.name())),
            ("t_d", Json::from(self.t_d)),
            ("t_c", Json::from(self.t_c)),
            ("t_b", Json::from(self.t_b)),
            ("t_a", Json::from(self.t_a)),
            ("dv", Json::from(self.dv)),
            ("committed_ms", Json::from(self.committed_ms)),
        ])
    }
}

/// Per-sensor event-series characterization: how many events this sensor
/// has produced over what observation span.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventFrequency {
    /// Distinct events observed (features that newly matched at least
    /// one subscription watching the sensor).
    pub events: u64,
    /// First event time, unix milliseconds (0 when no event yet).
    pub first_ms: u64,
    /// Last event time, unix milliseconds.
    pub last_ms: u64,
}

impl EventFrequency {
    fn record(&mut self, now_ms: u64) {
        if self.events == 0 {
            self.first_ms = now_ms;
        }
        self.events += 1;
        self.last_ms = self.last_ms.max(now_ms);
    }

    /// Expected events per hour over the observed span; 0 until the
    /// span is non-degenerate.
    pub fn expected_per_hour(&self) -> f64 {
        let span_ms = self.last_ms.saturating_sub(self.first_ms);
        if span_ms == 0 {
            return 0.0;
        }
        self.events as f64 / (span_ms as f64 / 3_600_000.0)
    }
}

/// Per-subscription delivery state.
struct SubState {
    sub: Subscription,
    next_seq: u64,
    /// Matches staged by `on_features`, published by `flush`.
    pending: Vec<Notification>,
    /// Published notifications, oldest first, bounded.
    log: VecDeque<Notification>,
    /// Pairs already notified, keyed on `(sensor, t_d, t_b)` bits.
    fired: HashSet<(u32, u64, u64)>,
}

struct Inner {
    next_id: u64,
    index: RegionIndex,
    subs: HashMap<u64, SubState>,
    sensor_stats: HashMap<u32, EventFrequency>,
    match_buf: Vec<u64>,
}

/// The standing-query registry: subscriptions, their region index, and
/// the per-subscription notification logs.
///
/// One mutex guards everything; it is a leaf lock (never held while
/// taking another), like the alert engine's.
pub struct SubscriptionRegistry {
    inner: Mutex<Inner>,
    log_capacity: usize,
    registered: Arc<obs::Counter>,
    removed: Arc<obs::Counter>,
    active: Arc<obs::Gauge>,
    features_evaluated: Arc<obs::Counter>,
    regions_tested: Arc<obs::Counter>,
    cells_visited: Arc<obs::Counter>,
    delivered: Arc<obs::Counter>,
    deduped: Arc<obs::Counter>,
    dropped: Arc<obs::Counter>,
}

impl Default for SubscriptionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SubscriptionRegistry {
    /// A registry with the default per-subscription log capacity.
    pub fn new() -> Self {
        Self::with_log_capacity(DEFAULT_NOTIFICATION_LOG_CAPACITY)
    }

    /// A registry retaining at most `log_capacity` published
    /// notifications per subscription. Counters register in
    /// [`obs::global`].
    pub fn with_log_capacity(log_capacity: usize) -> Self {
        let r = obs::global();
        SubscriptionRegistry {
            inner: Mutex::new(Inner {
                next_id: 1,
                index: RegionIndex::new(),
                subs: HashMap::new(),
                sensor_stats: HashMap::new(),
                match_buf: Vec::new(),
            }),
            log_capacity: log_capacity.max(1),
            registered: r.counter("subscribe.registered"),
            removed: r.counter("subscribe.removed"),
            active: r.gauge("subscribe.active"),
            features_evaluated: r.counter("subscribe.features_evaluated"),
            regions_tested: r.counter("subscribe.regions_tested"),
            cells_visited: r.counter("subscribe.cells_visited"),
            delivered: r.counter("notify.delivered"),
            deduped: r.counter("notify.deduped"),
            dropped: r.counter("notify.dropped"),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a standing query; returns the stored subscription with
    /// its assigned id. `sensors` empty means all sensors.
    pub fn subscribe(
        &self,
        label: &str,
        region: QueryRegion,
        sensors: &[u32],
        now_ms: u64,
    ) -> Subscription {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let sub = Subscription {
            id,
            label: label.to_string(),
            region,
            sensors: sensors.to_vec(),
            created_ms: now_ms,
        };
        inner.index.insert(id, region);
        inner.subs.insert(
            id,
            SubState {
                sub: sub.clone(),
                next_seq: 1,
                pending: Vec::new(),
                log: VecDeque::new(),
                fired: HashSet::new(),
            },
        );
        self.registered.inc();
        self.active.set(inner.subs.len() as i64);
        sub
    }

    /// Removes a subscription (and its pending/published notifications);
    /// returns whether it existed.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut inner = self.lock();
        let Some(state) = inner.subs.remove(&id) else {
            return false;
        };
        inner.index.remove(id, &state.sub.region);
        self.removed.inc();
        self.active.set(inner.subs.len() as i64);
        true
    }

    /// All registered subscriptions, ordered by id.
    pub fn subscriptions(&self) -> Vec<Subscription> {
        let inner = self.lock();
        let mut subs: Vec<Subscription> = inner.subs.values().map(|s| s.sub.clone()).collect();
        subs.sort_by_key(|s| s.id);
        subs
    }

    /// One subscription by id.
    pub fn subscription(&self, id: u64) -> Option<Subscription> {
        self.lock().subs.get(&id).map(|s| s.sub.clone())
    }

    /// The highest sequence number published to `id` so far (0 before
    /// the first publication); `None` for an unknown subscription. A
    /// live feed starts its cursor here to deliver only what happens
    /// next.
    pub fn last_seq(&self, id: u64) -> Option<u64> {
        self.lock().subs.get(&id).map(|s| s.next_seq - 1)
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.lock().subs.len()
    }

    /// Whether no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates newly committed feature rows from `sensor` against the
    /// region index and stages matches. Call [`Self::flush`] afterwards
    /// (the ingest hook does, right after the segment's WAL commit) to
    /// publish them to the cursors.
    pub fn on_features(&self, sensor: u32, rows: &[FeatureRow], now_ms: u64) {
        let mut inner = self.lock();
        if inner.subs.is_empty() {
            return;
        }
        let inner = &mut *inner;
        for row in rows {
            self.features_evaluated.inc();
            let mut stats = RegionMatchStats::default();
            inner.match_buf.clear();
            inner
                .index
                .matches(&row.boundary, &mut inner.match_buf, &mut stats);
            self.cells_visited.add(stats.cells_visited);
            self.regions_tested.add(stats.regions_tested);
            let mut novel = false;
            for &id in &inner.match_buf {
                let Some(state) = inner.subs.get_mut(&id) else {
                    continue;
                };
                if !state.sub.covers(sensor) {
                    continue;
                }
                let key = (sensor, row.t_d.to_bits(), row.t_b.to_bits());
                if !state.fired.insert(key) {
                    self.deduped.inc();
                    continue;
                }
                // Bound the dedup set; clearing can at worst re-notify
                // an old pair, and the log below is bounded anyway.
                if state.fired.len() > FIRED_PAIRS_BOUND {
                    state.fired.clear();
                    state.fired.insert(key);
                }
                let dv = row
                    .boundary
                    .corners()
                    .iter()
                    .map(|c| c.dv)
                    .fold(
                        0.0f64,
                        |acc, dv| if dv.abs() > acc.abs() { dv } else { acc },
                    );
                novel = true;
                state.pending.push(Notification {
                    seq: 0, // assigned at flush
                    sub_id: id,
                    sensor,
                    kind: row.kind,
                    t_d: row.t_d,
                    t_c: row.t_c,
                    t_b: row.t_b,
                    t_a: row.t_a,
                    dv,
                    committed_ms: now_ms,
                });
            }
            if novel {
                inner.sensor_stats.entry(sensor).or_default().record(now_ms);
            }
        }
    }

    /// Publishes everything staged since the last flush: assigns
    /// sequence numbers and appends to the bounded per-subscription
    /// logs. Returns the number of notifications published.
    pub fn flush(&self) -> u64 {
        let mut inner = self.lock();
        let mut published = 0u64;
        for state in inner.subs.values_mut() {
            for mut n in state.pending.drain(..) {
                n.seq = state.next_seq;
                state.next_seq += 1;
                if state.log.len() >= self.log_capacity {
                    state.log.pop_front();
                    self.dropped.inc();
                }
                state.log.push_back(n);
                self.delivered.inc();
                published += 1;
            }
        }
        published
    }

    /// Published notifications of subscription `sub_id` with `seq >
    /// after`, oldest first, at most `max`; plus the cursor to pass as
    /// the next `after`. `None` for an unknown subscription.
    ///
    /// A consumer that falls more than the log capacity behind misses
    /// the dropped prefix — visible as a gap in the returned `seq`s.
    pub fn since(&self, sub_id: u64, after: u64, max: usize) -> Option<(Vec<Notification>, u64)> {
        let inner = self.lock();
        let state = inner.subs.get(&sub_id)?;
        let out: Vec<Notification> = state
            .log
            .iter()
            .filter(|n| n.seq > after)
            .take(max)
            .cloned()
            .collect();
        let next_after = out.last().map_or(after, |n| n.seq);
        Some((out, next_after))
    }

    /// Per-sensor event-frequency characterization, ordered by sensor.
    pub fn sensor_stats(&self) -> Vec<(u32, EventFrequency)> {
        let inner = self.lock();
        let mut stats: Vec<(u32, EventFrequency)> =
            inner.sensor_stats.iter().map(|(s, f)| (*s, *f)).collect();
        stats.sort_by_key(|(s, _)| *s);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use featurespace::{Boundary, FeaturePoint};

    fn drop_row(t_d: f64, dv: f64) -> FeatureRow {
        FeatureRow {
            kind: SearchKind::Drop,
            boundary: Boundary::two(FeaturePoint::new(0.0, 0.0), FeaturePoint::new(1800.0, dv)),
            t_d,
            t_c: t_d + 600.0,
            t_b: t_d + 1200.0,
            t_a: t_d + 1800.0,
        }
    }

    #[test]
    fn subscribe_list_unsubscribe() {
        let reg = SubscriptionRegistry::new();
        assert!(reg.is_empty());
        let a = reg.subscribe("deep", QueryRegion::drop(3600.0, -3.0), &[], 10);
        let b = reg.subscribe("s1-only", QueryRegion::drop(3600.0, -1.0), &[1], 20);
        assert_eq!(reg.len(), 2);
        assert_ne!(a.id, b.id);
        let listed = reg.subscriptions();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].id, a.id, "listing is id-ordered");
        assert_eq!(
            reg.subscription(b.id).map(|s| s.label),
            Some("s1-only".into())
        );
        assert!(reg.unsubscribe(a.id));
        assert!(!reg.unsubscribe(a.id));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn matching_feature_notifies_through_the_cursor() {
        let reg = SubscriptionRegistry::new();
        let sub = reg.subscribe("deep", QueryRegion::drop(3600.0, -3.0), &[], 0);
        reg.on_features(0, &[drop_row(1000.0, -4.0)], 500);
        // Staged but not yet published.
        let (none, _) = reg.since(sub.id, 0, 100).unwrap();
        assert!(none.is_empty(), "publication waits for flush");
        assert_eq!(reg.flush(), 1);
        let (got, next) = reg.since(sub.id, 0, 100).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[0].sensor, 0);
        assert_eq!(got[0].committed_ms, 500);
        assert!(got[0].dv <= -3.0);
        assert_eq!(next, 1);
        // Cursor is consumed: nothing new after `next`.
        let (empty, same) = reg.since(sub.id, next, 100).unwrap();
        assert!(empty.is_empty());
        assert_eq!(same, next);
        assert!(reg.since(999, 0, 100).is_none(), "unknown subscription");
    }

    #[test]
    fn feature_spanning_two_ticks_notifies_once() {
        // The AlertEngine-style dedup property: the same pair surfacing
        // in two evaluation ticks (e.g. provisional then committed)
        // produces one notification.
        let reg = SubscriptionRegistry::new();
        let sub = reg.subscribe("deep", QueryRegion::drop(3600.0, -3.0), &[], 0);
        let row = drop_row(1000.0, -4.0);
        reg.on_features(0, std::slice::from_ref(&row), 100);
        reg.flush();
        reg.on_features(0, std::slice::from_ref(&row), 200);
        reg.flush();
        let (got, _) = reg.since(sub.id, 0, 100).unwrap();
        assert_eq!(got.len(), 1, "pair must notify once across ticks: {got:?}");
        // A different pair still notifies.
        reg.on_features(0, &[drop_row(9000.0, -4.0)], 300);
        reg.flush();
        let (got, _) = reg.since(sub.id, 0, 100).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].seq, 2);
    }

    #[test]
    fn sensor_restriction_filters_matches() {
        let reg = SubscriptionRegistry::new();
        let only1 = reg.subscribe("s1", QueryRegion::drop(3600.0, -3.0), &[1], 0);
        let all = reg.subscribe("all", QueryRegion::drop(3600.0, -3.0), &[], 0);
        reg.on_features(2, &[drop_row(1000.0, -4.0)], 100);
        reg.flush();
        let (none, _) = reg.since(only1.id, 0, 100).unwrap();
        assert!(none.is_empty(), "sensor 2 must not reach a sensor-1 sub");
        let (got, _) = reg.since(all.id, 0, 100).unwrap();
        assert_eq!(got.len(), 1);
        reg.on_features(1, &[drop_row(9000.0, -4.0)], 200);
        reg.flush();
        let (got, _) = reg.since(only1.id, 0, 100).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn log_is_bounded_and_cursor_pages() {
        let reg = SubscriptionRegistry::with_log_capacity(3);
        let sub = reg.subscribe("deep", QueryRegion::drop(36_000.0, -3.0), &[], 0);
        let dropped_before = obs::global().counter("notify.dropped").get();
        for i in 0..5 {
            reg.on_features(0, &[drop_row(i as f64 * 10_000.0, -4.0)], i);
        }
        assert_eq!(reg.flush(), 5);
        let (got, next) = reg.since(sub.id, 0, 2).unwrap();
        assert_eq!(got.len(), 2, "max caps a page");
        // Seqs 1 and 2 were dropped by the bound; the page starts at 3.
        assert_eq!(got[0].seq, 3);
        assert_eq!(next, 4);
        let (rest, done) = reg.since(sub.id, next, 100).unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(done, 5);
        assert_eq!(
            obs::global().counter("notify.dropped").get() - dropped_before,
            2
        );
    }

    #[test]
    fn sensor_stats_characterize_event_frequency() {
        let reg = SubscriptionRegistry::new();
        reg.subscribe("deep", QueryRegion::drop(36_000.0, -3.0), &[], 0);
        // Two events an hour apart on sensor 3.
        reg.on_features(3, &[drop_row(0.0, -4.0)], 0);
        reg.on_features(3, &[drop_row(50_000.0, -4.0)], 3_600_000);
        reg.flush();
        let stats = reg.sensor_stats();
        assert_eq!(stats.len(), 1);
        let (sensor, freq) = stats[0];
        assert_eq!(sensor, 3);
        assert_eq!(freq.events, 2);
        assert!((freq.expected_per_hour() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ingest_hook_pushes_committed_drops() {
        use crate::{SegDiffConfig, SegDiffIndex};
        use sensorgen::TimeSeries;

        let dir = std::env::temp_dir().join(format!("segdiff-subhook-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let reg = Arc::new(SubscriptionRegistry::new());
        let sub = reg.subscribe("planted", QueryRegion::drop(3600.0, -3.0), &[], 0);
        let mut idx = SegDiffIndex::create(&dir, SegDiffConfig::default()).unwrap();
        idx.attach_subscriptions(Arc::clone(&reg), 0);
        // The index-test series: one unmistakable 4-degree drop.
        let mut s = TimeSeries::new();
        let mut v = 10.0;
        for i in 0..200 {
            let t = i as f64 * 300.0;
            if (80..86).contains(&i) {
                v -= 4.0 / 6.0;
            }
            s.push(t, v);
        }
        idx.ingest_series(&s).unwrap();
        idx.finish().unwrap();
        let (got, _) = reg.since(sub.id, 0, 1000).unwrap();
        assert!(
            got.iter().any(|n| n.t_d <= 25_800.0 && n.t_a >= 24_000.0),
            "planted drop must be pushed: {got:?}"
        );
        // The hook published at commit time — no extra flush was needed.
        std::fs::remove_dir_all(&dir).ok();
    }
}
