//! The exhaustive baseline **Exh** (paper §1, §6).
//!
//! Exh materializes, for every observation, the difference against every
//! earlier observation within the window `w`: one `(Δt, Δv, t)` row per
//! pair, where `t` is the (absolute) time stamp of the later observation.
//! A search is then a plain range query. This is the comparison system for
//! every space/time experiment; it is *exact on sampled observations* but —
//! unlike SegDiff — blind to events of the data generating model G that
//! fall between samples (§5.1).

use crate::query::{QueryPlan, QueryStats};
use featurespace::{QueryRegion, SearchKind};
use pagestore::{Database, Result, Table, TableSpec};
use sensorgen::TimeSeries;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Sizes of a built [`ExhIndex`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhStats {
    /// Observations ingested.
    pub n_observations: u64,
    /// Pairwise rows stored.
    pub n_rows: u64,
    /// Raw feature bytes (rows × 3 columns × 8 — the paper's `c1 = 3`).
    pub feature_payload_bytes: u64,
    /// Heap pages on disk, in bytes.
    pub heap_bytes: u64,
    /// Index pages on disk, in bytes.
    pub index_bytes: u64,
}

impl ExhStats {
    /// Heap plus index bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.heap_bytes + self.index_bytes
    }
}

/// An event returned by Exh: the two observation time stamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExhEvent {
    /// Earlier observation time.
    pub t1: f64,
    /// Later observation time.
    pub t2: f64,
    /// The change `v(t2) - v(t1)`.
    pub dv: f64,
}

/// The exhaustive pairwise-difference index.
pub struct ExhIndex {
    dir: PathBuf,
    db: Arc<Database>,
    table: Arc<Table>,
    window: f64,
    buf: VecDeque<(f64, f64)>,
    n_observations: u64,
}

impl ExhIndex {
    /// Creates an Exh index under `dir` for window `w` seconds.
    pub fn create(dir: &Path, window: f64, pool_pages: usize) -> Result<Self> {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive"
        );
        let db = Database::create(dir, pool_pages)?;
        let table = db.create_table(TableSpec::new("exh", &["dt", "dv", "t"]))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            db,
            table,
            window,
            buf: VecDeque::new(),
            n_observations: 0,
        })
    }

    /// Reopens an index previously persisted with [`ExhIndex::finish`].
    /// Both querying and further ingestion resume (the tail of raw
    /// observations still inside the window is persisted alongside the
    /// feature table).
    pub fn open(dir: &Path, pool_pages: usize) -> Result<Self> {
        let meta = std::fs::read_to_string(dir.join("exh.meta")).map_err(|_| {
            pagestore::StoreError::NotFound(format!("exh meta in {}", dir.display()))
        })?;
        let mut window = None;
        let mut n_observations = 0u64;
        let mut buf = VecDeque::new();
        for line in meta.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["window", v] => window = v.parse().ok(),
                ["n_observations", v] => n_observations = v.parse().unwrap_or(0),
                ["tail", t, v] => {
                    let (Ok(t), Ok(v)) = (t.parse::<f64>(), v.parse::<f64>()) else {
                        return Err(pagestore::StoreError::Corrupt(
                            "exh meta: malformed tail entry".into(),
                        ));
                    };
                    buf.push_back((t, v));
                }
                _ => {}
            }
        }
        let Some(window) = window else {
            return Err(pagestore::StoreError::Corrupt(
                "exh meta missing window".into(),
            ));
        };
        let db = Database::open(dir, pool_pages)?;
        let table = db.table("exh")?;
        Ok(Self {
            dir: dir.to_path_buf(),
            db,
            table,
            window,
            buf,
            n_observations,
        })
    }

    /// The underlying database (for experiment instrumentation).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Ingests one observation: emits one row per earlier observation
    /// within the window.
    pub fn push(&mut self, t: f64, v: f64) -> Result<()> {
        if let Some(&(last, _)) = self.buf.back() {
            assert!(t > last, "time stamps must be strictly increasing");
        }
        self.n_observations += 1;
        while let Some(&(t0, _)) = self.buf.front() {
            if t - t0 > self.window {
                self.buf.pop_front();
            } else {
                break;
            }
        }
        for &(ti, vi) in &self.buf {
            self.table.insert(&[t - ti, v - vi, t])?;
        }
        self.buf.push_back((t, v));
        Ok(())
    }

    /// Ingests a whole series.
    pub fn ingest_series(&mut self, series: &TimeSeries) -> Result<()> {
        for (t, v) in series.iter() {
            self.push(t, v)?;
        }
        Ok(())
    }

    /// Persists everything, including the metadata and window tail needed
    /// by [`ExhIndex::open`].
    pub fn finish(&self) -> Result<()> {
        let mut meta = format!(
            "window {}\nn_observations {}\n",
            self.window, self.n_observations
        );
        for (t, v) in &self.buf {
            meta.push_str(&format!("tail {t} {v}\n"));
        }
        std::fs::write(self.dir.join("exh.meta"), meta)?;
        self.db.flush()
    }

    /// Builds the B+tree on `(dt, dv)` (required for [`QueryPlan::Index`]).
    pub fn build_indexes(&self) -> Result<()> {
        self.db.create_index("exh", "by_dt_dv", &["dt", "dv"])?;
        self.db.flush()
    }

    /// Runs a drop or jump search. Results are exact over sampled
    /// observations: each returned event names the two time stamps.
    pub fn query(
        &self,
        region: &QueryRegion,
        plan: QueryPlan,
    ) -> Result<(Vec<ExhEvent>, QueryStats)> {
        assert!(
            region.t <= self.window,
            "query T={} exceeds window w={}",
            region.t,
            self.window
        );
        let io_before = self.db.stats();
        let start = Instant::now();
        let mut rows_considered = 0u64;
        let mut out = Vec::new();
        let matches = |dt: f64, dv: f64| -> bool {
            dt > 0.0
                && dt <= region.t
                && match region.kind {
                    SearchKind::Drop => dv <= region.v,
                    SearchKind::Jump => dv >= region.v,
                }
        };
        match plan {
            QueryPlan::SeqScan => {
                self.table.seq_scan(|_, row| {
                    rows_considered += 1;
                    if matches(row[0], row[1]) {
                        out.push(ExhEvent {
                            t1: row[2] - row[0],
                            t2: row[2],
                            dv: row[1],
                        });
                    }
                    true
                })?;
            }
            QueryPlan::Index => {
                let lo = [f64::NEG_INFINITY, f64::NEG_INFINITY];
                let hi = [region.t, f64::INFINITY];
                let mut rowbuf = Vec::new();
                let mut rids = Vec::new();
                self.table.index_scan("by_dt_dv", &lo, &hi, |rid, cols| {
                    rows_considered += 1;
                    if matches(cols[0], cols[1]) {
                        rids.push(rid);
                    }
                    true
                })?;
                for rid in rids {
                    self.table.fetch(rid, &mut rowbuf)?;
                    out.push(ExhEvent {
                        t1: rowbuf[2] - rowbuf[0],
                        t2: rowbuf[2],
                        dv: rowbuf[1],
                    });
                }
            }
        }
        out.sort_by(|a, b| a.t1.total_cmp(&b.t1).then(a.t2.total_cmp(&b.t2)));
        let wall = start.elapsed().as_secs_f64();
        let stats = QueryStats {
            wall_seconds: wall,
            rows_considered,
            results: out.len() as u64,
            io: self.db.stats().since(&io_before),
            phases: Vec::new(),
        };
        Ok((out, stats))
    }

    /// Drops the buffer pool (cold-cache mode).
    pub fn clear_cache(&self) -> Result<()> {
        self.db.clear_cache()
    }

    /// Size statistics.
    pub fn stats(&self) -> ExhStats {
        ExhStats {
            n_observations: self.n_observations,
            n_rows: self.table.num_rows(),
            feature_payload_bytes: self.table.payload_bytes(),
            heap_bytes: self.table.heap_bytes(),
            index_bytes: self.table.index_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorgen::HOUR;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("segdiff-exh-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn series() -> TimeSeries {
        // 10, 9, 7, 4, 4, 5 at 5-minute spacing: drops of up to -6.
        TimeSeries::from_parts(
            vec![0.0, 300.0, 600.0, 900.0, 1200.0, 1500.0],
            vec![10.0, 9.0, 7.0, 4.0, 4.0, 5.0],
        )
    }

    #[test]
    fn row_count_is_pairs_within_window() {
        let dir = tmpdir("rows");
        let mut exh = ExhIndex::create(&dir, 600.0, 128).unwrap();
        exh.ingest_series(&series()).unwrap();
        // Window of 600 s = 2 predecessors per point (after the first two):
        // 0 + 1 + 2 + 2 + 2 + 2 = 9 rows.
        assert_eq!(exh.stats().n_rows, 9);
        assert_eq!(exh.stats().feature_payload_bytes, 9 * 3 * 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_matches_brute_force() {
        let dir = tmpdir("bf");
        let mut exh = ExhIndex::create(&dir, 2.0 * HOUR, 128).unwrap();
        exh.ingest_series(&series()).unwrap();
        exh.finish().unwrap();
        let region = QueryRegion::drop(900.0, -3.0);
        let (events, _) = exh.query(&region, QueryPlan::SeqScan).unwrap();
        // Drops of <= -3 within 900 s among sampled pairs:
        // (0,900): -6? v900-v0 = 4-10 = -6 yes; (300,900): -5; (600,900): -3;
        // (0,600): -3; (300,1200): -5; (600,1200): -3; (900,1500)? dv=+1 no;
        // (600,1500): -2 no; (0,300): -1 no. (300,600)? -2 no.
        // (1200, ...)? +1 no. Within dt <= 900: pairs listed above.
        let expected: Vec<(f64, f64)> = vec![
            (0.0, 600.0),
            (0.0, 900.0),
            (300.0, 900.0),
            (300.0, 1200.0),
            (600.0, 900.0),
            (600.0, 1200.0),
        ];
        let got: Vec<(f64, f64)> = events.iter().map(|e| (e.t1, e.t2)).collect();
        assert_eq!(got, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_plan_matches_scan() {
        let dir = tmpdir("plans");
        let mut exh = ExhIndex::create(&dir, 2.0 * HOUR, 128).unwrap();
        let s: TimeSeries = (0..500)
            .map(|i| (i as f64 * 300.0, ((i as f64) / 5.0).sin() * 4.0))
            .collect();
        exh.ingest_series(&s).unwrap();
        exh.finish().unwrap();
        exh.build_indexes().unwrap();
        for (t, v) in [(HOUR, -3.0), (0.5 * HOUR, -1.0)] {
            let region = QueryRegion::drop(t, v);
            let (scan, _) = exh.query(&region, QueryPlan::SeqScan).unwrap();
            let (idx, _) = exh.query(&region, QueryPlan::Index).unwrap();
            assert_eq!(scan, idx);
            assert!(!scan.is_empty());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jump_search_mirror() {
        let dir = tmpdir("jump");
        let mut exh = ExhIndex::create(&dir, HOUR, 128).unwrap();
        exh.ingest_series(&series()).unwrap();
        let (events, _) = exh
            .query(&QueryRegion::jump(600.0, 1.0), QueryPlan::SeqScan)
            .unwrap();
        // Rises of >= 1 within 600 s: (900, 1500) and (1200, 1500), both +1.
        let got: Vec<(f64, f64)> = events.iter().map(|e| (e.t1, e.t2)).collect();
        assert_eq!(got, vec![(900.0, 1500.0), (1200.0, 1500.0)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
