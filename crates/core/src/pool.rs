//! A fixed-size fan-out worker pool for query execution.
//!
//! [`run_on_pool`] runs `n` independent tasks on at most `threads` OS
//! threads and returns the results in task order. It is the shared
//! execution primitive behind [`crate::TransectIndex::query_all`] and
//! [`crate::refine::refine_results_with_threads`]: scoped threads pull
//! task indices from a shared atomic dispenser (the same bounded-worker
//! shape as the HTTP server's accept queue), so an uneven workload —
//! one slow sensor, one dense result chunk — keeps every thread busy
//! instead of stalling a static partition.
//!
//! Tasks must be independent: the pool provides no ordering between
//! them, only that every task runs exactly once and results come back
//! indexed. Determinism is therefore the caller's property — a task's
//! output may not depend on thread count or schedule — and the
//! integration tests assert exactly that across `--threads 1` and
//! `--threads 8`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads the hardware can actually run at once. Spawning more
/// than this buys no parallelism and costs a thread spawn per worker,
/// so [`run_on_pool`] caps its pool here: on a single-core host the
/// fan-out degrades to the plain sequential loop (same results — task
/// outputs never depend on schedule) instead of paying for threads that
/// would only time-slice.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs tasks `0..n` through `f` on a pool of at most `threads` scoped
/// worker threads (further capped at [`hardware_threads`]); returns the
/// outputs in task-index order.
///
/// An effective pool of one thread (or `n <= 1`) runs inline on the
/// caller's thread with no pool at all, so single-threaded execution is
/// exactly the plain sequential loop. A panicking task propagates to
/// the caller once the scope joins, like the sequential loop would.
pub fn run_on_pool<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_on_pool_uncapped(threads.min(hardware_threads()), n, f)
}

/// [`run_on_pool`] without the hardware cap — the tests call this
/// directly so the threaded path is exercised even on a one-core CI
/// runner, where the public entry point would always run inline.
fn run_on_pool_uncapped<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    obs::global().counter("parallel.jobs").inc();
    obs::global().counter("parallel.tasks").add(n as u64);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // The caller's trace id follows the fan-out onto the worker threads,
    // so spans recorded inside tasks still carry the request's id.
    let trace_id = obs::current_trace_id().unwrap_or(0);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| {
                let _scope = obs::TraceIdScope::enter(trace_id);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .filter_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_keep_task_order() {
        for threads in [1, 2, 8] {
            let out = run_on_pool_uncapped(threads, 100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, want, "threads={threads}");
        }
        // The public entry agrees with the uncapped pool.
        let out = run_on_pool(8, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let out = run_on_pool_uncapped(4, 1000, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(ran.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn zero_tasks_and_oversized_pool() {
        let out: Vec<u32> = run_on_pool_uncapped(8, 0, |_| 1);
        assert!(out.is_empty());
        let out = run_on_pool_uncapped(64, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn task_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run_on_pool_uncapped(4, 16, |i| {
                assert!(i != 7, "boom");
                i
            })
        });
        assert!(r.is_err(), "panic in a task must reach the caller");
    }
}
