//! Crash recovery: log replay and logical truncation to the last commit.
//!
//! [`recover`] runs at raw-file level, before any [`crate::Database`]
//! structure is built, and restores the directory to the state of the
//! last durable commit point:
//!
//! 1. **Scan** `wal.log`, stopping at the first torn or garbled record
//!    (bad magic / bad CRC / short frame). The log always begins with a
//!    checkpoint, so a log that is *only* that checkpoint means the last
//!    shutdown was clean and recovery is a no-op.
//! 2. **Replay** every valid page image into its file (full after-images
//!    are idempotent, so images past the last commit are harmless).
//! 3. **Truncate logically** to the last commit's per-table row counts:
//!    chop each heap file to the committed page count, rewrite the
//!    per-page slot counts, zero the uncommitted tail slots, and restore
//!    the meta-page row count. Tables created after the last commit are
//!    removed (file + catalog line) — they never reached a durable state.
//! 4. **Drop B+tree files.** Index pages are not WAL-logged; on an
//!    unclean shutdown every `*.idx` file is deleted and
//!    [`crate::Database::open`] rebuilds it from the (recovered) heap via
//!    the same bulk-load path that created it, which is deterministic.
//!
//! Anything inconsistent with the committed state — a heap shorter than
//! its committed rows, a bad heap magic — is a typed
//! [`StoreError::Corrupt`], never a panic.

use crate::error::Result;
use crate::wal::{self, CommitState, Record, WAL_FILE};
use crate::{StoreError, PAGE_SIZE};
use std::collections::HashSet;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

const HEAP_MAGIC: u32 = 0x5344_4850; // keep in sync with heap.rs
const PAGE_HDR: usize = 8;

/// What [`recover`] did, surfaced through
/// [`crate::Database::recovery_report`] and `segdiff recover`.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// True when the log held nothing beyond its checkpoint: the last
    /// shutdown was clean and no replay happened.
    pub clean: bool,
    /// Valid WAL records scanned (checkpoint included).
    pub scanned_records: u64,
    /// Page images written back into data files.
    pub replayed_pages: u64,
    /// Bytes of torn/garbled log tail discarded.
    pub torn_bytes: u64,
    /// LSN of the last valid record.
    pub last_lsn: u64,
    /// LSN of the checkpoint the log begins with.
    pub checkpoint_lsn: u64,
    /// Uncommitted rows removed by logical truncation.
    pub truncated_rows: u64,
    /// `*.idx` files deleted (open() rebuilds them from the heaps).
    pub dropped_indexes: u64,
    /// Tables created after the last commit and therefore removed.
    pub pruned_tables: Vec<String>,
    /// The committed state recovery restored: per-table row counts and
    /// the application blob of the last commit.
    pub committed: CommitState,
}

/// Recovers the database directory `dir` to its last commit point.
/// Call only when `dir/wal.log` exists; a clean log is a cheap no-op.
pub fn recover(dir: &Path) -> Result<RecoveryReport> {
    let scan = wal::scan(&dir.join(WAL_FILE))?;
    let mut report = RecoveryReport {
        torn_bytes: scan.torn_bytes,
        scanned_records: scan.records.len() as u64,
        ..RecoveryReport::default()
    };
    let Some((first_lsn, Record::Checkpoint(_))) = scan.records.first() else {
        return Err(StoreError::Corrupt(
            "wal.log does not begin with a valid checkpoint record".into(),
        ));
    };
    report.checkpoint_lsn = *first_lsn;
    report.last_lsn = scan.records.last().map(|(l, _)| *l).unwrap_or(0);

    // Committed state: the last commit or checkpoint in the valid prefix.
    let committed = scan
        .records
        .iter()
        .rev()
        .find_map(|(_, r)| match r {
            Record::Commit(s) | Record::Checkpoint(s) => Some(s.clone()),
            _ => None,
        })
        .ok_or_else(|| StoreError::Corrupt("wal holds no checkpoint or commit record".into()))?;
    report.committed = committed;

    if scan.records.len() == 1 && scan.torn_bytes == 0 {
        report.clean = true;
        return Ok(report);
    }

    // Unclean shutdown: replay all valid page images in log order.
    obs::global().counter("recovery.runs").inc();
    let replayed = obs::global().counter("wal.replayed_records");
    for (_, rec) in &scan.records {
        if let Record::PageImage { file, pid, image } = rec {
            write_image(&dir.join(file), *pid, image)?;
            report.replayed_pages += 1;
        }
        replayed.inc();
    }

    // Logical truncation of every committed heap, then removal of
    // anything that never reached a commit.
    let committed_names: HashSet<&str> = report
        .committed
        .tables
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    for (name, nrows) in &report.committed.tables {
        report.truncated_rows += truncate_heap(&dir.join(format!("{name}.tbl")), *nrows)?;
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let fname = entry.file_name();
        let Some(fname) = fname.to_str() else {
            continue;
        };
        if let Some(stem) = fname.strip_suffix(".tbl") {
            if !committed_names.contains(stem) {
                std::fs::remove_file(entry.path())?;
                report.pruned_tables.push(stem.to_string());
            }
        } else if fname.ends_with(".idx") {
            std::fs::remove_file(entry.path())?;
            report.dropped_indexes += 1;
        }
    }
    prune_catalog(dir, &report.pruned_tables)?;
    Ok(report)
}

/// Writes one full page image at its offset, extending the file if the
/// page lies beyond the current end (the zero-fill of allocation may
/// not have reached disk).
fn write_image(path: &Path, pid: u32, image: &[u8; PAGE_SIZE]) -> Result<()> {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let off = pid as u64 * PAGE_SIZE as u64;
    let len = f.metadata()?.len();
    if len < off {
        f.set_len(off)?;
    }
    f.seek(SeekFrom::Start(off))?;
    f.write_all(image)?;
    Ok(())
}

/// Truncates a heap file to exactly `nrows` committed rows: page count,
/// per-page slot counts, tail-slot contents and the meta row count all
/// restored. Returns how many uncommitted rows were discarded.
fn truncate_heap(path: &Path, nrows: u64) -> Result<u64> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if len < PAGE_SIZE as u64 {
        return Err(StoreError::Corrupt(format!(
            "{}: shorter than its meta page",
            path.display()
        )));
    }
    let mut page = vec![0u8; PAGE_SIZE];
    f.seek(SeekFrom::Start(0))?;
    f.read_exact(&mut page)?;
    let magic = u32::from_le_bytes([page[0], page[1], page[2], page[3]]);
    if magic != HEAP_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "{}: bad heap magic after replay",
            path.display()
        )));
    }
    let ncols = u16::from_le_bytes([page[4], page[5]]) as usize;
    if ncols == 0 || ncols * 8 > PAGE_SIZE - PAGE_HDR {
        return Err(StoreError::Corrupt(format!(
            "{}: impossible column count {ncols}",
            path.display()
        )));
    }
    match u16::from_le_bytes([page[16], page[17]]) {
        0 => {}
        1 => return truncate_columnar_heap(path, &mut f, len, ncols, nrows),
        other => {
            return Err(StoreError::Corrupt(format!(
                "{}: unknown heap page format {other}",
                path.display()
            )))
        }
    }
    let rpp = (PAGE_SIZE - PAGE_HDR) / (ncols * 8);
    let need_pages = 1 + nrows.div_ceil(rpp as u64);
    let old_pages = len / PAGE_SIZE as u64;
    if old_pages < need_pages {
        return Err(StoreError::Corrupt(format!(
            "{}: {nrows} committed rows need {need_pages} pages, file has {old_pages}",
            path.display()
        )));
    }

    // Count the rows visible before truncation (for the report).
    let mut observed = 0u64;
    for pid in 1..old_pages {
        f.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        let mut hdr = [0u8; 2];
        f.read_exact(&mut hdr)?;
        observed += (u16::from_le_bytes(hdr) as u64).min(rpp as u64);
    }

    f.set_len(need_pages * PAGE_SIZE as u64)?;
    for pid in 1..need_pages {
        let expect = (nrows - (pid - 1) * rpp as u64).min(rpp as u64) as u16;
        f.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        f.read_exact(&mut page)?;
        page[0..2].copy_from_slice(&expect.to_le_bytes());
        // Zero the uncommitted tail slots so stale row bytes cannot leak.
        let used = PAGE_HDR + expect as usize * ncols * 8;
        for b in &mut page[used..] {
            *b = 0;
        }
        f.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        f.write_all(&page)?;
    }

    // Restore the committed row count on the meta page.
    f.seek(SeekFrom::Start(8))?;
    f.write_all(&nrows.to_le_bytes())?;
    Ok(observed.saturating_sub(nrows))
}

/// Columnar variant of the logical truncation: pages hold a variable
/// number of rows, so the committed boundary is found by walking the
/// page headers, and a boundary page that carries uncommitted tail rows
/// is decoded and re-encoded with the committed prefix only (fewer rows
/// never need more bits, so the prefix always fits the page).
fn truncate_columnar_heap(
    path: &Path,
    f: &mut std::fs::File,
    len: u64,
    ncols: usize,
    nrows: u64,
) -> Result<u64> {
    let old_pages = len / PAGE_SIZE as u64;
    let mut page = vec![0u8; PAGE_SIZE];
    let mut observed = 0u64;
    let mut cum = 0u64;
    // Last page holding committed rows, and how many of its rows are
    // committed (a post-commit image may have appended more).
    let mut boundary: Option<(u64, u64, u64)> = None; // (pid, keep, have)
    for pid in 1..old_pages {
        f.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        let mut hdr = [0u8; 2];
        f.read_exact(&mut hdr)?;
        let n = u16::from_le_bytes(hdr) as u64;
        observed += n;
        if cum < nrows {
            let keep = n.min(nrows - cum);
            if keep > 0 {
                boundary = Some((pid, keep, n));
            }
            cum += keep;
        }
    }
    if cum < nrows {
        return Err(StoreError::Corrupt(format!(
            "{}: {nrows} committed rows, heap holds only {cum}",
            path.display()
        )));
    }
    let need_pages = boundary.map_or(1, |(pid, _, _)| pid + 1);
    if let Some((pid, keep, have)) = boundary {
        if keep < have {
            // Re-encode the boundary page with the committed prefix.
            f.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
            f.read_exact(&mut page)?;
            let mut cols: Vec<Vec<f64>> = vec![Vec::new(); ncols];
            let got = crate::colpage::decode_into(&page, ncols, &mut cols)? as u64;
            if got < keep {
                return Err(StoreError::Corrupt(format!(
                    "{}: boundary page {pid} decodes {got} rows, need {keep}",
                    path.display()
                )));
            }
            let mut builder = crate::colpage::ColPageBuilder::new(ncols);
            let mut row = vec![0.0f64; ncols];
            for r in 0..keep as usize {
                crate::colpage::gather_row(&cols, r, &mut row);
                assert!(builder.try_push(&row), "committed prefix must fit");
            }
            let mut buf = [0u8; PAGE_SIZE];
            builder.seal_into(&mut buf);
            f.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
            f.write_all(&buf)?;
        }
    }
    f.set_len(need_pages * PAGE_SIZE as u64)?;
    f.seek(SeekFrom::Start(8))?;
    f.write_all(&nrows.to_le_bytes())?;
    Ok(observed.saturating_sub(nrows))
}

/// Drops catalog lines referring to pruned (uncommitted) tables, leaving
/// the committed prefix intact. Atomic rewrite (temp + rename).
fn prune_catalog(dir: &Path, pruned: &[String]) -> Result<()> {
    if pruned.is_empty() {
        return Ok(());
    }
    let path = dir.join("catalog.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Ok(());
    };
    let gone: HashSet<&str> = pruned.iter().map(|s| s.as_str()).collect();
    let kept: Vec<&str> = text
        .lines()
        .filter(|line| {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["table", name, ..] => !gone.contains(name),
                ["index", tname, ..] => !gone.contains(tname),
                _ => true,
            }
        })
        .collect();
    let tmp = dir.join("catalog.txt.tmp");
    std::fs::write(&tmp, kept.join("\n"))?;
    std::fs::rename(&tmp, &path)?;
    wal::sync_dir(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Wal;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pagestore-rec-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Builds a raw heap file: meta page + data pages with `counts`
    /// rows each, every cell set to the row's global ordinal.
    fn write_heap(path: &Path, ncols: usize, counts: &[u16]) {
        let mut data = vec![0u8; (1 + counts.len()) * PAGE_SIZE];
        data[0..4].copy_from_slice(&HEAP_MAGIC.to_le_bytes());
        data[4..6].copy_from_slice(&(ncols as u16).to_le_bytes());
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        data[8..16].copy_from_slice(&total.to_le_bytes());
        let mut ordinal = 0f64;
        for (i, &c) in counts.iter().enumerate() {
            let base = (i + 1) * PAGE_SIZE;
            data[base..base + 2].copy_from_slice(&c.to_le_bytes());
            for slot in 0..c as usize {
                let off = base + PAGE_HDR + slot * ncols * 8;
                for col in 0..ncols {
                    data[off + col * 8..off + col * 8 + 8].copy_from_slice(&ordinal.to_le_bytes());
                }
                ordinal += 1.0;
            }
        }
        std::fs::write(path, data).unwrap();
    }

    #[test]
    fn clean_log_is_a_noop() {
        let dir = tmpdir("clean");
        let state = CommitState {
            tables: vec![("t".into(), 7)],
            blob: b"meta".to_vec(),
        };
        Wal::create(&dir, &state, false, 8).unwrap();
        let report = recover(&dir).unwrap();
        assert!(report.clean);
        assert_eq!(report.committed, state);
        assert_eq!(report.replayed_pages, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncates_uncommitted_tail_rows() {
        let dir = tmpdir("trunc");
        // Heap with 2 cols -> 255 rows/page; 255 + 40 rows on disk, but
        // only 264 committed.
        let heap = dir.join("t.tbl");
        write_heap(&heap, 2, &[255, 40]);
        let state = CommitState {
            tables: vec![("t".into(), 264)],
            blob: Vec::new(),
        };
        let wal = Wal::create(&dir, &state, false, 8).unwrap();
        // A post-checkpoint commit makes the log unclean with the same
        // counts (models a crash right after a commit).
        wal.append_commit(&state).unwrap();
        drop(wal);
        let report = recover(&dir).unwrap();
        assert!(!report.clean);
        assert_eq!(report.truncated_rows, 31);
        let data = std::fs::read(&heap).unwrap();
        assert_eq!(data.len(), 3 * PAGE_SIZE);
        assert_eq!(
            u64::from_le_bytes(data[8..16].try_into().unwrap()),
            264,
            "meta row count restored"
        );
        let p2 = 2 * PAGE_SIZE;
        assert_eq!(u16::from_le_bytes(data[p2..p2 + 2].try_into().unwrap()), 9);
        // Slot 9 (first uncommitted) is zeroed.
        let off = p2 + PAGE_HDR + 9 * 16;
        assert!(data[off..off + 16].iter().all(|&b| b == 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replays_images_and_drops_indexes() {
        let dir = tmpdir("replay");
        let heap = dir.join("t.tbl");
        write_heap(&heap, 1, &[3]);
        std::fs::write(dir.join("t.i.idx"), vec![0u8; PAGE_SIZE]).unwrap();
        let state = CommitState {
            tables: vec![("t".into(), 3)],
            blob: Vec::new(),
        };
        let wal = Wal::create(&dir, &state, false, 8).unwrap();
        // Clobber the data page on "disk", but log the good image.
        let mut good = [0u8; PAGE_SIZE];
        good[0..2].copy_from_slice(&3u16.to_le_bytes());
        good[PAGE_HDR] = 0xAB;
        wal.append_image("t.tbl", 1, &good).unwrap();
        wal.append_commit(&state).unwrap();
        drop(wal);
        let mut bad = std::fs::read(&heap).unwrap();
        for b in &mut bad[PAGE_SIZE..] {
            *b = 0xFF;
        }
        std::fs::write(&heap, &bad).unwrap();

        let report = recover(&dir).unwrap();
        assert_eq!(report.replayed_pages, 1);
        assert_eq!(report.dropped_indexes, 1);
        assert!(!dir.join("t.i.idx").exists());
        let data = std::fs::read(&heap).unwrap();
        assert_eq!(data[PAGE_SIZE + PAGE_HDR], 0xAB, "image replayed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prunes_uncommitted_tables_and_catalog() {
        let dir = tmpdir("prune");
        write_heap(&dir.join("old.tbl"), 1, &[2]);
        write_heap(&dir.join("new.tbl"), 1, &[5]);
        std::fs::write(
            dir.join("catalog.txt"),
            "table old c\nindex old i 0\ntable new c",
        )
        .unwrap();
        let state = CommitState {
            tables: vec![("old".into(), 2)],
            blob: Vec::new(),
        };
        let wal = Wal::create(&dir, &state, false, 8).unwrap();
        wal.append_commit(&state).unwrap();
        drop(wal);
        let report = recover(&dir).unwrap();
        assert_eq!(report.pruned_tables, vec!["new".to_string()]);
        assert!(!dir.join("new.tbl").exists());
        let cat = std::fs::read_to_string(dir.join("catalog.txt")).unwrap();
        assert_eq!(cat, "table old c\nindex old i 0");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_log_head_is_typed_error() {
        let dir = tmpdir("badhead");
        std::fs::write(dir.join(WAL_FILE), b"not a wal").unwrap();
        assert!(matches!(recover(&dir), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_heap_is_typed_error() {
        let dir = tmpdir("short");
        // Commit claims 5000 rows but the heap has one data page.
        write_heap(&dir.join("t.tbl"), 1, &[10]);
        let state = CommitState {
            tables: vec![("t".into(), 5000)],
            blob: Vec::new(),
        };
        let wal = Wal::create(&dir, &state, false, 8).unwrap();
        wal.append_commit(&state).unwrap();
        drop(wal);
        assert!(matches!(recover(&dir), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
