//! Minimal HTTP/1.1 framing over blocking byte streams.
//!
//! Only the subset the query service needs: request/response lines,
//! `Content-Length`-delimited bodies, keep-alive, and (for the standing
//! query live feed) `Transfer-Encoding: chunked` responses. No
//! multipart, no TLS. The same framing code serves both sides — the
//! server parses [`Request`]s, the load generator and `segdiff watch`
//! parse responses — so a protocol bug cannot hide behind an asymmetric
//! implementation.

use obs::json::Json;
use std::io::{self, BufRead, Write};

/// Upper bound on the request line plus all header bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on a request or response body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Why reading a message failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before a request line arrived
    /// (normal end of a keep-alive connection).
    Closed,
    /// Headers or body exceeded the configured bounds.
    TooLarge,
    /// The bytes did not form a valid HTTP/1.x message.
    Malformed(String),
    /// Transport error (includes read timeouts).
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::TooLarge => write!(f, "message too large"),
            HttpError::Malformed(m) => write!(f, "malformed message: {m}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper case (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    keep_alive: bool,
}

impl Request {
    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open.
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not UTF-8".into()))
    }

    /// Value of `key` in the query string (`a=1&b=2` form, no decoding).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

fn read_line_limited(
    r: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    *budget = budget.checked_sub(n).ok_or(HttpError::TooLarge)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn read_headers(
    r: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(r, budget)?
            .ok_or_else(|| HttpError::Malformed("eof in headers".into()))?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line: {line}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn content_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    match headers.iter().find(|(k, _)| k == "content-length") {
        None => Ok(0),
        Some((_, v)) => {
            let n: usize = v
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length: {v}")))?;
            if n > MAX_BODY_BYTES {
                Err(HttpError::TooLarge)
            } else {
                Ok(n)
            }
        }
    }
}

fn read_body(r: &mut impl BufRead, len: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Reads one request from `r`. [`HttpError::Closed`] means the peer hung
/// up cleanly between requests.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = match read_line_limited(r, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.0");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let headers = read_headers(r, &mut budget)?;
    let body = read_body(r, content_length(&headers)?)?;
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    })
}

/// Reads one response, returning `(status, body)`.
pub fn read_response(r: &mut impl BufRead) -> Result<(u16, Vec<u8>), HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = match read_line_limited(r, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    let mut parts = line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty status line".into()))?;
    if !version.starts_with("HTTP/") {
        return Err(HttpError::Malformed(format!("bad status line: {line}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line: {line}")))?;
    let headers = read_headers(r, &mut budget)?;
    let body = read_body(r, content_length(&headers)?)?;
    Ok((status, body))
}

/// Writes a request with an optional body to `w`.
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    target: &str,
    host: &str,
    body: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or("");
    let msg = format!(
        "{method} {target} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
        body.len()
    );
    w.write_all(msg.as_bytes())?;
    w.flush()
}

/// Canonical reason phrase for a status code.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP response ready for serialization.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether to close the connection after this response.
    pub close: bool,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// A JSON response.
    pub fn json(status: u16, doc: &Json) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: doc.to_string_compact().into_bytes(),
            close: false,
        }
    }

    /// A binary response (WAL shipping, file chunks).
    pub fn binary(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type: "application/octet-stream",
            body,
            close: false,
        }
    }

    /// A JSON error response `{"error": message}`.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        Response::json(status, &Json::obj([("error", Json::Str(message.into()))]))
    }

    /// Marks the response as connection-closing.
    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    /// Serializes status line, headers and body to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        );
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Starts a `Transfer-Encoding: chunked` response on `w`: status line
/// and headers only. Bodies follow as [`write_chunk`] calls terminated
/// by [`finish_chunks`]. Chunked responses always close the connection
/// afterwards — a live feed has no framing-safe way back to keep-alive.
pub fn write_chunked_head(w: &mut impl Write, status: u16, content_type: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
    );
    w.write_all(head.as_bytes())?;
    w.flush()
}

/// Writes one non-empty chunk (`<hex-size>\r\n<bytes>\r\n`) and flushes,
/// so a streaming client sees the bytes immediately. Empty input is a
/// no-op: a zero-length chunk would be the stream terminator.
pub fn write_chunk(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    if bytes.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", bytes.len())?;
    w.write_all(bytes)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked body (`0\r\n\r\n`, no trailers).
pub fn finish_chunks(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Reads a chunked response's status line and headers, leaving `r`
/// positioned at the first chunk for [`read_chunk`]. Returns the status
/// and headers so the caller can check `Transfer-Encoding` itself.
pub fn read_chunked_head(r: &mut impl BufRead) -> Result<(u16, Vec<(String, String)>), HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = match read_line_limited(r, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    let mut parts = line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty status line".into()))?;
    if !version.starts_with("HTTP/") {
        return Err(HttpError::Malformed(format!("bad status line: {line}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line: {line}")))?;
    let headers = read_headers(r, &mut budget)?;
    Ok((status, headers))
}

/// Reads one chunk from a chunked body. `Ok(None)` is the terminating
/// zero-length chunk; [`HttpError::Closed`] means the peer hung up
/// mid-stream (how a live feed ends on server shutdown).
pub fn read_chunk(r: &mut impl BufRead) -> Result<Option<Vec<u8>>, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = match read_line_limited(r, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    // Chunk extensions (`;`-separated) are allowed by the RFC; ignore them.
    let size_str = line.split(';').next().unwrap_or("").trim();
    let size = usize::from_str_radix(size_str, 16)
        .map_err(|_| HttpError::Malformed(format!("bad chunk size: {line:?}")))?;
    if size > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    if size == 0 {
        // Trailer section: read lines until the blank terminator.
        while let Some(l) = read_line_limited(r, &mut budget)? {
            if l.is_empty() {
                break;
            }
        }
        return Ok(None);
    }
    let mut chunk = vec![0u8; size];
    r.read_exact(&mut chunk)?;
    let mut crlf = [0u8; 2];
    r.read_exact(&mut crlf)?;
    if &crlf != b"\r\n" {
        return Err(HttpError::Malformed("chunk not CRLF-terminated".into()));
    }
    Ok(Some(chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /metrics?format=json HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query_param("format"), Some("json"));
        assert!(req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /query HTTP/1.1\r\nContent-Length: 13\r\nConnection: close\r\n\r\n{\"kind\":\"up\"}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_str().unwrap(), "{\"kind\":\"up\"}");
        assert!(!req.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn eof_between_requests_is_closed() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(parse("\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse("GET\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge)));
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::json(200, &Json::obj([("ok", Json::Bool(true))]));
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let (status, body) = read_response(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            Json::parse(std::str::from_utf8(&body).unwrap()).unwrap(),
            Json::obj([("ok", Json::Bool(true))])
        );
    }

    #[test]
    fn chunked_stream_round_trips() {
        let mut buf = Vec::new();
        write_chunked_head(&mut buf, 200, "application/x-ndjson").unwrap();
        write_chunk(&mut buf, b"{\"seq\":1}\n").unwrap();
        write_chunk(&mut buf, b"").unwrap(); // no-op, not a terminator
        write_chunk(&mut buf, b"{\"seq\":2}\n").unwrap();
        finish_chunks(&mut buf).unwrap();

        let mut r = BufReader::new(buf.as_slice());
        let (status, headers) = read_chunked_head(&mut r).unwrap();
        assert_eq!(status, 200);
        assert!(headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v == "chunked"));
        assert_eq!(read_chunk(&mut r).unwrap().unwrap(), b"{\"seq\":1}\n");
        assert_eq!(read_chunk(&mut r).unwrap().unwrap(), b"{\"seq\":2}\n");
        assert!(read_chunk(&mut r).unwrap().is_none());
    }

    #[test]
    fn chunk_reader_rejects_garbage_and_reports_hangup() {
        let mut r = BufReader::new(&b"zz\r\n"[..]);
        assert!(matches!(read_chunk(&mut r), Err(HttpError::Malformed(_))));
        let mut r = BufReader::new(&b""[..]);
        assert!(matches!(read_chunk(&mut r), Err(HttpError::Closed)));
        // Size line present but body truncated mid-chunk.
        let mut r = BufReader::new(&b"a\r\nhalf"[..]);
        assert!(matches!(read_chunk(&mut r), Err(HttpError::Io(_))));
    }

    #[test]
    fn request_round_trips() {
        let mut buf = Vec::new();
        write_request(&mut buf, "POST", "/query", "h", Some("{\"v\":-1.0}")).unwrap();
        let req = read_request(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body_str().unwrap(), "{\"v\":-1.0}");
    }
}
