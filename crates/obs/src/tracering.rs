//! Always-on request tracing: bounded rings of recent traces with
//! tail-sampling for slow and erroring requests.
//!
//! Head-sampling (decide up front whether to trace) loses exactly the
//! requests you want: the slow tail is unknowable until the request
//! finishes. Here every request is traced (span collection is
//! thread-local and cheap), the finished trace is pushed into a
//! fixed-size *recent* ring, and — the tail-sampling step — traces that
//! finished slow or with an error are additionally retained in a
//! separate *slow* ring, so a burst of fast requests can never evict
//! the evidence of the one that mattered.
//!
//! The rings are lock-free at ring level: a single atomic cursor claims
//! a slot, and each slot holds its own tiny mutex guarding an
//! `Option<Arc<TraceRecord>>` swap. Writers never contend unless two
//! requests land on the same slot in the same instant (ring wrap), and
//! readers only clone `Arc`s.

use crate::json_impl::Json;
use crate::span_impl::TraceNode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One finished request, as retained by the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Process-unique id ([`crate::next_trace_id`]).
    pub trace_id: u64,
    /// Request name (e.g. `POST /query`).
    pub name: String,
    /// Request start, unix milliseconds.
    pub started_ms: u64,
    /// End-to-end wall time in nanoseconds.
    pub wall_nanos: u64,
    /// HTTP status (or equivalent) of the response.
    pub status: u16,
    /// Whether the request failed (status >= 400).
    pub error: bool,
    /// The collected span tree, if span collection yielded one.
    pub root: Option<TraceNode>,
}

impl TraceRecord {
    /// Summary JSON (no span tree): one line of a slow-query log.
    pub fn to_json_summary(&self) -> Json {
        Json::obj([
            ("trace_id", Json::from(self.trace_id)),
            ("name", Json::from(self.name.as_str())),
            ("started_ms", Json::from(self.started_ms)),
            ("wall_nanos", Json::from(self.wall_nanos)),
            ("status", Json::from(self.status as u64)),
            ("error", Json::from(self.error)),
        ])
    }

    /// Full JSON including the span tree under `"trace"`.
    pub fn to_json_full(&self) -> Json {
        let mut j = self.to_json_summary();
        if let (Json::Object(fields), Some(root)) = (&mut j, &self.root) {
            fields.push(("trace".to_string(), root.to_json()));
        }
        j
    }
}

/// Fixed-size overwrite ring of `Arc<TraceRecord>`s.
struct Ring {
    slots: Vec<Mutex<Option<Arc<TraceRecord>>>>,
    cursor: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    fn push(&self, rec: Arc<TraceRecord>) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        *self.slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(rec);
    }

    /// Up to `n` most recent records, newest first.
    fn recent(&self, n: usize) -> Vec<Arc<TraceRecord>> {
        let len = self.slots.len();
        let cursor = self.cursor.load(Ordering::Relaxed) as usize;
        let mut out = Vec::new();
        for back in 1..=len.min(n.max(1)) {
            // Walk backwards from the most recently claimed slot.
            let i = (cursor + len - back) % len;
            if let Some(rec) = self.slots[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
            {
                out.push(Arc::clone(rec));
            }
        }
        out
    }
}

/// The tail-sampling trace store: a *recent* ring holding the last N
/// requests regardless of outcome, and a *slow* ring that only admits
/// requests that finished slow or erroring.
pub struct TraceStore {
    recent: Ring,
    slow: Ring,
    slow_threshold_nanos: AtomicU64,
    recorded: Arc<crate::Counter>,
    slow_retained: Arc<crate::Counter>,
}

impl TraceStore {
    /// Creates a store with `recent_capacity` / `slow_capacity` slots
    /// and the given slow threshold. Counters register in [`crate::global`].
    pub fn new(
        recent_capacity: usize,
        slow_capacity: usize,
        slow_threshold: Duration,
    ) -> TraceStore {
        let registry = crate::global();
        TraceStore {
            recent: Ring::new(recent_capacity),
            slow: Ring::new(slow_capacity),
            slow_threshold_nanos: AtomicU64::new(
                slow_threshold.as_nanos().min(u64::MAX as u128) as u64
            ),
            recorded: registry.counter("trace.recorded"),
            slow_retained: registry.counter("trace.slow_retained"),
        }
    }

    /// The current slow threshold.
    pub fn slow_threshold(&self) -> Duration {
        Duration::from_nanos(self.slow_threshold_nanos.load(Ordering::Relaxed))
    }

    /// Whether a request of this duration qualifies for the slow ring.
    pub fn is_slow(&self, wall_nanos: u64) -> bool {
        wall_nanos >= self.slow_threshold_nanos.load(Ordering::Relaxed)
    }

    /// Retains a finished request; returns the shared record. Slow or
    /// erroring requests land in both rings (tail-sampling).
    pub fn record(&self, rec: TraceRecord) -> Arc<TraceRecord> {
        let slow = self.is_slow(rec.wall_nanos) || rec.error;
        let rec = Arc::new(rec);
        self.recorded.inc();
        self.recent.push(Arc::clone(&rec));
        if slow {
            self.slow_retained.inc();
            self.slow.push(Arc::clone(&rec));
        }
        rec
    }

    /// Up to `n` most recent requests, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<TraceRecord>> {
        self.recent.recent(n)
    }

    /// Up to `n` most recent slow/erroring requests, newest first.
    pub fn slow(&self, n: usize) -> Vec<Arc<TraceRecord>> {
        self.slow.recent(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, wall_nanos: u64, status: u16) -> TraceRecord {
        TraceRecord {
            trace_id: id,
            name: "POST /query".to_string(),
            started_ms: 1_000 + id,
            wall_nanos,
            status,
            error: status >= 400,
            root: None,
        }
    }

    #[test]
    fn recent_ring_overwrites_oldest() {
        let store = TraceStore::new(4, 4, Duration::from_secs(1));
        for id in 0..10 {
            store.record(rec(id, 100, 200));
        }
        let recent = store.recent(100);
        assert_eq!(recent.len(), 4);
        let ids: Vec<u64> = recent.iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![9, 8, 7, 6], "newest first");
        assert!(store.slow(100).is_empty());
    }

    #[test]
    fn tail_sampling_retains_slow_and_errors() {
        let store = TraceStore::new(4, 8, Duration::from_millis(1));
        store.record(rec(1, 10, 200)); // fast, ok
        store.record(rec(2, 2_000_000, 200)); // slow
        store.record(rec(3, 10, 500)); // fast, error
        for id in 10..20 {
            store.record(rec(id, 10, 200)); // a burst of fast requests
        }
        // The burst evicted everything interesting from `recent`...
        assert!(store.recent(100).iter().all(|r| r.trace_id >= 10));
        // ...but the slow ring still holds the slow and erroring ones.
        let slow_ids: Vec<u64> = store.slow(100).iter().map(|r| r.trace_id).collect();
        assert_eq!(slow_ids, vec![3, 2]);
    }

    #[test]
    fn json_shapes() {
        let mut r = rec(7, 5_000, 200);
        r.root = Some(TraceNode {
            name: "query".to_string(),
            wall_nanos: 4_500,
            attrs: vec![],
            children: vec![],
        });
        let summary = r.to_json_summary();
        assert!(summary.get("trace").is_none());
        assert_eq!(summary.get("trace_id").and_then(Json::as_u64), Some(7));
        let full = r.to_json_full();
        let tree = full.get("trace").expect("full includes tree");
        assert_eq!(tree.get("name").and_then(Json::as_str), Some("query"));
    }

    #[test]
    fn concurrent_pushes_do_not_lose_ring_shape() {
        let store = Arc::new(TraceStore::new(16, 16, Duration::from_secs(1)));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..500 {
                        store.record(rec(t * 1_000 + i, 100, 200));
                    }
                });
            }
        });
        let recent = store.recent(100);
        assert_eq!(recent.len(), 16, "ring stays full, never corrupt");
    }
}
