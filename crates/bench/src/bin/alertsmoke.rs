//! CI gate for the dogfooded alerting pipeline (DESIGN.md §5g).
//!
//! Two invocations, two verdicts:
//!
//! ```sh
//! alertsmoke --clean --out target/alertsmoke/clean   # nothing may fire
//! alertsmoke --fault --out target/alertsmoke/fault   # the latency jump must fire
//! ```
//!
//! Fault mode arms the query executor's `SEGDIFF_FAULT_SLEEP_MS` hatch
//! in this process's own environment before the first query runs, so
//! every query after the onset delay sleeps — a controlled latency jump
//! the standing `query-latency-jump` rule must detect within the
//! detection bound. The hatch reads its environment once per process,
//! which is why clean and fault are separate runs of this binary.
//!
//! `--out DIR` writes the artifacts CI uploads: `summary.json` (the
//! verdict), `alerts.json` (the server's alert log), and the slow +
//! recent trace rings (the tail-sampled evidence).

use segdiff::alerts::AlertRuleSet;
use segdiff_bench::alertsmoke::{judge, run_alertsmoke, summary_json, SmokeConfig};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    fault: bool,
    out: Option<PathBuf>,
    rules: Option<PathBuf>,
    duration_secs: u64,
    fault_delay_secs: u64,
    fault_sleep_ms: u64,
    sample_ms: u64,
    detect_within_ms: u64,
}

const USAGE: &str = "usage: alertsmoke (--clean | --fault) [--out DIR] [--rules FILE] \
     [--duration-secs N] [--fault-delay-secs N] [--fault-sleep-ms N] \
     [--sample-ms N] [--detect-within-ms N]";

fn parse_args() -> Args {
    let mut mode: Option<bool> = None;
    let mut args = Args {
        fault: false,
        out: None,
        rules: None,
        duration_secs: 8,
        fault_delay_secs: 3,
        fault_sleep_ms: 40,
        sample_ms: 250,
        detect_within_ms: 2_500,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number\n{USAGE}"))
        };
        match a.as_str() {
            "--clean" => mode = Some(false),
            "--fault" => mode = Some(true),
            "--out" => args.out = Some(PathBuf::from(it.next().expect("--out DIR"))),
            "--rules" => args.rules = Some(PathBuf::from(it.next().expect("--rules FILE"))),
            "--duration-secs" => args.duration_secs = num("--duration-secs"),
            "--fault-delay-secs" => args.fault_delay_secs = num("--fault-delay-secs"),
            "--fault-sleep-ms" => args.fault_sleep_ms = num("--fault-sleep-ms"),
            "--sample-ms" => args.sample_ms = num("--sample-ms"),
            "--detect-within-ms" => args.detect_within_ms = num("--detect-within-ms"),
            other => panic!("unknown argument '{other}'\n{USAGE}"),
        }
    }
    args.fault = mode.unwrap_or_else(|| panic!("pick --clean or --fault\n{USAGE}"));
    args
}

fn main() {
    let args = parse_args();
    if args.fault {
        // Must happen before the first query in this process: the hatch
        // caches its configuration on first use.
        std::env::set_var("SEGDIFF_FAULT_SLEEP_MS", args.fault_sleep_ms.to_string());
        std::env::set_var(
            "SEGDIFF_FAULT_DELAY_SECS",
            args.fault_delay_secs.to_string(),
        );
    }
    let rules = match &args.rules {
        Some(path) => AlertRuleSet::load(path).expect("load alert rules"),
        None => AlertRuleSet::defaults(),
    };
    let mut config = SmokeConfig::ci(args.fault, rules);
    config.duration = Duration::from_secs(args.duration_secs);
    config.fault_delay = Duration::from_secs(args.fault_delay_secs);
    config.sample_period = Duration::from_millis(args.sample_ms.max(10));

    eprintln!(
        "alertsmoke: {} run, {} s load{}, sampling every {} ms",
        if args.fault { "fault" } else { "clean" },
        args.duration_secs,
        if args.fault {
            format!(
                " (fault: +{} ms per query after {} s)",
                args.fault_sleep_ms, args.fault_delay_secs
            )
        } else {
            String::new()
        },
        config.sample_period.as_millis(),
    );
    let outcome = run_alertsmoke(&config).expect("alertsmoke run");
    let failures = judge(&outcome, Duration::from_millis(args.detect_within_ms));
    let summary = summary_json(&outcome, &failures);

    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create --out dir");
        std::fs::write(dir.join("summary.json"), summary.to_string()).expect("write summary");
        std::fs::write(dir.join("alerts.json"), &outcome.alerts_body).expect("write alerts");
        std::fs::write(dir.join("traces-slow.json"), &outcome.slow_traces_body)
            .expect("write slow traces");
        std::fs::write(dir.join("traces-recent.json"), &outcome.recent_traces_body)
            .expect("write recent traces");
        eprintln!("alertsmoke: artifacts in {}", dir.display());
    }

    println!("{summary}");
    if failures.is_empty() {
        eprintln!(
            "alertsmoke: PASS ({} ok, {:.0} qps, fired {:?}{})",
            outcome.ok,
            outcome.qps,
            outcome.fired_rules,
            outcome
                .detection_ms
                .map_or(String::new(), |ms| format!(", detected in {ms} ms")),
        );
    } else {
        for failure in &failures {
            eprintln!("alertsmoke: FAIL: {failure}");
        }
        std::process::exit(1);
    }
}
