//! Figures 16–24 counterpart: representative query regions over both
//! systems, both plans, warm and cold caches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use featurespace::QueryRegion;
use segdiff::QueryPlan;
use segdiff_bench::{build_exh, build_segdiff, default_series};
use sensorgen::HOUR;
use std::hint::black_box;
use std::time::Duration;

fn bench_random_queries(c: &mut Criterion) {
    let series = default_series(10, 1);
    let w = 8.0 * HOUR;
    let base = std::env::temp_dir().join(format!("segdiff-bench-f16-{}", std::process::id()));
    let seg = build_segdiff(&series, 0.2, w, 8192, &base.join("seg"), true);
    let exh = build_exh(&series, w, 8192, &base.join("exh"), true);

    // Representative corners of query space (T hours, V):
    // easy (small T, deep V), default, hard (large T, shallow V).
    let regions = [
        ("easy", QueryRegion::drop(0.5 * HOUR, -8.0)),
        ("default", QueryRegion::drop(1.0 * HOUR, -3.0)),
        ("hard", QueryRegion::drop(7.0 * HOUR, -1.0)),
    ];

    let mut group = c.benchmark_group("fig17_20/warm");
    group.sample_size(15);
    for (label, region) in &regions {
        for (plan_name, plan) in [("scan", QueryPlan::SeqScan), ("index", QueryPlan::Index)] {
            group.bench_with_input(
                BenchmarkId::new(format!("segdiff_{plan_name}"), label),
                region,
                |b, region| b.iter(|| black_box(seg.index.query(region, plan).unwrap().0.len())),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("exh_{plan_name}"), label),
                region,
                |b, region| b.iter(|| black_box(exh.index.query(region, plan).unwrap().0.len())),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig23_24/cold");
    group.sample_size(10);
    let region = QueryRegion::drop(1.0 * HOUR, -3.0);
    group.bench_function("segdiff_scan", |b| {
        b.iter(|| {
            seg.index.clear_cache().unwrap();
            black_box(
                seg.index
                    .query(&region, QueryPlan::SeqScan)
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    group.bench_function("exh_scan", |b| {
        b.iter(|| {
            exh.index.clear_cache().unwrap();
            black_box(
                exh.index
                    .query(&region, QueryPlan::SeqScan)
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    group.bench_function("segdiff_index", |b| {
        b.iter(|| {
            seg.index.clear_cache().unwrap();
            black_box(seg.index.query(&region, QueryPlan::Index).unwrap().0.len())
        })
    });
    group.bench_function("exh_index", |b| {
        b.iter(|| {
            exh.index.clear_cache().unwrap();
            black_box(exh.index.query(&region, QueryPlan::Index).unwrap().0.len())
        })
    });
    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_random_queries
}
criterion_main!(benches);
