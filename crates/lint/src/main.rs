//! `segdiff-lint` — CLI for the workspace invariant checker.
//!
//! ```text
//! segdiff-lint [--root DIR] [--rules L1,L3] [--format text|json]
//!              [--list] [--emit-metrics-table] [--emit-routes-table]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config error.
//! `--format json` emits the versioned report schema documented in the
//! README "Static analysis" section (schema, files analyzed,
//! wall-clock, per-rule counts, diagnostics).

use lint::diag::{render_report, Report, Rule};
use lint::{find_root, load_registry, load_routes, run, Options};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("segdiff-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut rules: Option<BTreeSet<Rule>> = None;
    let mut json = false;
    let mut list = false;
    let mut emit_metrics = false;
    let mut emit_routes = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(v));
            }
            "--rules" => {
                let v = args.next().ok_or("--rules needs a list like L1,L3")?;
                let mut set = BTreeSet::new();
                for part in v.split(',') {
                    set.insert(Rule::parse(part).ok_or_else(|| format!("unknown rule `{part}`"))?);
                }
                rules = Some(set);
            }
            "--format" => {
                let v = args.next().ok_or("--format needs text|json")?;
                json = match v.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--list" => list = true,
            "--emit-metrics-table" => emit_metrics = true,
            "--emit-routes-table" => emit_routes = true,
            "--help" | "-h" => {
                println!(
                    "segdiff-lint: workspace invariant checker\n\n\
                     USAGE: segdiff-lint [--root DIR] [--rules L1,L3] [--format text|json]\n\
                     \x20                 [--list] [--emit-metrics-table] [--emit-routes-table]\n\n\
                     Exit codes: 0 clean, 1 violations, 2 usage/config error.\n\n\
                     Rules (all enabled by default; suppress a site with\n\
                     `// lint: allow(<rule>) <reason>`):"
                );
                for r in Rule::ALL {
                    println!("  {}  {}", r.id(), r.describe());
                }
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    if list {
        for r in Rule::ALL {
            println!("{}  {}", r.id(), r.describe());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_root(&cwd)
                .ok_or("cannot find the workspace root (ci/lock-order.toml); pass --root")?
        }
    };

    if emit_metrics {
        let registry = load_registry(&root).map_err(|e| e.to_string())?;
        print!("{}", lint::rules::names::markdown_table(&registry));
        return Ok(ExitCode::SUCCESS);
    }
    if emit_routes {
        let routes = load_routes(&root).map_err(|e| e.to_string())?;
        print!("{}", lint::rules::contracts::markdown_table(&routes));
        return Ok(ExitCode::SUCCESS);
    }

    let opts = Options {
        rules: rules.unwrap_or_else(|| Rule::ALL.into_iter().collect()),
        root,
    };
    let start = Instant::now();
    let result = run(&opts).map_err(|e| e.to_string())?;
    let report = Report {
        rules: Rule::ALL
            .into_iter()
            .filter(|r| opts.rules.contains(r))
            .collect(),
        files_analyzed: result.files_analyzed,
        wall_ms: start.elapsed().as_millis().min(u64::MAX as u128) as u64,
        diags: result.diags,
    };
    print!("{}", render_report(&report, json));
    if report.diags.is_empty() {
        if !json {
            println!(
                "segdiff-lint: clean ({} rules, {} files, {} ms)",
                opts.rules.len(),
                report.files_analyzed,
                report.wall_ms
            );
        }
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}
