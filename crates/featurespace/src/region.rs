//! Query regions: the image of a user's search in feature space.

use crate::FeaturePoint;

/// Whether the user searches for drops or jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchKind {
    /// `Δv <= V < 0` within `0 < Δt <= T`.
    Drop,
    /// `Δv >= V > 0` within `0 < Δt <= T`.
    Jump,
}

impl SearchKind {
    /// Stable display name (`drop` / `jump`).
    pub fn name(&self) -> &'static str {
        match self {
            SearchKind::Drop => "drop",
            SearchKind::Jump => "jump",
        }
    }
}

/// A query region (paper §3): all feature points satisfying the user's
/// thresholds `T` (time span) and `V` (change).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRegion {
    /// Drop or jump search.
    pub kind: SearchKind,
    /// Time-span threshold `T > 0`.
    pub t: f64,
    /// Change threshold `V` (`< 0` for drops, `> 0` for jumps).
    pub v: f64,
}

impl QueryRegion {
    /// A drop-search region: events with `Δv <= v` within `Δt <= t`.
    ///
    /// # Panics
    ///
    /// Panics unless `t > 0` and `v < 0`.
    pub fn drop(t: f64, v: f64) -> Self {
        assert!(t > 0.0 && t.is_finite(), "T must be positive");
        assert!(
            v < 0.0 && v.is_finite(),
            "V must be negative for drop search"
        );
        Self {
            kind: SearchKind::Drop,
            t,
            v,
        }
    }

    /// A jump-search region: events with `Δv >= v` within `Δt <= t`.
    ///
    /// # Panics
    ///
    /// Panics unless `t > 0` and `v > 0`.
    pub fn jump(t: f64, v: f64) -> Self {
        assert!(t > 0.0 && t.is_finite(), "T must be positive");
        assert!(
            v > 0.0 && v.is_finite(),
            "V must be positive for jump search"
        );
        Self {
            kind: SearchKind::Jump,
            t,
            v,
        }
    }

    /// Whether a feature point satisfies the search conditions, including
    /// the `Δt > 0` constraint of the problem statement.
    pub fn contains(&self, p: FeaturePoint) -> bool {
        if !(p.dt > 0.0 && p.dt <= self.t) {
            return false;
        }
        match self.kind {
            SearchKind::Drop => p.dv <= self.v,
            SearchKind::Jump => p.dv >= self.v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_region_membership() {
        let r = QueryRegion::drop(3600.0, -3.0);
        assert!(r.contains(FeaturePoint::new(1800.0, -4.0)));
        assert!(r.contains(FeaturePoint::new(3600.0, -3.0)));
        assert!(!r.contains(FeaturePoint::new(3601.0, -4.0))); // too slow
        assert!(!r.contains(FeaturePoint::new(1800.0, -2.9))); // too shallow
        assert!(!r.contains(FeaturePoint::new(0.0, -4.0))); // dt must be > 0
    }

    #[test]
    fn jump_region_membership() {
        let r = QueryRegion::jump(3600.0, 3.0);
        assert!(r.contains(FeaturePoint::new(60.0, 3.5)));
        assert!(!r.contains(FeaturePoint::new(60.0, 2.5)));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn drop_rejects_positive_v() {
        QueryRegion::drop(10.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn jump_rejects_negative_v() {
        QueryRegion::jump(10.0, -3.0);
    }
}
